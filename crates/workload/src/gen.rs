//! TGFF-style random task-graph generation.
//!
//! TGFF ("Task Graphs For Free") is the de-facto generator in this
//! literature: it emits layered series-parallel DAGs with configurable
//! size, fan-out, and volume distributions. [`TaskGraphGenerator`]
//! reproduces that shape: tasks are placed in layers, every non-root layer
//! draws edges from the previous layers, and compute/communication volumes
//! are drawn log-uniformly from configured ranges.

use crate::task::{Task, TaskGraph};
use manytest_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Configuration and factory for random task graphs.
///
/// # Examples
///
/// ```
/// use manytest_workload::gen::TaskGraphGenerator;
/// use manytest_sim::SimRng;
///
/// let gen = TaskGraphGenerator {
///     min_tasks: 4,
///     max_tasks: 9,
///     ..TaskGraphGenerator::default()
/// };
/// let mut rng = SimRng::seed_from(1);
/// let g = gen.generate(&mut rng, "random");
/// assert!((4..=9).contains(&g.task_count()));
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskGraphGenerator {
    /// Minimum number of tasks (inclusive).
    pub min_tasks: usize,
    /// Maximum number of tasks (inclusive).
    pub max_tasks: usize,
    /// Maximum tasks per layer.
    pub max_layer_width: usize,
    /// Maximum in-degree drawn for a non-root task.
    pub max_in_degree: usize,
    /// Minimum task compute volume, instructions.
    pub min_instructions: u64,
    /// Maximum task compute volume, instructions.
    pub max_instructions: u64,
    /// Minimum edge volume, bits.
    pub min_bits: f64,
    /// Maximum edge volume, bits.
    pub max_bits: f64,
}

impl Default for TaskGraphGenerator {
    /// Applications of 4–12 tasks (the size range of the classic NoC
    /// benchmarks), 2–30 M instructions per task, 8–512 kbit messages.
    fn default() -> Self {
        TaskGraphGenerator {
            min_tasks: 4,
            max_tasks: 12,
            max_layer_width: 4,
            max_in_degree: 3,
            min_instructions: 2_000_000,
            max_instructions: 30_000_000,
            min_bits: 8_000.0,
            max_bits: 512_000.0,
        }
    }
}

impl TaskGraphGenerator {
    /// Draws `x` log-uniformly in `[lo, hi]`.
    fn log_uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        (rng.gen_f64_range(lo.ln(), hi.ln())).exp()
    }

    /// Generates one random task graph named `name`.
    ///
    /// The result always validates: it is a connected-enough layered DAG
    /// with positive volumes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (`min_tasks == 0`,
    /// `min_tasks > max_tasks`, zero `max_layer_width`, volume ranges
    /// inverted).
    pub fn generate(&self, rng: &mut SimRng, name: impl Into<String>) -> TaskGraph {
        assert!(self.min_tasks >= 1, "graphs need at least one task");
        assert!(self.min_tasks <= self.max_tasks, "task range inverted");
        assert!(self.max_layer_width >= 1, "layer width must be positive");
        assert!(
            self.min_instructions >= 1 && self.min_instructions <= self.max_instructions,
            "instruction range invalid"
        );
        assert!(
            self.min_bits >= 0.0 && self.min_bits <= self.max_bits,
            "bit range invalid"
        );
        let n = rng.gen_range_inclusive(self.min_tasks as u64, self.max_tasks as u64) as usize;
        let mut graph = TaskGraph::new(name);
        // Assign tasks to layers.
        let mut layers: Vec<Vec<crate::task::TaskId>> = Vec::new();
        let mut placed = 0usize;
        while placed < n {
            let width = rng
                .gen_range_inclusive(1, self.max_layer_width as u64)
                .min((n - placed) as u64) as usize;
            let layer: Vec<crate::task::TaskId> = (0..width)
                .map(|_| {
                    let instructions = Self::log_uniform(
                        rng,
                        self.min_instructions as f64,
                        self.max_instructions as f64,
                    )
                    .round()
                    .max(1.0) as u64;
                    graph.add_task(Task { instructions })
                })
                .collect();
            placed += width;
            layers.push(layer);
        }
        // Wire each non-root task to 1..=max_in_degree parents from the
        // previous layer (guaranteeing acyclicity and connectivity between
        // consecutive layers).
        for li in 1..layers.len() {
            // Clone the parent layer ids (cheap Copy ids) to appease borrows.
            let parents: Vec<crate::task::TaskId> = layers[li - 1].clone();
            let children: Vec<crate::task::TaskId> = layers[li].clone();
            for child in children {
                let degree = rng
                    .gen_range_inclusive(1, self.max_in_degree as u64)
                    .min(parents.len() as u64) as usize;
                let mut pool = parents.clone();
                rng.shuffle(&mut pool);
                for &parent in pool.iter().take(degree) {
                    let bits = Self::log_uniform(rng, self.min_bits.max(1.0), self.max_bits);
                    graph.add_edge(parent, child, bits);
                }
            }
        }
        debug_assert!(graph.validate().is_ok());
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xC0FFEE)
    }

    #[test]
    fn generated_graphs_validate() {
        let g = TaskGraphGenerator::default();
        let mut rng = rng();
        for i in 0..200 {
            let graph = g.generate(&mut rng, format!("app{i}"));
            assert!(graph.validate().is_ok(), "graph {i} invalid");
        }
    }

    #[test]
    fn task_count_within_bounds() {
        let g = TaskGraphGenerator {
            min_tasks: 3,
            max_tasks: 7,
            ..TaskGraphGenerator::default()
        };
        let mut rng = rng();
        for _ in 0..100 {
            let n = g.generate(&mut rng, "x").task_count();
            assert!((3..=7).contains(&n));
        }
    }

    #[test]
    fn volumes_within_bounds() {
        let g = TaskGraphGenerator {
            min_instructions: 1_000,
            max_instructions: 2_000,
            min_bits: 100.0,
            max_bits: 200.0,
            ..TaskGraphGenerator::default()
        };
        let mut rng = rng();
        let graph = g.generate(&mut rng, "x");
        for t in graph.tasks() {
            assert!((1_000..=2_000).contains(&t.instructions));
        }
        for e in graph.edges() {
            assert!((100.0..=200.0).contains(&e.bits));
        }
    }

    #[test]
    fn non_root_tasks_have_parents() {
        let g = TaskGraphGenerator::default();
        let mut rng = rng();
        for _ in 0..50 {
            let graph = g.generate(&mut rng, "x");
            let roots = graph.roots();
            for t in 0..graph.task_count() as u32 {
                let id = crate::task::TaskId(t);
                if !roots.contains(&id) {
                    assert!(graph.predecessors(id).next().is_some());
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = TaskGraphGenerator::default();
        let a = g.generate(&mut SimRng::seed_from(5), "x");
        let b = g.generate(&mut SimRng::seed_from(5), "x");
        assert_eq!(a, b);
    }

    #[test]
    fn single_task_config() {
        let g = TaskGraphGenerator {
            min_tasks: 1,
            max_tasks: 1,
            ..TaskGraphGenerator::default()
        };
        let graph = g.generate(&mut rng(), "solo");
        assert_eq!(graph.task_count(), 1);
        assert!(graph.edges().is_empty());
        assert!(graph.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "task range inverted")]
    fn inverted_range_panics() {
        let g = TaskGraphGenerator {
            min_tasks: 9,
            max_tasks: 3,
            ..TaskGraphGenerator::default()
        };
        g.generate(&mut rng(), "bad");
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut r = rng();
        for _ in 0..1_000 {
            let x = TaskGraphGenerator::log_uniform(&mut r, 10.0, 1000.0);
            assert!((10.0..=1000.0).contains(&x));
        }
        assert_eq!(TaskGraphGenerator::log_uniform(&mut r, 5.0, 5.0), 5.0);
    }
}
