//! Scaling regression gate for the control-loop kernels.
//!
//! The struct-of-arrays refactor made the per-epoch phase work linear in
//! the core count and the admission path independent of it. This gate
//! pins that: the deterministic scan counters of small quick runs must
//! not regress above the recorded baselines, and growing the mesh 4× in
//! cores must grow the candidate scan by ~4× (not ~16×). To accept an
//! intentional change, regenerate the baseline:
//!
//! ```sh
//! MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test kernels_gate
//! git diff crates/bench/tests/golden/   # review, then commit
//! ```

use manytest_bench::kernels::{kernels_builder, run_kernels};
use manytest_bench::Scale;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The counters the gate pins, read off [`PhaseProfile::entries`] names.
/// `epochs` must match exactly; the others must not exceed the baseline.
const GATED: [&str; 7] = [
    "epochs",
    "candidates_scanned",
    "free_set_queries",
    "ctx_rebuilds",
    "ctx_delta_updates",
    "heap_pops",
    "dirty_marks",
];

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/kernels_baseline.json")
}

fn to_json(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    for (i, (key, count)) in counts.iter().enumerate() {
        let sep = if i + 1 == counts.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{key}\": {count}{sep}");
    }
    out.push_str("}\n");
    out
}

fn parse_json(text: &str) -> BTreeMap<String, u64> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("baseline is a JSON object");
    body.split(',')
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .map(|line| {
            let (key, value) = line.split_once(':').expect("baseline line is `\"key\": count`");
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .expect("baseline key is quoted");
            let count: u64 = value.trim().parse().expect("baseline count is an integer");
            (key.to_owned(), count)
        })
        .collect()
}

/// Runs the quick sweep for `grids` and flattens the gated counters to
/// `g<grid>.<counter>` keys.
fn measure(grids: &[u16]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for run in run_kernels(grids, Scale::Quick) {
        for (name, value) in run.profile.entries() {
            if GATED.contains(&name) {
                counts.insert(format!("g{}.{name}", run.grid), value);
            }
        }
    }
    counts
}

fn check_against_baseline(grids: &[u16]) {
    let counts = measure(grids);
    let path = baseline_path();
    if std::env::var_os("MANYTEST_UPDATE_GOLDEN").is_some() {
        // Regeneration always records the full gated grid set so one
        // update run refreshes every key this file checks.
        let full = measure(&[8, 16, 32]);
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, to_json(&full)).expect("write baseline file");
        return;
    }
    let baseline = parse_json(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); regenerate with \
             MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test kernels_gate",
            path.display()
        )
    }));
    for (key, &measured) in &counts {
        let &pinned = baseline
            .get(key)
            .unwrap_or_else(|| panic!("baseline {} lacks key {key}", path.display()));
        if key.ends_with(".epochs") {
            assert_eq!(
                measured, pinned,
                "{key}: epoch count drifted from the baseline — the gate is \
                 comparing different runs; regenerate if the config change is intentional"
            );
        } else {
            assert!(
                measured <= pinned,
                "{key}: scan counter regressed above the recorded baseline \
                 ({measured} > {pinned}); an incremental structure degraded to \
                 rescanning — fix it or regenerate the baseline with justification"
            );
        }
    }
}

#[test]
fn quick_scan_counters_stay_at_or_below_baseline() {
    check_against_baseline(&[8, 16]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1024-core quick run; exercised by the release CI gate"
)]
fn grid32_scan_counters_stay_at_or_below_baseline() {
    check_against_baseline(&[32]);
}

/// Quadrupling the core count must quadruple (not ×16) the per-epoch
/// candidate scan: the testable-core walk is linear in N. The bound is
/// deliberately loose (6×) — it fails the O(N²) world, not noise.
#[test]
fn candidate_scan_grows_linearly_with_core_count() {
    let runs = run_kernels(&[8, 16], Scale::Quick);
    let per_epoch: Vec<f64> = runs
        .iter()
        .map(|r| r.profile.candidates_scanned as f64 / r.profile.epochs as f64)
        .collect();
    let growth = per_epoch[1] / per_epoch[0];
    assert!(
        growth < 6.0,
        "candidate scan grew {growth:.1}x for 4x cores — superlinear scan work"
    );
    assert!(
        growth > 1.5,
        "candidate scan barely grew ({growth:.1}x) for 4x cores — \
         the sweep is not exercising scale"
    );
}

/// The admission path must not scale with the mesh: the free-core count
/// is maintained, not rescanned, so its query and rebuild counters are
/// identical across grids running the same workload.
#[test]
fn admission_counters_are_independent_of_grid_size() {
    let runs = run_kernels(&[8, 16], Scale::Quick);
    assert_eq!(
        runs[0].profile.free_set_queries, runs[1].profile.free_set_queries,
        "free-set queries changed with grid size"
    );
    assert_eq!(
        runs[0].profile.ctx_rebuilds, runs[1].profile.ctx_rebuilds,
        "map-context rebuilds changed with grid size"
    );
}

/// The 64×64 configuration runs to completion and is bit-deterministic:
/// two identical runs produce identical reports.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "4096-core run; exercised by the release CI gate"
)]
fn grid64_quick_run_is_deterministic() {
    let run = || {
        kernels_builder(64, Scale::Quick)
            .build()
            .expect("valid config")
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "two identical 64x64 runs diverged");
    assert!(a.profile.epochs > 0, "run did not complete any epochs");
    assert_eq!(a.summary(), b.summary());
}
