//! Item and symbol extraction: the parse layer of the analysis engine.
//!
//! Built directly on the token stream — no AST. One linear walk per file
//! recognises `fn` / `impl` / `trait` items, brace-matches their bodies,
//! and records for every function its bare name, its *owner* (the
//! `impl`/`trait` type it is a method of, `None` for free functions),
//! the token range of its body, and whether it is test code. The
//! call-graph builder ([`crate::callgraph`]) and the effect-inference
//! pass ([`crate::effects`]) consume this table; the span invariants
//! (every item span lies inside its source, and starts at the item
//! keyword) are property-tested against randomized token streams.

use crate::lexer::{Token, TokenKind};
use crate::source::{SourceFile, Workspace};

/// What kind of item a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Trait,
}

/// One extracted item with its source span (1-based, inclusive).
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name: the fn name, the impl'd type, or the trait name.
    /// Empty when the header is too mangled to name (unterminated).
    pub name: String,
    /// Line/column of the `fn`/`impl`/`trait` keyword itself.
    pub line: u32,
    pub col: u32,
    /// Line of the item's final token (closing brace or `;`).
    pub end_line: u32,
}

/// One function symbol in the workspace table.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` type this is a method of; `None` for free fns.
    pub owner: Option<String>,
    /// Index of the declaring file in the workspace `files` vec.
    pub file: usize,
    /// Line/column of the `fn` keyword.
    pub line: u32,
    pub col: u32,
    /// Inclusive code-token index range of the body `{ … }` within the
    /// file's comment-stripped token vec; `None` for bodyless
    /// signatures (trait requirements, extern decls).
    pub body: Option<(usize, usize)>,
    /// Test code: a test file, or inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// The workspace symbol table.
pub struct SymbolTable {
    /// Every function, in (file, token) order.
    pub fns: Vec<FnSym>,
    /// Every fn/impl/trait item per file (same file indexing), for
    /// span consumers and the property tests.
    pub items_per_file: Vec<Vec<Item>>,
}

impl SymbolTable {
    /// Extracts symbols from every file of a loaded workspace.
    pub fn build(ws: &Workspace) -> SymbolTable {
        let mut fns = Vec::new();
        let mut items_per_file = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let (file_fns, items) = extract_file(file, fi);
            fns.extend(file_fns);
            items_per_file.push(items);
        }
        SymbolTable { fns, items_per_file }
    }

    /// Fn indices matching `name`, methods only (`owner` is `Some`).
    pub fn methods_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = usize> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.owner.is_some() && f.name == name)
            .map(|(i, _)| i)
    }

    /// Fn indices matching `name`, free functions only.
    pub fn free_fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = usize> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.owner.is_none() && f.name == name)
            .map(|(i, _)| i)
    }

    /// Fn indices of `Owner::name` methods.
    pub fn methods_of<'a>(
        &'a self,
        owner: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = usize> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.owner.as_deref() == Some(owner) && f.name == name)
            .map(|(i, _)| i)
    }
}

/// Extracts the items of one file. Public so the property tests can
/// drive it file-by-file over randomized sources.
pub fn extract_file(file: &SourceFile, file_index: usize) -> (Vec<FnSym>, Vec<Item>) {
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut fns = Vec::new();
    let mut items = Vec::new();
    // Owners become active when their body `{` opens and retire when
    // depth returns to the value recorded at the opening.
    let mut owner_stack: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while owner_stack.last().is_some_and(|&(_, d)| depth < d) {
                owner_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let kind = if t.is_ident("impl") {
                ItemKind::Impl
            } else {
                ItemKind::Trait
            };
            let (name, body_open) = parse_owner_header(&code, i, kind);
            let end_line = body_open
                .and_then(|open| brace_match(&code, open))
                .map(|close| code[close].line)
                .unwrap_or_else(|| code.last().map(|t| t.line).unwrap_or(t.line));
            items.push(Item {
                kind,
                name: name.clone().unwrap_or_default(),
                line: t.line,
                col: t.col,
                end_line,
            });
            if let Some(open) = body_open {
                // The owner activates at the body's depth; the walk
                // continues *into* the body so nested fns are found.
                if let Some(name) = name {
                    owner_stack.push((name, depth + 1));
                }
                i = open; // the `{` is handled at the top of the loop
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            let name = code
                .get(i + 1)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone())
                .unwrap_or_default();
            let body = fn_body_range(&code, i);
            let end_idx = body.map(|(_, e)| e);
            let end_line = end_idx
                .map(|e| code[e].line)
                .unwrap_or_else(|| fn_sig_end_line(&code, i));
            items.push(Item {
                kind: ItemKind::Fn,
                name: name.clone(),
                line: t.line,
                col: t.col,
                end_line,
            });
            fns.push(FnSym {
                name,
                owner: owner_stack.last().map(|(n, _)| n.clone()),
                file: file_index,
                line: t.line,
                col: t.col,
                body,
                is_test: file.is_test_file() || file.is_test_line(t.line),
            });
            // Continue from just past the header so nested items inside
            // the body are visited by the same walk.
            i += 1;
            continue;
        }
        i += 1;
    }
    (fns, items)
}

/// Parses an `impl`/`trait` header starting at `start` (the keyword).
/// Returns the owner type name and the index of the body's `{`.
///
/// * `impl<T> Foo<T> { … }` → `Foo`
/// * `impl Display for Foo { … }` → `Foo` (the implementing type)
/// * `trait Observer { … }` → `Observer`
fn parse_owner_header(
    code: &[&Token],
    start: usize,
    kind: ItemKind,
) -> (Option<String>, Option<usize>) {
    let mut i = start + 1;
    let mut angle = 0i32;
    let mut after_for: Option<usize> = None;
    // Find the body `{` (or `;` for a bodyless decl), tracking `for`.
    let mut body_open = None;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && t.is_punct('{') {
            body_open = Some(i);
            break;
        } else if angle <= 0 && t.is_punct(';') {
            break;
        } else if angle <= 0 && t.is_ident("for") {
            after_for = Some(i);
        } else if angle <= 0 && t.is_ident("where") {
            // The type name is complete before a where clause.
            if after_for.is_none() && kind == ItemKind::Impl {
                // keep scanning for `{`
            }
        }
        i += 1;
    }
    let header_end = body_open.unwrap_or(i);
    let name = match kind {
        ItemKind::Trait => code
            .get(start + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone()),
        _ => {
            // The implementing type: last ident of the path following
            // `for` when present, else last ident of the first path
            // after the (skipped) generic parameter list.
            let path_start = match after_for {
                Some(f) => f + 1,
                None => {
                    let mut j = start + 1;
                    if code.get(j).is_some_and(|t| t.is_punct('<')) {
                        let mut a = 0i32;
                        while j < header_end {
                            if code[j].is_punct('<') {
                                a += 1;
                            } else if code[j].is_punct('>') {
                                a -= 1;
                                if a == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    j
                }
            };
            last_path_ident(code, path_start, header_end)
        }
    };
    (name, body_open)
}

/// The last ident of the `a::b::C` path starting at `from` (stops at
/// generics, `for`, `where` or the header end).
fn last_path_ident(code: &[&Token], from: usize, until: usize) -> Option<String> {
    let mut last = None;
    let mut i = from;
    while i < until {
        let t = code[i];
        if t.kind == TokenKind::Ident {
            if t.is_ident("for") || t.is_ident("where") || t.is_ident("dyn") {
                break;
            }
            last = Some(t.text.clone());
            // A path continues only through `::`.
            if code.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                i += 3;
                continue;
            }
            break;
        }
        if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_punct('\'') {
            i += 1;
            continue;
        }
        break;
    }
    last
}

/// The body token range of the fn whose `fn` keyword sits at `start`:
/// skips the name, generics and parameter list, then the return type,
/// and brace-matches the first `{` found at paren depth 0. Returns
/// `None` when the signature ends in `;`.
fn fn_body_range(code: &[&Token], start: usize) -> Option<(usize, usize)> {
    let mut i = start + 1;
    let mut paren = 0i32;
    let mut angle = 0i32;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if paren == 0 && t.is_punct('{') {
            let close = brace_match(code, i)?;
            return Some((i, close));
        } else if paren == 0 && angle == 0 && t.is_punct(';') {
            return None;
        } else if t.is_ident("fn") && i > start + 1 && paren == 0 {
            // `fn` in a return type (`-> fn(…)`) is possible but a bare
            // nested `fn` keyword before any body means the header was
            // mangled; stop rather than swallow the next item.
            return None;
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (`None` if unterminated).
pub fn brace_match(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Last line of a bodyless fn signature (up to the `;`).
fn fn_sig_end_line(code: &[&Token], start: usize) -> u32 {
    let mut i = start;
    while i < code.len() {
        if code[i].is_punct(';') {
            return code[i].line;
        }
        i += 1;
    }
    code.last().map(|t| t.line).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> (Vec<FnSym>, Vec<Item>) {
        extract_file(&SourceFile::from_source("crates/core/src/x.rs", src), 0)
    }

    #[test]
    fn free_fns_and_methods_get_owners() {
        let (fns, _) = table(
            "fn free() { helper(); }\n\
             impl System {\n    pub fn control(&mut self) {}\n    fn inner(&self) -> u32 { 1 }\n}\n\
             impl<T> Wrapper<T> {\n    fn get(&self) -> &T { &self.0 }\n}\n",
        );
        let names: Vec<(String, Option<String>)> =
            fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("control".into(), Some("System".into())),
                ("inner".into(), Some("System".into())),
                ("get".into(), Some("Wrapper".into())),
            ]
        );
    }

    #[test]
    fn trait_impls_attribute_to_the_implementing_type() {
        let (fns, items) = table(
            "impl fmt::Display for Finding {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n\
             trait Observer {\n    fn on_event(&mut self);\n    fn flush(&mut self) {}\n}\n",
        );
        assert_eq!(fns[0].owner.as_deref(), Some("Finding"));
        assert_eq!(fns[1].owner.as_deref(), Some("Observer"));
        assert!(fns[1].body.is_none(), "signature-only trait fn has no body");
        assert_eq!(fns[2].owner.as_deref(), Some("Observer"));
        assert!(fns[2].body.is_some(), "default method has a body");
        assert!(items.iter().any(|i| i.kind == ItemKind::Trait && i.name == "Observer"));
    }

    #[test]
    fn nested_fns_are_found_and_spans_nest() {
        let (fns, items) = table(
            "impl A {\n    fn outer(&self) {\n        fn inner() -> u32 { 2 }\n        inner();\n    }\n}\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "outer");
        assert_eq!(fns[1].name, "inner");
        // The inner fn keeps the enclosing impl owner on the stack; that
        // is fine for resolution (it is only callable from inside).
        let outer = items.iter().find(|i| i.name == "outer").expect("outer item");
        let inner = items.iter().find(|i| i.name == "inner").expect("inner item");
        assert!(outer.line < inner.line && inner.end_line <= outer.end_line);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let (fns, _) = table(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
    }

    #[test]
    fn bodyless_and_mangled_headers_do_not_panic() {
        let (fns, _) = table("extern \"C\" { fn ffi(x: u32) -> u32; }\nfn ok() {}\nfn broken(");
        assert_eq!(fns.len(), 3);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
    }
}
