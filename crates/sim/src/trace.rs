//! Lightweight time-series tracing.
//!
//! The bench harness regenerates the paper's figures from traces recorded
//! during a run: power over time, utilisation over time, tests in flight, …
//! A [`Trace`] is a named collection of [`TraceSeries`], each a vector of
//! `(t_seconds, value)` points.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single named series of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSeries {
    points: Vec<(f64, f64)>,
}

impl TraceSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample at time `t` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded sample.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "trace time must be monotone: {t} < {last}");
        }
        self.points.push((t, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(acc.map_or(v, |a: f64| a.max(v)))
        })
    }

    /// Arithmetic mean of the recorded values (unweighted), if any.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Downsamples to at most `n` evenly spaced points (keeps endpoints).
    pub fn downsample(&self, n: usize) -> TraceSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        let points = (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect();
        TraceSeries { points }
    }
}

/// A named bundle of trace series.
///
/// # Examples
///
/// ```
/// use manytest_sim::trace::Trace;
///
/// let mut trace = Trace::new();
/// trace.series_mut("power_w").push(0.0, 45.0);
/// trace.series_mut("power_w").push(0.001, 47.5);
/// assert_eq!(trace.series("power_w").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    series: BTreeMap<String, TraceSeries>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the series with the given name, creating it if absent.
    pub fn series_mut(&mut self, name: &str) -> &mut TraceSeries {
        self.series.entry(name.to_owned()).or_default()
    }

    /// Returns the series with the given name, if recorded.
    pub fn series(&self, name: &str) -> Option<&TraceSeries> {
        self.series.get(name)
    }

    /// Names of all recorded series, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of recorded series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the trace as CSV with one `time` column per series block.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.series {
            out.push_str(&format!("# series: {name}\n"));
            out.push_str("t_seconds,value\n");
            for (t, v) in series.points() {
                out.push_str(&format!("{t},{v}\n"));
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({} series", self.series.len())?;
        for (name, s) in &self.series {
            write!(f, "; {name}: {} pts", s.len())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = TraceSeries::new();
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        assert_eq!(s.points(), &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.max_value(), Some(2.0));
        assert_eq!(s.mean_value(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_panics() {
        let mut s = TraceSeries::new();
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }

    #[test]
    fn equal_times_are_allowed() {
        let mut s = TraceSeries::new();
        s.push(1.0, 1.0);
        s.push(1.0, 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_series_stats() {
        let s = TraceSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean_value(), None);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let mut s = TraceSeries::new();
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.points()[0], (0.0, 0.0));
        assert_eq!(d.points()[4], (99.0, 99.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut s = TraceSeries::new();
        s.push(0.0, 1.0);
        assert_eq!(s.downsample(10), s);
        assert_eq!(s.downsample(0), s);
    }

    #[test]
    fn trace_series_registry() {
        let mut t = Trace::new();
        t.series_mut("b").push(0.0, 1.0);
        t.series_mut("a").push(0.0, 2.0);
        assert_eq!(t.len(), 2);
        let names: Vec<&str> = t.names().collect();
        assert_eq!(names, vec!["a", "b"]); // sorted
        assert!(t.series("missing").is_none());
    }

    #[test]
    fn csv_contains_all_series() {
        let mut t = Trace::new();
        t.series_mut("x").push(0.5, 3.5);
        let csv = t.to_csv();
        assert!(csv.contains("# series: x"));
        assert!(csv.contains("0.5,3.5"));
    }

    #[test]
    fn display_is_nonempty() {
        let t = Trace::new();
        assert!(!format!("{t}").is_empty());
    }
}
