pub fn overdue(epoch_us: f64, timeout_us: f64) -> bool {
    epoch_us > timeout_us
}

pub fn converted(epoch_us: f64, timeout_ms: f64) -> bool {
    // The conversion factor sits between the operands, breaking
    // adjacency: the expression is unit-correct by construction.
    epoch_us > 1e3 * timeout_ms
}

pub fn cross_group(cap_w: f64, epoch_s: f64) -> f64 {
    // Watts times seconds is energy — different groups never mix units.
    cap_w * epoch_s
}
