//! Holds `System::map_context` to its documented guarantee: zero heap
//! allocations after the first control tick. The snapshot must be rebuilt
//! every epoch for every pending app, so an allocation here multiplies
//! across the whole evaluation suite.
//!
//! This file contains exactly one test: the counting allocator is
//! process-global, and a concurrent test in the same binary would pollute
//! the measurement.

use manytest_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn map_context_allocates_nothing_after_the_first_tick() {
    let mut system = SystemBuilder::new(TechNode::N16)
        .seed(7)
        .build()
        .expect("valid config");
    // First tick: the scratch buffers size themselves to the platform.
    std::hint::black_box(system.map_context(0.0).free_count());

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut t = 0.0;
    for _ in 0..1_000 {
        t += 1e-4;
        std::hint::black_box(system.map_context(t).free_count());
        // Telemetry shares the guarantee: events are stack-only values and
        // the default null observer must discard them without touching the
        // heap, so emission can sit on the control loop's hot path.
        system.observe(
            t,
            SimEvent::CapAdjusted {
                cap: 100.0,
                measured: 42.0,
                headroom: 58.0,
                reservations: 3,
            },
        );
        system.observe(
            t,
            SimEvent::TestLaunched {
                core: 7,
                routine: 1,
                level: 2,
                power: 0.5,
                headroom: 57.5,
            },
        );
    }
    let allocations = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "System::map_context heap-allocated {allocations} times across \
         1000 warm refills (with event emission); the scratch-buffer and \
         null-observer guarantees are broken"
    );
}
