//! The run ledger: a persistent on-disk index of completed simulations.
//!
//! When enabled (via `--ledger[=DIR]` or `MANYTEST_LEDGER_DIR`), every
//! simulation the harness runs flows through [`run_system`], which
//! fingerprints the full `SystemBuilder` configuration (FNV-1a 64 over
//! the `Debug` rendering of config + workload mix) and keeps two stores
//! under the ledger directory:
//!
//! * `blobs/<hash>.wire` — a content-addressed [`Report`] cache in the
//!   `manytest-wire` text format. A cache hit decodes to a report equal
//!   to a cold run down to f64 bit patterns, so every table, JSONL dump
//!   and Prometheus file rendered from it is byte-identical.
//! * `manifests/run-<seq>-<hash>.json` — one flat JSON manifest per
//!   completed (or failed, or cache-served) run: outcome, wall/busy
//!   seconds, key report aggregates and the blob path. `repro runs
//!   list|show|gc` browse these; the `golden-schema` lint validates
//!   their key set, hash format and probe ids.
//!
//! The ledger is strictly best-effort: any I/O or decode problem falls
//! back to a fresh run (and `gc` cleans the debris) — a corrupt cache
//! must never fail a sweep. With no directory configured every call is
//! a plain build-and-run, byte-identical to the pre-ledger harness.

use crate::events::PROBE_IDS;
use crate::progress;
use manytest_core::prelude::*;
use manytest_sim::write_json_str;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag every manifest carries (checked by the lint rule).
pub const MANIFEST_SCHEMA: &str = "manytest-run-manifest-v1";

/// Keys every manifest must contain, in emission order. `probe`,
/// `blob` and `panic` are optional and appear after the required set.
pub const MANIFEST_REQUIRED_KEYS: [&str; 16] = [
    "schema",
    "seq",
    "config_hash",
    "label",
    "seed",
    "jobs",
    "outcome",
    "wall_seconds",
    "busy_seconds",
    "sim_seconds",
    "apps_completed",
    "throughput_mips",
    "mean_power_watts",
    "tests_completed",
    "faults_detected",
    "events_dropped",
];

// Process-wide configuration: an explicit CLI override wins over the
// environment; tests drive different directories through subprocess env
// so no `std::env::set_var` is ever needed.
static DIR_OVERRIDE: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);
static JOBS_HINT: AtomicU64 = AtomicU64::new(0);

/// Overrides the ledger directory for this process: `Some(dir)` enables
/// the ledger there, `None` disables it even if `MANYTEST_LEDGER_DIR`
/// is set. The `repro` CLI calls this for `--ledger[=DIR]`.
pub fn set_dir(dir: Option<PathBuf>) {
    *DIR_OVERRIDE.lock().expect("ledger dir lock") = Some(dir);
}

/// Records the worker count for manifests (`repro` calls this once).
pub fn set_jobs(jobs: u64) {
    JOBS_HINT.store(jobs, Ordering::Relaxed);
}

/// The active ledger directory: the [`set_dir`] override if one was
/// made, else `MANYTEST_LEDGER_DIR`, else disabled.
pub fn dir() -> Option<PathBuf> {
    if let Some(over) = DIR_OVERRIDE.lock().expect("ledger dir lock").clone() {
        return over;
    }
    std::env::var_os("MANYTEST_LEDGER_DIR").map(PathBuf::from)
}

/// FNV-1a 64 fingerprint of a builder's full deterministic identity
/// (configuration + workload mix, via their `Debug` renderings — both
/// list every field, so any config change moves the hash).
pub fn config_hash(builder: &SystemBuilder) -> u64 {
    let text = format!("{:?}|{:?}", builder.config(), builder.mix());
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a config hash the way manifests and blob names spell it.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Runs `builder` through the ledger funnel: consult the cache, else
/// build and run, then record the outcome. This is the single entry
/// point every experiment, probe and ablation run goes through.
///
/// `fallback_label` names the run in manifests when the call is not
/// inside a batch job (batch jobs use their push label). With no ledger
/// directory configured this is exactly `builder.build().run()` plus
/// progress-counter plumbing.
pub fn run_system(fallback_label: &str, builder: SystemBuilder) -> Report {
    let hash = config_hash(&builder);
    let label = progress::with_current(|slot| {
        slot.set_config_hash(hash);
        slot.label().to_owned()
    })
    .unwrap_or_else(|| fallback_label.to_owned());
    let seed = builder.config().seed;
    let Some(dir) = dir() else {
        return run_fresh(builder);
    };
    let t0 = Instant::now();
    let blob_rel = format!("blobs/{}.wire", hash_hex(hash));
    let blob_path = dir.join(&blob_rel);
    if let Ok(text) = fs::read_to_string(&blob_path) {
        if let Ok(report) = Report::decode_wire(&text) {
            // Cache hit: the decoded report is bit-equal to the cold
            // run's, so downstream rendering is byte-identical.
            progress::with_current(|slot| {
                slot.mark_cached();
                let c = slot.counters();
                c.begin(report.profile.epochs);
                c.tick(report.profile.epochs, report.events.total(), report.events.dropped());
                c.finish(report.events.dropped());
            });
            write_manifest(
                &dir,
                &ManifestDraft {
                    hash,
                    label: &label,
                    seed,
                    outcome: "cached",
                    wall_seconds: t0.elapsed().as_secs_f64(),
                    busy_seconds: 0.0,
                    report: Some(&report),
                    blob: Some(&blob_rel),
                    panic: None,
                },
            );
            return report;
        }
        // Corrupt blob: fall through to a fresh run that rewrites it.
    }
    let run0 = Instant::now();
    let report = run_fresh(builder);
    let busy_seconds = run0.elapsed().as_secs_f64();
    if write_blob(&blob_path, &report.encode_wire()).is_ok() {
        write_manifest(
            &dir,
            &ManifestDraft {
                hash,
                label: &label,
                seed,
                outcome: "ok",
                wall_seconds: t0.elapsed().as_secs_f64(),
                busy_seconds,
                report: Some(&report),
                blob: Some(&blob_rel),
                panic: None,
            },
        );
    }
    report
}

/// Builds and runs, attaching the surrounding batch job's progress
/// counters (if any) so `--progress` heartbeats see live epoch counts.
fn run_fresh(builder: SystemBuilder) -> Report {
    let mut system = builder.build().expect("ledger funnel requires a valid config");
    if let Some(counters) = progress::with_current(|slot| slot.counters()) {
        system.set_progress(counters);
    }
    system.run()
}

/// Records a panicked batch job in the ledger (called by the runner on
/// the job's own thread, so the config hash the funnel deposited is
/// still reachable). No-op without a ledger directory.
pub fn note_failed_job(label: &str, payload: &str) {
    let Some(dir) = dir() else {
        return;
    };
    let hash = progress::with_current(|slot| slot.config_hash())
        .flatten()
        .unwrap_or(0);
    write_manifest(
        &dir,
        &ManifestDraft {
            hash,
            label,
            seed: 0,
            outcome: "failed",
            wall_seconds: 0.0,
            busy_seconds: 0.0,
            report: None,
            blob: None,
            panic: Some(payload.lines().next().unwrap_or("<empty panic payload>")),
        },
    );
}

/// Writes `text` to `path` atomically (temp file + rename), creating
/// parent directories as needed.
fn write_blob(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Manifests.
// ---------------------------------------------------------------------------

struct ManifestDraft<'a> {
    hash: u64,
    label: &'a str,
    seed: u64,
    outcome: &'a str,
    wall_seconds: f64,
    busy_seconds: f64,
    report: Option<&'a Report>,
    blob: Option<&'a str>,
    panic: Option<&'a str>,
}

/// The probe id a label refers to, when one of its first two
/// `/`-segments is a known probe id (`probe/e3` → `e3`, `e1/...` → `e1`).
pub fn probe_of_label(label: &str) -> Option<&'static str> {
    label
        .split('/')
        .take(2)
        .find_map(|seg| PROBE_IDS.iter().copied().find(|id| *id == seg))
}

/// Serialises one manifest as flat JSON (one key per line; the lint's
/// manifest rule and [`parse_flat_json`] both consume this shape).
fn render_manifest(seq: u64, draft: &ManifestDraft<'_>) -> String {
    let mut out = String::from("{\n");
    let s = |out: &mut String, key: &str, val: &str| {
        let _ = write!(out, "  \"{key}\": ");
        write_json_str(out, val);
        out.push_str(",\n");
    };
    s(&mut out, "schema", MANIFEST_SCHEMA);
    let _ = writeln!(out, "  \"seq\": {seq},");
    s(&mut out, "config_hash", &hash_hex(draft.hash));
    s(&mut out, "label", draft.label);
    if let Some(probe) = probe_of_label(draft.label) {
        s(&mut out, "probe", probe);
    }
    let _ = writeln!(out, "  \"seed\": {},", draft.seed);
    let _ = writeln!(out, "  \"jobs\": {},", JOBS_HINT.load(Ordering::Relaxed));
    s(&mut out, "outcome", draft.outcome);
    let _ = writeln!(out, "  \"wall_seconds\": {},", draft.wall_seconds);
    let _ = writeln!(out, "  \"busy_seconds\": {},", draft.busy_seconds);
    let (sim, apps, mips, power, tests, faults, dropped) = match draft.report {
        Some(r) => (
            r.sim_seconds,
            r.apps_completed,
            r.throughput_mips,
            r.mean_power,
            r.tests_completed,
            r.faults_detected,
            r.events.dropped(),
        ),
        None => (0.0, 0, 0.0, 0.0, 0, 0, 0),
    };
    let _ = writeln!(out, "  \"sim_seconds\": {sim},");
    let _ = writeln!(out, "  \"apps_completed\": {apps},");
    let _ = writeln!(out, "  \"throughput_mips\": {mips},");
    let _ = writeln!(out, "  \"mean_power_watts\": {power},");
    let _ = writeln!(out, "  \"tests_completed\": {tests},");
    let _ = writeln!(out, "  \"faults_detected\": {faults},");
    let _ = writeln!(out, "  \"events_dropped\": {dropped},");
    if let Some(blob) = draft.blob {
        s(&mut out, "blob", blob);
    }
    if let Some(panic) = draft.panic {
        s(&mut out, "panic", panic);
    }
    // Strip the trailing comma to keep the JSON strict.
    let trimmed = out.trim_end_matches(|c| c == ',' || c == '\n').len();
    out.truncate(trimmed);
    out.push_str("\n}\n");
    out
}

/// Serialises writes so in-process concurrent jobs get distinct seqs.
static MANIFEST_LOCK: Mutex<()> = Mutex::new(());

fn write_manifest(dir: &Path, draft: &ManifestDraft<'_>) {
    let _guard = MANIFEST_LOCK.lock().expect("manifest write lock");
    let manifests = dir.join("manifests");
    if fs::create_dir_all(&manifests).is_err() {
        return; // best-effort: the ledger never fails a run
    }
    let seq = next_seq(&manifests);
    let name = format!("run-{seq:06}-{}.json", hash_hex(draft.hash));
    let _ = write_blob(&manifests.join(name), &render_manifest(seq, draft));
}

/// One past the largest seq currently on disk (1 for an empty ledger).
fn next_seq(manifests: &Path) -> u64 {
    let mut max = 0;
    if let Ok(entries) = fs::read_dir(manifests) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("run-") {
                if let Some(seq) = rest.split('-').next().and_then(|s| s.parse::<u64>().ok()) {
                    max = max.max(seq);
                }
            }
        }
    }
    max + 1
}

// ---------------------------------------------------------------------------
// Flat-JSON parsing (the workspace serde is a no-op shim, so manifests
// are read back with a purpose-built scanner).
// ---------------------------------------------------------------------------

/// A parsed flat-JSON value: manifests hold only numbers and strings.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A JSON number (all manifest numbers fit f64 exactly as written).
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
}

impl FlatValue {
    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            FlatValue::Num(v) => Some(*v),
            FlatValue::Str(_) => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            FlatValue::Num(_) => None,
            FlatValue::Str(s) => Some(s),
        }
    }
}

/// Parses one flat JSON object (`{"key": value, ...}` with only string
/// and number values — no nesting). Returns `None` on any malformation;
/// manifest consumers treat that as "corrupt, skip".
pub fn parse_flat_json(text: &str) -> Option<BTreeMap<String, FlatValue>> {
    let mut chars = text.char_indices().peekable();
    let mut map = BTreeMap::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while chars.next_if(|&(_, c)| c.is_whitespace()).is_some() {}
    };
    let parse_str = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| -> Option<String> {
        let (_, open) = chars.next()?;
        if open != '"' {
            return None;
        }
        let mut out = String::new();
        loop {
            let (_, c) = chars.next()?;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next()?;
                                code = code * 16 + h.to_digit(16)?;
                            }
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => out.push(c),
            }
        }
    };
    skip_ws(&mut chars);
    let (_, open) = chars.next()?;
    if open != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek().map(|&(_, c)| c) == Some('}') {
        chars.next();
        return Some(map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_str(&mut chars)?;
        skip_ws(&mut chars);
        let (_, colon) = chars.next()?;
        if colon != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek().map(|&(_, c)| c)? {
            '"' => FlatValue::Str(parse_str(&mut chars)?),
            _ => {
                let mut num = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                FlatValue::Num(num.parse().ok()?)
            }
        };
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()?.1 {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(map)
}

// ---------------------------------------------------------------------------
// Browsing: `repro runs list|show|gc`.
// ---------------------------------------------------------------------------

/// One parsed, validated manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest file name (inside `manifests/`).
    pub file: String,
    /// Write sequence number.
    pub seq: u64,
    /// Config fingerprint, 16 hex digits.
    pub config_hash: String,
    /// Run label.
    pub label: String,
    /// Probe id, when the label names one.
    pub probe: Option<String>,
    /// Run outcome: `ok`, `cached` or `failed`.
    pub outcome: String,
    /// Wall seconds of the funnel call.
    pub wall_seconds: f64,
    /// Key aggregate: workload throughput.
    pub throughput_mips: f64,
    /// Key aggregate: SBST sessions completed.
    pub tests_completed: u64,
    /// Blob path relative to the ledger dir, when a report was stored.
    pub blob: Option<String>,
    /// First panic line, for failed runs.
    pub panic: Option<String>,
    /// Every raw key/value pair, for `runs show`.
    pub raw: BTreeMap<String, FlatValue>,
}

fn manifest_from_map(file: &str, map: BTreeMap<String, FlatValue>) -> Option<Manifest> {
    if map.get("schema")?.str()? != MANIFEST_SCHEMA {
        return None;
    }
    let hash = map.get("config_hash")?.str()?.to_owned();
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(Manifest {
        file: file.to_owned(),
        seq: map.get("seq")?.num()? as u64,
        config_hash: hash,
        label: map.get("label")?.str()?.to_owned(),
        probe: map.get("probe").and_then(|v| v.str()).map(str::to_owned),
        outcome: map.get("outcome")?.str()?.to_owned(),
        wall_seconds: map.get("wall_seconds")?.num()?,
        throughput_mips: map.get("throughput_mips")?.num()?,
        tests_completed: map.get("tests_completed")?.num()? as u64,
        blob: map.get("blob").and_then(|v| v.str()).map(str::to_owned),
        panic: map.get("panic").and_then(|v| v.str()).map(str::to_owned),
        raw: map,
    })
}

/// Loads every parseable manifest under `dir`, sorted by seq, plus the
/// count of corrupt files skipped. Never fails: an unreadable ledger is
/// an empty one.
pub fn load_manifests(dir: &Path) -> (Vec<Manifest>, usize) {
    let mut out = Vec::new();
    let mut corrupt = 0;
    if let Ok(entries) = fs::read_dir(dir.join("manifests")) {
        let mut names: Vec<String> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            let path = dir.join("manifests").join(&name);
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| parse_flat_json(&text))
                .and_then(|map| manifest_from_map(&name, map));
            match parsed {
                Some(m) => out.push(m),
                None => corrupt += 1,
            }
        }
    }
    out.sort_by_key(|m| m.seq);
    (out, corrupt)
}

/// Renders `repro runs list [--failed]`.
pub fn render_runs_list(dir: &Path, failed_only: bool) -> String {
    let (manifests, corrupt) = load_manifests(dir);
    let rows: Vec<&Manifest> = manifests
        .iter()
        .filter(|m| !failed_only || m.outcome == "failed")
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## runs — {} manifest(s){}{} in {}",
        rows.len(),
        if failed_only { " (failed only)" } else { "" },
        if corrupt > 0 {
            format!(", {corrupt} corrupt skipped")
        } else {
            String::new()
        },
        dir.display()
    );
    if rows.is_empty() {
        out.push_str("(none)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "{:>6}  {:<7}  {:<6}  {:<16}  {:>8}  label",
        "seq", "outcome", "probe", "config_hash", "wall_s"
    );
    for m in rows {
        let _ = writeln!(
            out,
            "{:>6}  {:<7}  {:<6}  {:<16}  {:>8.3}  {}{}",
            m.seq,
            m.outcome,
            m.probe.as_deref().unwrap_or("-"),
            m.config_hash,
            m.wall_seconds,
            m.label,
            m.panic
                .as_deref()
                .map(|p| format!("  [{p}]"))
                .unwrap_or_default()
        );
    }
    out
}

/// Renders `repro runs show <ref>`; `ref` is a seq number, a config-hash
/// prefix, or a probe id / label (latest matching manifest wins).
pub fn render_runs_show(dir: &Path, reference: &str) -> Option<String> {
    let (manifests, _) = load_manifests(dir);
    let found = manifests.iter().rev().find(|m| {
        reference.parse::<u64>().map_or(false, |seq| m.seq == seq)
            || m.config_hash.starts_with(reference)
            || m.probe.as_deref() == Some(reference)
            || m.label == reference
    })?;
    let mut out = String::new();
    let _ = writeln!(out, "## run {} ({})", found.seq, found.file);
    for (key, value) in &found.raw {
        match value {
            FlatValue::Num(v) => {
                let _ = writeln!(out, "{key:<18} {v}");
            }
            FlatValue::Str(s) => {
                let _ = writeln!(out, "{key:<18} {s}");
            }
        }
    }
    if let Some(blob) = &found.blob {
        match fs::read_to_string(dir.join(blob)).map(|t| Report::decode_wire(&t)) {
            Ok(Ok(report)) => {
                let _ = writeln!(out, "\n# cached report\n{}", report.summary());
            }
            _ => {
                let _ = writeln!(out, "\n# cached report: blob missing or corrupt ({blob})");
            }
        }
    }
    Some(out)
}

/// `repro runs gc`: deletes corrupt manifests and unreferenced blobs.
/// Returns a human-readable summary.
pub fn gc(dir: &Path) -> String {
    let mut removed_manifests = 0;
    let mut removed_blobs = 0;
    let manifests_dir = dir.join("manifests");
    let mut referenced: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(&manifests_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                // Stray temp files from interrupted writes.
                if fs::remove_file(&path).is_ok() {
                    removed_manifests += 1;
                }
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| parse_flat_json(&text))
                .and_then(|map| manifest_from_map(&name, map));
            match parsed {
                Some(m) => {
                    if let Some(blob) = m.blob {
                        referenced.push(dir.join(blob));
                    }
                }
                None => {
                    if fs::remove_file(&path).is_ok() {
                        removed_manifests += 1;
                    }
                }
            }
        }
    }
    if let Ok(entries) = fs::read_dir(dir.join("blobs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            let keep = path.extension().and_then(|e| e.to_str()) == Some("wire")
                && referenced.iter().any(|r| r == &path);
            if !keep && fs::remove_file(&path).is_ok() {
                removed_blobs += 1;
            }
        }
    }
    format!(
        "ledger gc: removed {removed_manifests} corrupt/stray manifest(s) and {removed_blobs} unreferenced blob(s) from {}\n",
        dir.display()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_hash_is_stable_and_config_sensitive() {
        let a = SystemBuilder::new(TechNode::N16).seed(1);
        let b = SystemBuilder::new(TechNode::N16).seed(2);
        assert_eq!(config_hash(&a), config_hash(&a.clone()));
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(hash_hex(0xab).len(), 16);
    }

    #[test]
    fn flat_json_round_trips_manifest_values() {
        let map = parse_flat_json(
            "{\n  \"schema\": \"manytest-run-manifest-v1\",\n  \"seq\": 3,\n  \"wall_seconds\": 0.25,\n  \"label\": \"probe\\/e3 \\\"x\\\"\"\n}\n",
        )
        .expect("parses");
        assert_eq!(map.get("seq").and_then(FlatValue::num), Some(3.0));
        assert_eq!(map.get("wall_seconds").and_then(FlatValue::num), Some(0.25));
        assert_eq!(
            map.get("label").and_then(|v| v.str()),
            Some("probe/e3 \"x\"")
        );
    }

    #[test]
    fn flat_json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "{\"a\": {\"nested\": 1}}",
            "not json at all",
        ] {
            assert!(parse_flat_json(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn probe_extraction_from_labels() {
        assert_eq!(probe_of_label("probe/e3"), Some("e3"));
        assert_eq!(probe_of_label("e11/seed0"), Some("e11"));
        assert_eq!(probe_of_label("e1"), Some("e1"));
        assert_eq!(probe_of_label("kernels/g8"), None);
        assert_eq!(probe_of_label("square/3"), None);
    }

    #[test]
    fn rendered_manifest_parses_and_validates() {
        let report = Report::default();
        let draft = ManifestDraft {
            hash: 0x1234_5678_9abc_def0,
            label: "probe/e3",
            seed: 21,
            outcome: "ok",
            wall_seconds: 0.5,
            busy_seconds: 0.5,
            report: Some(&report),
            blob: Some("blobs/123456789abcdef0.wire"),
            panic: None,
        };
        let text = render_manifest(7, &draft);
        let map = parse_flat_json(&text).expect("manifest is valid flat JSON");
        for key in MANIFEST_REQUIRED_KEYS {
            assert!(map.contains_key(key), "missing {key} in:\n{text}");
        }
        let m = manifest_from_map("run-000007-123456789abcdef0.json", map)
            .expect("manifest validates");
        assert_eq!(m.seq, 7);
        assert_eq!(m.probe.as_deref(), Some("e3"));
        assert_eq!(m.config_hash, "123456789abcdef0");
        assert_eq!(m.outcome, "ok");
    }

    #[test]
    fn failed_manifest_carries_the_panic_line() {
        let draft = ManifestDraft {
            hash: 0,
            label: "sweep/broken",
            seed: 0,
            outcome: "failed",
            wall_seconds: 0.0,
            busy_seconds: 0.0,
            report: None,
            blob: None,
            panic: Some("index out of bounds: the len is 4"),
        };
        let text = render_manifest(1, &draft);
        let map = parse_flat_json(&text).expect("valid flat JSON");
        assert_eq!(map.get("outcome").and_then(|v| v.str()), Some("failed"));
        assert_eq!(
            map.get("panic").and_then(|v| v.str()),
            Some("index out of bounds: the len is 4")
        );
        assert_eq!(
            map.get("config_hash").and_then(|v| v.str()),
            Some("0000000000000000")
        );
    }
}
