//! Arrhenius-style aging model with a steady-state thermal proxy.
//!
//! Full thermal simulation (HotSpot-style RC networks) is out of scope and
//! unnecessary for the scheduling decisions under study: what matters is
//! that sustained high power makes a core *relatively* more worn than its
//! neighbours. We therefore use the standard steady-state proxy
//! `T = T_ambient + R_th · P` and the Arrhenius acceleration factor
//! `AF(T) = exp(Ea/k · (1/T_ref − 1/T))` that underlies NBTI and
//! electromigration MTTF models.

use serde::{Deserialize, Serialize};

/// Boltzmann constant in eV/K.
const BOLTZMANN_EV: f64 = 8.617e-5;

/// Parameters of (partial) NBTI-style stress recovery.
///
/// NBTI damage has a *recoverable* component: interface traps partially
/// anneal while the transistor is unstressed. When enabled, a fraction of
/// newly accumulated damage is recoverable and decays exponentially during
/// low-power epochs — which rewards policies (like the test-aware mapper)
/// that grant cores genuine rest periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Fraction of new damage that is recoverable, in `[0, 1]`.
    pub recoverable_fraction: f64,
    /// Time constant of the healing exponential, seconds.
    pub time_constant: f64,
    /// A core heals only while drawing less than this, watts.
    pub idle_power_threshold: f64,
}

impl RecoveryParams {
    /// Typical NBTI-flavoured values at this simulator's compressed
    /// timescale: 30 % of damage recoverable with a 200 ms time constant,
    /// healing below 0.05 W.
    pub fn new() -> Self {
        RecoveryParams {
            recoverable_fraction: 0.3,
            time_constant: 0.2,
            idle_power_threshold: 0.05,
        }
    }
}

impl Default for RecoveryParams {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps per-core power to a wear rate (damage units per second).
///
/// # Examples
///
/// ```
/// use manytest_aging::model::AgingModel;
///
/// let m = AgingModel::default();
/// let cool = m.wear_rate(0.1);
/// let hot = m.wear_rate(1.0);
/// assert!(hot > cool);
/// // At reference conditions the acceleration factor is exactly 1.
/// let t_ref = m.reference_temperature();
/// assert!((m.acceleration_at(t_ref) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Ambient (zero-power) die temperature, kelvin.
    pub t_ambient: f64,
    /// Thermal resistance of one core tile, kelvin per watt.
    pub r_thermal: f64,
    /// Activation energy, eV (NBTI/EM-typical ≈ 0.5–0.7 eV).
    pub activation_energy: f64,
    /// Reference temperature at which the acceleration factor is 1, kelvin.
    pub t_reference: f64,
    /// Base wear rate at the reference temperature, damage/second.
    pub base_rate: f64,
    /// Optional NBTI-style partial recovery (None = damage is permanent).
    pub recovery: Option<RecoveryParams>,
}

impl AgingModel {
    /// A model tuned for small manycore tiles: 45 °C ambient, 30 K/W tile
    /// thermal resistance, 0.6 eV activation energy, reference at 60 °C.
    pub fn new() -> Self {
        AgingModel {
            t_ambient: 318.15,     // 45 °C
            r_thermal: 30.0,       // K/W per tile
            activation_energy: 0.6,
            t_reference: 333.15,   // 60 °C
            base_rate: 1.0,
            recovery: None,
        }
    }

    /// Enables NBTI-style partial recovery with the given parameters.
    #[must_use]
    pub fn with_recovery(mut self, params: RecoveryParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.recoverable_fraction),
            "recoverable fraction must be in [0,1]"
        );
        assert!(params.time_constant > 0.0, "time constant must be positive");
        self.recovery = Some(params);
        self
    }

    /// Steady-state temperature of a core drawing `power` watts, kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative.
    pub fn temperature(&self, power: f64) -> f64 {
        assert!(power >= 0.0, "power must be non-negative");
        self.t_ambient + self.r_thermal * power
    }

    /// Arrhenius acceleration factor at absolute temperature `t` kelvin.
    pub fn acceleration_at(&self, t: f64) -> f64 {
        assert!(t > 0.0, "absolute temperature must be positive");
        (self.activation_energy / BOLTZMANN_EV * (1.0 / self.t_reference - 1.0 / t)).exp()
    }

    /// Wear rate (damage/second) of a core drawing `power` watts.
    pub fn wear_rate(&self, power: f64) -> f64 {
        self.base_rate * self.acceleration_at(self.temperature(power))
    }

    /// Damage accumulated while drawing `power` watts for `seconds`.
    pub fn damage(&self, power: f64, seconds: f64) -> f64 {
        assert!(seconds >= 0.0, "time must be non-negative");
        self.wear_rate(power) * seconds
    }

    /// The reference temperature (where acceleration = 1), kelvin.
    pub fn reference_temperature(&self) -> f64 {
        self.t_reference
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_is_affine_in_power() {
        let m = AgingModel::default();
        let t0 = m.temperature(0.0);
        let t1 = m.temperature(1.0);
        let t2 = m.temperature(2.0);
        assert_eq!(t0, m.t_ambient);
        assert!((t2 - t1 - (t1 - t0)).abs() < 1e-9);
    }

    #[test]
    fn acceleration_is_monotone_in_temperature() {
        let m = AgingModel::default();
        let mut last = 0.0;
        for t in [300.0, 320.0, 340.0, 360.0, 380.0] {
            let af = m.acceleration_at(t);
            assert!(af > last);
            last = af;
        }
    }

    #[test]
    fn acceleration_is_one_at_reference() {
        let m = AgingModel::default();
        assert!((m.acceleration_at(m.t_reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wear_rate_monotone_in_power() {
        let m = AgingModel::default();
        let rates: Vec<f64> = [0.0, 0.5, 1.0, 2.0].iter().map(|&p| m.wear_rate(p)).collect();
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn hot_core_ages_much_faster() {
        let m = AgingModel::default();
        // 2 W tile sits 60 K above ambient: acceleration should be large.
        let ratio = m.wear_rate(2.0) / m.wear_rate(0.0);
        assert!(ratio > 5.0, "expected strong thermal acceleration, got {ratio}");
    }

    #[test]
    fn damage_scales_linearly_with_time() {
        let m = AgingModel::default();
        let d1 = m.damage(1.0, 10.0);
        let d2 = m.damage(1.0, 20.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
        assert_eq!(m.damage(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        AgingModel::default().temperature(-0.1);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(AgingModel::default(), AgingModel::new());
        assert!(AgingModel::default().recovery.is_none());
    }

    #[test]
    fn with_recovery_stores_params() {
        let m = AgingModel::default().with_recovery(RecoveryParams::default());
        let r = m.recovery.expect("recovery enabled");
        assert!((0.0..=1.0).contains(&r.recoverable_fraction));
        assert!(r.time_constant > 0.0);
    }

    #[test]
    #[should_panic(expected = "recoverable fraction")]
    fn bad_recovery_fraction_panics() {
        let _ = AgingModel::default().with_recovery(RecoveryParams {
            recoverable_fraction: 1.5,
            ..RecoveryParams::default()
        });
    }
}
