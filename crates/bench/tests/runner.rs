//! Behavioural tests of the deterministic batch runner: submission-order
//! results under adversarial completion order, panic propagation, and the
//! `jobs = 0 / 1` edge cases.

use manytest_bench::runner::Batch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn results_follow_submission_order_not_completion_order() {
    // Earlier submissions sleep longer, so with several workers the jobs
    // *complete* in roughly reverse submission order — the results must
    // still come back in submission order.
    let n = 12u64;
    let mut batch = Batch::new();
    for i in 0..n {
        batch.push(format!("sleep/{i}"), move || {
            std::thread::sleep(Duration::from_millis((n - i) * 3));
            i
        });
    }
    let results = batch.run(4);
    assert_eq!(results, (0..n).collect::<Vec<_>>());
}

#[test]
fn a_panicking_job_does_not_stop_the_others() {
    static RAN: AtomicUsize = AtomicUsize::new(0);
    let mut batch = Batch::new();
    for i in 0..8usize {
        batch.push(format!("job/{i}"), move || {
            RAN.fetch_add(1, Ordering::SeqCst);
            if i == 2 {
                panic!("boom in job {i}");
            }
            i
        });
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.run(3)));
    let payload = outcome.expect_err("the panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom in job 2"), "got panic payload: {msg:?}");
    // Every job still executed despite the panic in the middle.
    assert_eq!(RAN.load(Ordering::SeqCst), 8);
}

#[test]
fn jobs_one_runs_serially_in_order() {
    // With one worker the runner takes the inline path; execution order
    // equals submission order, which we observe through a shared log.
    let log = std::sync::Mutex::new(Vec::new());
    let mut batch = Batch::new();
    for i in 0..6usize {
        let log = &log;
        batch.push(format!("serial/{i}"), move || {
            log.lock().expect("log lock").push(i);
            i * 2
        });
    }
    let results = batch.run(1);
    assert_eq!(results, vec![0, 2, 4, 6, 8, 10]);
    assert_eq!(*log.lock().expect("log lock"), vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn jobs_zero_uses_a_default_and_keeps_order() {
    let mut batch = Batch::new();
    for i in 0..10u32 {
        batch.push(format!("auto/{i}"), move || i + 100);
    }
    let results = batch.run(0);
    assert_eq!(results, (100..110).collect::<Vec<_>>());
}

#[test]
fn more_workers_than_jobs_is_fine() {
    let mut batch = Batch::new();
    batch.push("only", || 7u8);
    batch.push("other", || 9u8);
    assert_eq!(batch.run(64), vec![7, 9]);
}

#[test]
fn empty_batch_returns_empty() {
    let batch: Batch<'_, u8> = Batch::new();
    assert!(batch.is_empty());
    assert_eq!(batch.run(4), Vec::<u8>::new());
}

#[test]
fn run_timed_reports_runs_and_workers() {
    let mut batch = Batch::new();
    for i in 0..5u32 {
        batch.push(format!("t/{i}"), move || i);
    }
    assert_eq!(batch.len(), 5);
    let (results, stats) = batch.run_timed(3);
    assert_eq!(results, vec![0, 1, 2, 3, 4]);
    assert_eq!(stats.runs, 5);
    assert_eq!(stats.workers, 3);
    assert!(stats.wall_seconds >= 0.0);
}

#[test]
fn borrowed_data_can_be_captured() {
    // The 'scope lifetime lets jobs borrow from the caller's stack.
    let inputs = vec![3u64, 1, 4, 1, 5];
    let mut batch = Batch::new();
    for (i, v) in inputs.iter().enumerate() {
        batch.push(format!("borrow/{i}"), move || v * 10);
    }
    assert_eq!(batch.run(2), vec![30, 10, 40, 10, 50]);
}
