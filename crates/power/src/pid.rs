//! Dynamic power-budget governors.
//!
//! The ICCD'14 companion paper contributes a **PID-controller-based dynamic
//! power manager**: instead of budgeting against the raw TDP (which wastes
//! headroom whenever the power model over-estimates, and overshoots whenever
//! it under-estimates), the controller observes the *measured* chip power
//! every epoch and nudges the admission cap so measured power converges to
//! the TDP from below. The DATE'15 paper reuses this governor; its leftover
//! headroom is exactly what the test scheduler spends.
//!
//! [`NaiveTdpPolicy`] is the baseline the ICCD'14 paper compares against: a
//! bang-bang policy that halves the cap on violation and restores it only
//! when far below the target.

use serde::{Deserialize, Serialize};

/// A power governor maps (target, measurement) to the next epoch's cap.
pub trait PowerGovernor {
    /// Observes the epoch's measured power and returns the cap the
    /// admission ledger should use next epoch, in watts.
    fn next_cap(&mut self, target: f64, measured: f64) -> f64;

    /// Resets internal state (integrator, history).
    fn reset(&mut self);
}

/// PID controller over the admission cap.
///
/// Controller form (positional, clamped integrator):
///
/// ```text
/// e[k]   = target − measured[k]
/// cap[k] = target + Kp·e[k] + Ki·Σe + Kd·(e[k] − e[k−1])
/// ```
///
/// clamped to `[cap_min, cap_max]`. With the default gains the cap rises
/// when the chip under-uses the TDP (letting more work/tests in) and dips
/// below the TDP after an overshoot, draining the excess.
///
/// # Examples
///
/// ```
/// use manytest_power::pid::{PidController, PowerGovernor};
///
/// let mut pid = PidController::new(0.5, 0.1, 0.05);
/// // Chip measured well below the 80 W target: cap opens above target.
/// let cap = pid.next_cap(80.0, 60.0);
/// assert!(cap > 80.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PidController {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: Option<f64>,
    integral_limit: f64,
    cap_floor_fraction: f64,
    cap_ceil_fraction: f64,
}

impl PidController {
    /// Creates a controller with the given gains.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative or non-finite.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        assert!(
            kp >= 0.0 && ki >= 0.0 && kd >= 0.0,
            "PID gains must be non-negative"
        );
        assert!(
            kp.is_finite() && ki.is_finite() && kd.is_finite(),
            "PID gains must be finite"
        );
        PidController {
            kp,
            ki,
            kd,
            integral: 0.0,
            prev_error: None,
            integral_limit: 50.0,
            cap_floor_fraction: 0.2,
            cap_ceil_fraction: 1.25,
        }
    }

    /// Default tuning used throughout the evaluation.
    pub fn default_tuning() -> Self {
        PidController::new(0.5, 0.08, 0.1)
    }

    /// Sets the anti-windup clamp on the integral term (in watt-epochs).
    #[must_use]
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        assert!(limit >= 0.0, "integral limit must be non-negative");
        self.integral_limit = limit;
        self
    }

    /// Sets the cap clamp as fractions of the target
    /// (`floor·target ..= ceil·target`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ floor ≤ ceil`.
    #[must_use]
    pub fn with_cap_bounds(mut self, floor: f64, ceil: f64) -> Self {
        assert!(
            (0.0..=ceil).contains(&floor),
            "require 0 <= floor <= ceil"
        );
        self.cap_floor_fraction = floor;
        self.cap_ceil_fraction = ceil;
        self
    }
}

impl PowerGovernor for PidController {
    fn next_cap(&mut self, target: f64, measured: f64) -> f64 {
        let error = target - measured;
        self.integral = (self.integral + error).clamp(-self.integral_limit, self.integral_limit);
        let derivative = self.prev_error.map_or(0.0, |prev| error - prev);
        self.prev_error = Some(error);
        let cap = target + self.kp * error + self.ki * self.integral + self.kd * derivative;
        cap.clamp(
            self.cap_floor_fraction * target,
            self.cap_ceil_fraction * target,
        )
    }

    fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }
}

/// The naive baseline: run at the full TDP cap until a violation, then slam
/// the cap down; restore only after the chip cools far below the target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveTdpPolicy {
    throttled: bool,
    throttle_fraction: f64,
    restore_fraction: f64,
}

impl NaiveTdpPolicy {
    /// Creates the baseline with the conventional parameters: throttle the
    /// cap to 50 % of the TDP on violation, restore once measured power is
    /// below 70 % of the TDP.
    pub fn new() -> Self {
        NaiveTdpPolicy {
            throttled: false,
            throttle_fraction: 0.5,
            restore_fraction: 0.7,
        }
    }
}

impl Default for NaiveTdpPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerGovernor for NaiveTdpPolicy {
    fn next_cap(&mut self, target: f64, measured: f64) -> f64 {
        if measured > target {
            self.throttled = true;
        } else if measured < self.restore_fraction * target {
            self.throttled = false;
        }
        if self.throttled {
            self.throttle_fraction * target
        } else {
            target
        }
    }

    fn reset(&mut self) {
        self.throttled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A crude one-pole plant: chip power follows the cap with demand
    /// saturation and a little model error.
    fn simulate<G: PowerGovernor>(gov: &mut G, target: f64, demand: f64, epochs: usize) -> Vec<f64> {
        let mut measured = 0.0;
        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let cap = gov.next_cap(target, measured);
            // The chip consumes whatever the workload demands, limited by
            // the cap, with 5% model error (consumes a bit more than
            // admitted).
            measured = demand.min(cap) * 1.05;
            trace.push(measured);
        }
        trace
    }

    #[test]
    fn pid_converges_near_target_under_high_demand() {
        let mut pid = PidController::default_tuning();
        let trace = simulate(&mut pid, 80.0, 200.0, 200);
        let tail = &trace[150..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 80.0).abs() < 4.0,
            "PID should settle near target, got mean {mean}"
        );
    }

    #[test]
    fn naive_oscillates_and_underutilizes() {
        let mut naive = NaiveTdpPolicy::new();
        let trace = simulate(&mut naive, 80.0, 200.0, 200);
        let tail = &trace[150..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let pid_mean = {
            let mut pid = PidController::default_tuning();
            let t = simulate(&mut pid, 80.0, 200.0, 200);
            t[150..].iter().sum::<f64>() / 50.0
        };
        assert!(
            pid_mean > mean,
            "PID should deliver more power (throughput) than naive: {pid_mean} vs {mean}"
        );
    }

    #[test]
    fn pid_opens_cap_when_underutilized() {
        let mut pid = PidController::default_tuning();
        let cap = pid.next_cap(80.0, 20.0);
        assert!(cap > 80.0);
    }

    #[test]
    fn pid_tightens_cap_after_overshoot() {
        let mut pid = PidController::default_tuning();
        let cap = pid.next_cap(80.0, 100.0);
        assert!(cap < 80.0);
    }

    #[test]
    fn pid_cap_respects_bounds() {
        let mut pid = PidController::new(10.0, 5.0, 0.0).with_cap_bounds(0.5, 1.1);
        for measured in [0.0, 40.0, 200.0, 500.0] {
            let cap = pid.next_cap(80.0, measured);
            assert!((40.0..=88.0).contains(&cap), "cap {cap} out of bounds");
        }
    }

    #[test]
    fn integral_windup_is_clamped() {
        let mut pid = PidController::new(0.0, 1.0, 0.0).with_integral_limit(10.0);
        // Persistent large error would wind up without the clamp.
        for _ in 0..100 {
            pid.next_cap(80.0, 0.0);
        }
        let cap = pid.next_cap(80.0, 0.0);
        assert!(cap <= 80.0 + 10.0 + 1e-9);
    }

    #[test]
    fn reset_clears_history() {
        let mut pid = PidController::default_tuning();
        for _ in 0..10 {
            pid.next_cap(80.0, 10.0);
        }
        pid.reset();
        let fresh = PidController::default_tuning().next_cap(80.0, 10.0);
        assert_eq!(pid.next_cap(80.0, 10.0), fresh);
    }

    #[test]
    fn naive_throttles_and_restores() {
        let mut naive = NaiveTdpPolicy::new();
        assert_eq!(naive.next_cap(80.0, 50.0), 80.0);
        assert_eq!(naive.next_cap(80.0, 90.0), 40.0); // violation → throttle
        assert_eq!(naive.next_cap(80.0, 60.0), 40.0); // still above restore point
        assert_eq!(naive.next_cap(80.0, 40.0), 80.0); // cooled → restore
    }

    #[test]
    fn naive_reset() {
        let mut naive = NaiveTdpPolicy::new();
        naive.next_cap(80.0, 100.0);
        naive.reset();
        assert_eq!(naive.next_cap(80.0, 75.0), 80.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gain_panics() {
        PidController::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn governor_is_object_safe() {
        let mut governors: Vec<Box<dyn PowerGovernor>> = vec![
            Box::new(PidController::default_tuning()),
            Box::new(NaiveTdpPolicy::new()),
        ];
        for g in &mut governors {
            let _ = g.next_cap(80.0, 40.0);
        }
    }
}
