//! Ablation studies of the design choices DESIGN.md calls out: what each
//! ingredient of the proposed scheme is worth.
//!
//! Like the experiments, every driver takes a `jobs` worker count and
//! funnels its runs through one [`Batch`](crate::runner::Batch), so the
//! tables are identical for any `jobs` value.

use crate::runner::Batch;
use crate::Scale;
use manytest_aging::CriticalityModel;
use manytest_core::prelude::*;
use manytest_power::TechNode;

// ---------------------------------------------------------------------------
// A1 — non-intrusive vs intrusive testing
// ---------------------------------------------------------------------------

/// One side of the intrusiveness ablation.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// True = tasks wait for sessions (intrusive).
    pub intrusive: bool,
    /// Throughput, MIPS.
    pub mips: f64,
    /// Mean application latency, seconds.
    pub app_latency: f64,
    /// Tests completed.
    pub tests: u64,
    /// Tests aborted.
    pub aborted: u64,
}

/// A1: the paper's scheduler is non-intrusive. Making tests preempt the
/// workload instead shows what that property buys: intrusive testing keeps
/// every session but stretches application latency and costs throughput.
pub fn a1_intrusiveness(scale: Scale, jobs: usize) -> Vec<A1Row> {
    let ms = scale.ms(300);
    let modes = [false, true];
    let mut batch = Batch::new();
    for &intrusive in modes.iter() {
        batch.push(format!("a1/intrusive={intrusive}"), move || {
            let builder = SystemBuilder::new(TechNode::N16)
                .seed(90)
                .sim_time_ms(ms)
                .arrival_rate(2_500.0)
                .mapper(MapperKind::Baseline) // maximise task/test collisions
                .intrusive_testing(intrusive);
            crate::ledger::run_system("a1", builder)
        });
    }
    modes
        .iter()
        .zip(batch.run(jobs))
        .map(|(&intrusive, r)| A1Row {
            intrusive,
            mips: r.throughput_mips,
            app_latency: r.mean_app_latency,
            tests: r.tests_completed,
            aborted: r.tests_aborted,
        })
        .collect()
}

/// Prints the A1 table.
pub fn print_a1(rows: &[A1Row]) {
    println!("## A1 — non-intrusive vs intrusive testing (16 nm, 2500 apps/s)");
    println!("mode           MIPS      app_latency(ms)  tests  aborted");
    for r in rows {
        println!(
            "{:<13}  {:>8.0}  {:>15.2}  {:>5}  {:>7}",
            if r.intrusive { "intrusive" } else { "non-intrusive" },
            r.mips,
            r.app_latency * 1e3,
            r.tests,
            r.aborted
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// A2 — criticality metric composition
// ---------------------------------------------------------------------------

/// One criticality-weighting variant.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Human-readable variant name.
    pub variant: &'static str,
    /// Pearson correlation between per-core damage and test count.
    pub stress_correlation: f64,
    /// Largest same-core test interval, seconds.
    pub max_interval: f64,
    /// Smallest per-core test count.
    pub min_tests: u64,
}

/// A2: the metric mixes a stress term (adaptivity) and a staleness term
/// (bounded intervals). Ablating each shows why both are needed: stress-only
/// correlates best but lets idle cores starve; time-only bounds intervals
/// but ignores wear.
pub fn a2_criticality_weights(scale: Scale, jobs: usize) -> Vec<A2Row> {
    let ms = scale.ms(500);
    let variants: [(&'static str, f64, f64); 3] = [
        ("stress-only", 1.0, 0.0),
        ("time-only", 0.0, 1.0),
        ("balanced", 0.6, 0.4),
    ];
    let mut batch = Batch::new();
    for &(name, w_stress, w_time) in variants.iter() {
        batch.push(format!("a2/{name}"), move || {
            let builder = SystemBuilder::new(TechNode::N16)
                .seed(91)
                .sim_time_ms(ms)
                .arrival_rate(2_000.0)
                .criticality(CriticalityModel::new(w_stress, w_time, 0.1, 1.0));
            crate::ledger::run_system("a2", builder)
        });
    }
    variants
        .iter()
        .zip(batch.run(jobs))
        .map(|(&(name, _, _), r)| {
            let n = r.damage_per_core.len() as f64;
            let mean_d = r.damage_per_core.iter().sum::<f64>() / n;
            let mean_t = r.tests_per_core.iter().map(|&t| t as f64).sum::<f64>() / n;
            let (mut cov, mut var_d, mut var_t) = (0.0, 0.0, 0.0);
            for c in 0..r.damage_per_core.len() {
                let dd = r.damage_per_core[c] - mean_d;
                let dt = r.tests_per_core[c] as f64 - mean_t;
                cov += dd * dt;
                var_d += dd * dd;
                var_t += dt * dt;
            }
            let stress_correlation = if var_d > 0.0 && var_t > 0.0 {
                cov / (var_d.sqrt() * var_t.sqrt())
            } else {
                0.0
            };
            A2Row {
                variant: name,
                stress_correlation,
                max_interval: r.max_test_interval,
                min_tests: r.min_tests_per_core,
            }
        })
        .collect()
}

/// Prints the A2 table.
pub fn print_a2(rows: &[A2Row]) {
    println!("## A2 — criticality metric composition (16 nm, 2000 apps/s)");
    println!("variant       r(damage,tests)  max_interval(ms)  min_tests/core");
    for r in rows {
        println!(
            "{:<12}  {:>15.3}  {:>16.1}  {:>14}",
            r.variant,
            r.stress_correlation,
            r.max_interval * 1e3,
            r.min_tests
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// A3 — abort overhead sensitivity
// ---------------------------------------------------------------------------

/// One abort-overhead setting.
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Abort overhead, seconds.
    pub overhead: f64,
    /// Throughput penalty vs the no-testing baseline.
    pub penalty: f64,
    /// Aborts in the run.
    pub aborted: u64,
}

/// A3: how the headline sub-1 % penalty depends on the cost of aborting a
/// session — the penalty should scale roughly linearly in the overhead and
/// stay under 1 % for any plausible restore cost.
///
/// Submission order: the per-seed no-testing baselines first, then the
/// overhead sweep (overhead-major, then seed). Everything goes into one
/// batch — the penalty fold against the baselines happens afterwards.
pub fn a3_abort_overhead(scale: Scale, jobs: usize) -> Vec<A3Row> {
    let ms = scale.ms(300);
    let seeds: Vec<u64> = (0..scale.seeds(6) as u64).map(|s| 92 + s).collect();
    let overheads = [0.0, 50e-6, 500e-6, 2e-3];
    let mut batch = Batch::new();
    // The per-run penalty is tiny (≪1 %), so it must be averaged over
    // seeds to rise above scheduling noise.
    for &seed in seeds.iter() {
        batch.push(format!("a3/baseline/seed{seed}"), move || {
            let builder = SystemBuilder::new(TechNode::N16)
                .seed(seed)
                .sim_time_ms(ms)
                .arrival_rate(2_500.0)
                .mapper(MapperKind::Baseline)
                .testing(false);
            crate::ledger::run_system("a3", builder)
        });
    }
    for &overhead in overheads.iter() {
        for &seed in seeds.iter() {
            batch.push(format!("a3/overhead{overhead}/seed{seed}"), move || {
                let mut cfg = SystemConfig::for_node(TechNode::N16);
                cfg.seed = seed;
                cfg.horizon = manytest_sim::Duration::from_ms(ms);
                cfg.arrival_rate = 2_500.0;
                cfg.mapper = MapperKind::Baseline;
                cfg.abort_overhead = manytest_sim::Duration::from_secs_f64(overhead);
                crate::ledger::run_system("a3", SystemBuilder::from_config(cfg))
            });
        }
    }
    let reports = batch.run(jobs);
    let (baselines, sweeps) = reports.split_at(seeds.len());
    overheads
        .iter()
        .enumerate()
        .map(|(i, &overhead)| {
            let mut penalty = 0.0;
            let mut aborted = 0;
            for (j, r) in sweeps[i * seeds.len()..(i + 1) * seeds.len()].iter().enumerate() {
                penalty += r.throughput_penalty_vs(&baselines[j]);
                aborted += r.tests_aborted;
            }
            A3Row {
                overhead,
                penalty: penalty / seeds.len() as f64,
                aborted: aborted / seeds.len() as u64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A4 — V/f level rotation vs fixed-level testing on voltage-dependent faults
// ---------------------------------------------------------------------------

/// One side of the level-rotation ablation.
#[derive(Debug, Clone)]
pub struct A4Row {
    /// Test-level policy description.
    pub policy: &'static str,
    /// Faults detected (out of the injected population).
    pub detected: u64,
    /// Faults injected.
    pub injected: u64,
    /// Mean detection latency, seconds (0 when nothing detected).
    pub latency: f64,
}

/// A4: inject faults that are each observable at exactly *one* DVFS level
/// (voltage-dependent marginalities). The paper's ladder rotation finds
/// them all; testing only at nominal V/f structurally misses every fault
/// whose window lies below the top level.
pub fn a4_level_rotation(scale: Scale, jobs: usize) -> Vec<A4Row> {
    let ms = scale.ms(1_200);
    let run = move |fixed: Option<u8>| -> Report {
        let mut cfg = SystemConfig::for_node(TechNode::N16);
        cfg.seed = 93;
        cfg.horizon = manytest_sim::Duration::from_ms(ms);
        cfg.arrival_rate = 400.0;
        cfg.injected_faults = 40;
        cfg.vf_windowed_fault_fraction = 1.0;
        cfg.test_scheduler.fixed_level = fixed;
        crate::ledger::run_system("a4", SystemBuilder::from_config(cfg))
    };
    let mut batch = Batch::new();
    batch.push("a4/ladder-rotation", move || run(None));
    batch.push("a4/nominal-only", move || run(Some(4)));
    let mut reports = batch.run(jobs).into_iter();
    let rotate = reports.next().expect("rotation run");
    let nominal_only = reports.next().expect("nominal run");
    vec![
        A4Row {
            policy: "ladder rotation (paper)",
            detected: rotate.faults_detected,
            injected: rotate.faults_injected,
            latency: rotate.mean_detection_latency,
        },
        A4Row {
            policy: "nominal V/f only",
            detected: nominal_only.faults_detected,
            injected: nominal_only.faults_injected,
            latency: nominal_only.mean_detection_latency,
        },
    ]
}

/// Prints the A4 table.
pub fn print_a4(rows: &[A4Row]) {
    println!("## A4 — level rotation vs fixed-level testing (voltage-dependent faults)");
    println!("policy                   detected  injected  mean_latency(ms)");
    for r in rows {
        println!(
            "{:<23}  {:>8}  {:>8}  {:>16.1}",
            r.policy,
            r.detected,
            r.injected,
            r.latency * 1e3
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// A5 — steady-state thermal proxy vs transient RC grid
// ---------------------------------------------------------------------------

/// One thermal-model variant's results.
#[derive(Debug, Clone)]
pub struct A5Row {
    /// Model description.
    pub model: &'static str,
    /// Mean per-core lifetime damage.
    pub mean_damage: f64,
    /// Relative damage spread (σ/µ).
    pub damage_spread: f64,
    /// Pearson r(damage, tests) — criticality adaptation strength.
    pub adaptation: f64,
    /// Peak die temperature observed, °C (NaN-free: ambient when proxy).
    pub peak_temp_c: f64,
}

fn damage_adaptation(r: &Report) -> (f64, f64, f64) {
    let n = r.damage_per_core.len() as f64;
    let mean_d = r.damage_per_core.iter().sum::<f64>() / n;
    let mean_t = r.tests_per_core.iter().map(|&t| t as f64).sum::<f64>() / n;
    let (mut cov, mut var_d, mut var_t) = (0.0, 0.0, 0.0);
    for c in 0..r.damage_per_core.len() {
        let dd = r.damage_per_core[c] - mean_d;
        let dt = r.tests_per_core[c] as f64 - mean_t;
        cov += dd * dt;
        var_d += dd * dd;
        var_t += dt * dt;
    }
    let corr = if var_d > 0.0 && var_t > 0.0 {
        cov / (var_d.sqrt() * var_t.sqrt())
    } else {
        0.0
    };
    ((var_d / n).sqrt() / mean_d, mean_d, corr)
}

/// A5: swap the steady-state thermal proxy for the transient RC grid. The
/// RC grid smears heat laterally and in time, so per-core damage spreads
/// less — but the criticality adaptation (worn cores tested more) must
/// survive the model change, showing the scheduler does not depend on the
/// proxy's sharpness.
pub fn a5_thermal_model(scale: Scale, jobs: usize) -> Vec<A5Row> {
    let ms = scale.ms(500);
    let modes = [false, true];
    let mut batch = Batch::new();
    for &transient in modes.iter() {
        batch.push(format!("a5/transient={transient}"), move || {
            let builder = SystemBuilder::new(TechNode::N16)
                .seed(94)
                .sim_time_ms(ms)
                .arrival_rate(2_000.0)
                .transient_thermal(transient);
            crate::ledger::run_system("a5", builder)
        });
    }
    modes
        .iter()
        .zip(batch.run(jobs))
        .map(|(&transient, r)| {
            let (spread, mean, corr) = damage_adaptation(&r);
            let peak_temp_c = r
                .trace
                .series("max_temp_k")
                .and_then(|s| s.max_value())
                .map(|k| k - 273.15)
                .unwrap_or(45.0);
            A5Row {
                model: if transient {
                    "transient RC grid"
                } else {
                    "steady-state proxy"
                },
                mean_damage: mean,
                damage_spread: spread,
                adaptation: corr,
                peak_temp_c,
            }
        })
        .collect()
}

/// Prints the A5 table.
pub fn print_a5(rows: &[A5Row]) {
    println!("## A5 — thermal model ablation (16 nm, 2000 apps/s)");
    println!("model               mean_damage  spread(σ/µ)  r(damage,tests)  peak_T(°C)");
    for r in rows {
        println!(
            "{:<18}  {:>11.4}  {:>10.1}%  {:>15.3}  {:>10.1}",
            r.model,
            r.mean_damage,
            r.damage_spread * 100.0,
            r.adaptation,
            r.peak_temp_c
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// A6 — NoC contention model on/off
// ---------------------------------------------------------------------------

/// One side of the contention ablation.
#[derive(Debug, Clone)]
pub struct A6Row {
    /// True = queueing-delay contention enabled.
    pub contention: bool,
    /// Throughput, MIPS.
    pub mips: f64,
    /// Mean application latency, seconds.
    pub app_latency: f64,
    /// Peak link load observed (0 when the model is off).
    pub peak_link_load: f64,
}

/// A6: enabling the queueing-delay contention model inflates message
/// latencies where links run hot. At the evaluation's loads the effect is
/// small (contiguous mapping keeps links cool), which *validates* the
/// zero-load default used for the headline experiments.
pub fn a6_contention(scale: Scale, jobs: usize) -> Vec<A6Row> {
    let ms = scale.ms(300);
    let modes = [false, true];
    let mut batch = Batch::new();
    for &contention in modes.iter() {
        batch.push(format!("a6/contention={contention}"), move || {
            let builder = SystemBuilder::new(TechNode::N16)
                .seed(95)
                .sim_time_ms(ms)
                .arrival_rate(3_000.0)
                .model_contention(contention);
            crate::ledger::run_system("a6", builder)
        });
    }
    modes
        .iter()
        .zip(batch.run(jobs))
        .map(|(&contention, r)| A6Row {
            contention,
            mips: r.throughput_mips,
            app_latency: r.mean_app_latency,
            peak_link_load: r
                .trace
                .series("peak_link_load")
                .and_then(|s| s.max_value())
                .unwrap_or(0.0),
        })
        .collect()
}

/// Prints the A6 table.
pub fn print_a6(rows: &[A6Row]) {
    println!("## A6 — NoC contention model (16 nm, 3000 apps/s)");
    println!("contention  MIPS      app_latency(ms)  peak_link_load");
    for r in rows {
        println!(
            "{:<10}  {:>8.0}  {:>15.2}  {:>14.3}",
            if r.contention { "on" } else { "off" },
            r.mips,
            r.app_latency * 1e3,
            r.peak_link_load
        );
    }
    println!();
}

/// Prints the A3 table.
pub fn print_a3(rows: &[A3Row]) {
    println!("## A3 — abort-overhead sensitivity (16 nm, 2500 apps/s, baseline mapper)");
    println!("overhead(us)  penalty%   aborted");
    for r in rows {
        println!(
            "{:>11.0}  {:>8.3}  {:>8}",
            r.overhead * 1e6,
            r.penalty * 100.0,
            r.aborted
        );
    }
    println!();
}
