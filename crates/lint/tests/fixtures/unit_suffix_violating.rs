pub fn overdue(epoch_us: f64, timeout_ms: f64) -> bool {
    epoch_us > timeout_ms
}

pub fn headroom(cap_w: f64, draw_mw: f64) -> f64 {
    cap_w - draw_mw
}
