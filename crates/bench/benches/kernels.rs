//! Micro-benchmarks of the simulator's hot kernels: one control epoch of
//! the full system, a mapping decision, the region search, XY routing and
//! the power model. These bound how far the experiments can scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use manytest_core::prelude::*;
use manytest_map::{ConaMapper, MapContext, Mapper, TestAwareMapper};
use manytest_noc::{xy_route, Coord, Mesh2D, RegionSearch};
use manytest_power::{PowerModel, VfLadder};
use manytest_sim::SimRng;
use manytest_workload::presets;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

// Counting allocator so the map_context kernel can report allocations per
// refill alongside its timing (the guarantee is zero after the first tick).
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bench_map_context(c: &mut Criterion) {
    let mut system = SystemBuilder::new(TechNode::N16)
        .seed(2)
        .build()
        .expect("valid config");
    // First tick sizes the scratch buffers.
    std::hint::black_box(system.map_context(0.0).free_count());
    // Allocation audit outside the timing harness (the harness itself
    // allocates its sample vector).
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut t = 0.0;
    for _ in 0..1_000 {
        t += 1e-4;
        std::hint::black_box(system.map_context(t).free_count());
    }
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    println!("map_context/allocs_per_1000_warm_refills: {allocs} (target: 0)");
    c.bench_function("map_context_refill_16nm", |b| {
        b.iter(|| {
            t += 1e-4;
            std::hint::black_box(system.map_context(t).free_count())
        })
    });
}

fn bench_full_system_ms(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("run_100ms_16nm", |b| {
        b.iter_batched(
            || {
                SystemBuilder::new(TechNode::N16)
                    .seed(1)
                    .arrival_rate(1_000.0)
                    .sim_time_ms(100)
                    .build()
                    .expect("valid config")
            },
            |system| std::hint::black_box(system.run()),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mesh = Mesh2D::new(16, 16);
    let mut ctx = MapContext::all_free(mesh);
    let mut rng = SimRng::seed_from(3);
    for coord in mesh.coords() {
        if rng.gen_bool(0.4) {
            ctx.set_free(coord, false);
        }
        ctx.set_utilization(coord, rng.next_f64());
        ctx.set_criticality(coord, rng.next_f64() * 3.0);
    }
    let app = presets::vopd();
    let cona = ConaMapper::new();
    let tum = TestAwareMapper::default();
    let mut group = c.benchmark_group("mapping");
    group.bench_function("cona_vopd_16x16", |b| {
        b.iter(|| std::hint::black_box(cona.map(&ctx, &app)))
    });
    group.bench_function("tum_vopd_16x16", |b| {
        b.iter(|| std::hint::black_box(tum.map(&ctx, &app)))
    });
    group.finish();
}

fn bench_region_search(c: &mut Criterion) {
    let mesh = Mesh2D::new(16, 16);
    let search = RegionSearch::new(mesh);
    c.bench_function("region_search_12_of_256", |b| {
        b.iter(|| {
            std::hint::black_box(search.find(
                12,
                |coord| (coord.x as usize + coord.y as usize) % 3 != 0,
                |coord| coord.x as f64,
            ))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    c.bench_function("xy_route_diag_16", |b| {
        b.iter(|| {
            let route = xy_route(Coord::new(0, 0), Coord::new(15, 15));
            std::hint::black_box(route.count())
        })
    });
}

fn bench_power_model(c: &mut Criterion) {
    let model = PowerModel::for_node(TechNode::N16);
    let ladder = VfLadder::for_node(TechNode::N16, 5);
    c.bench_function("core_power_ladder", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for op in ladder.iter() {
                acc += model.core_power(op, 0.5);
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_full_system_ms,
    bench_map_context,
    bench_mapping,
    bench_region_search,
    bench_routing,
    bench_power_model
);
criterion_main!(benches);
