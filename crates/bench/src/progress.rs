//! Live per-job progress/heartbeat telemetry for the batch runner.
//!
//! Every batch job registers itself here for the duration of its run
//! (see `runner.rs`); the simulation publishes *deterministic* epoch and
//! event counters into shared [`ProgressCounters`], and — only when the
//! user opted in with `--progress` — a bench-side renderer thread pairs
//! those counters with its own wall clock to print heartbeat frames to
//! stderr: per-job percent, ETA, live event counts, and a *stalled*
//! warning for any job whose counters stop moving for longer than
//! `MANYTEST_STALL_SECONDS` (default 30). Wall-clock never crosses into
//! the simulation, so attaching progress cannot change any result.

use manytest_sim::{ProgressCounters, ProgressSnapshot};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// Seconds of counter silence before a job is flagged as stalled
/// (`MANYTEST_STALL_SECONDS`, default 30).
pub fn stall_seconds() -> f64 {
    std::env::var("MANYTEST_STALL_SECONDS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(30.0)
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the stderr heartbeat renderer on for this process (the
/// `--progress` flag). Idempotent; spawns the renderer thread once.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
    spawn_renderer();
}

/// Whether `--progress` rendering is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Shared state of one in-flight (or recently finished) batch job.
///
/// The runner registers one per job; the ledger reads the label and
/// deposits the config hash through the thread-local handle, and the
/// renderer thread reads everything through the board.
pub struct JobState {
    label: String,
    counters: Arc<ProgressCounters>,
    config_hash: AtomicU64,
    cached: AtomicBool,
    done: AtomicBool,
    started: Instant,
}

impl JobState {
    /// The label the job was pushed with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The job's shared progress counters (installed into the simulation
    /// by the ledger funnel).
    pub fn counters(&self) -> Arc<ProgressCounters> {
        Arc::clone(&self.counters)
    }

    /// Records the job's config fingerprint (0 = not yet known).
    pub fn set_config_hash(&self, hash: u64) {
        self.config_hash.store(hash, Ordering::Relaxed);
    }

    /// The recorded config fingerprint, if the ledger funnel ran.
    pub fn config_hash(&self) -> Option<u64> {
        match self.config_hash.load(Ordering::Relaxed) {
            0 => None,
            h => Some(h),
        }
    }

    /// Marks the job as served from the ledger cache.
    pub fn mark_cached(&self) {
        self.cached.store(true, Ordering::Relaxed);
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<JobState>>> = const { RefCell::new(Vec::new()) };
}

/// All registered jobs, for the renderer thread. Only populated while
/// rendering is enabled, so plain batch runs don't accumulate entries.
static BOARD: Mutex<Vec<Arc<JobState>>> = Mutex::new(Vec::new());

/// Registers the calling thread as running the job `label` until the
/// returned guard drops. Nested registrations (a batch inside a batch
/// job) stack; the innermost wins for [`with_current`].
pub fn job_started(label: &str) -> JobGuard {
    let state = Arc::new(JobState {
        label: label.to_owned(),
        counters: Arc::new(ProgressCounters::new()),
        config_hash: AtomicU64::new(0),
        cached: AtomicBool::new(false),
        done: AtomicBool::new(false),
        started: Instant::now(),
    });
    if enabled() {
        BOARD.lock().expect("progress board lock").push(Arc::clone(&state));
    }
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(&state)));
    JobGuard { state }
}

/// Scope guard returned by [`job_started`]; unregisters the job and
/// marks it done on drop.
pub struct JobGuard {
    state: Arc<JobState>,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.state.done.store(true, Ordering::Relaxed);
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|s| Arc::ptr_eq(s, &self.state)) {
                stack.remove(pos);
            }
        });
    }
}

/// Runs `f` with the calling thread's innermost registered job, if any.
/// This is how the ledger funnel finds the label and counters of the
/// batch job it is running inside.
pub fn with_current<T>(f: impl FnOnce(&JobState) -> T) -> Option<T> {
    CURRENT.with(|c| c.borrow().last().map(Arc::clone)).map(|s| f(&s))
}

// ---------------------------------------------------------------------------
// Heartbeat rendering.
// ---------------------------------------------------------------------------

/// One job's view for a heartbeat frame — plain data so the renderer is
/// a pure, unit-testable function of its inputs.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job label.
    pub label: String,
    /// Latest deterministic counter snapshot.
    pub snap: ProgressSnapshot,
    /// Whether the job was served from the ledger cache.
    pub cached: bool,
    /// Whether the job's guard dropped (result delivered).
    pub done: bool,
    /// Wall seconds since the job started.
    pub elapsed_seconds: f64,
    /// Wall seconds since the counters last changed, when that exceeds
    /// the stall threshold (the watchdog verdict).
    pub stalled_for: Option<f64>,
}

/// Renders one heartbeat frame (multiple stderr lines, each prefixed
/// `[progress]`). Finished jobs are folded into the header count;
/// running jobs get percent/ETA, event counts and the stall verdict.
pub fn render_frame(views: &[JobView]) -> String {
    let done = views.iter().filter(|v| v.done).count();
    let cached = views.iter().filter(|v| v.cached).count();
    let mut out = String::new();
    let _ = write!(
        out,
        "[progress] {} running, {done} done",
        views.len() - done
    );
    if cached > 0 {
        let _ = write!(out, " ({cached} from cache)");
    }
    out.push('\n');
    for v in views.iter().filter(|v| !v.done) {
        let s = &v.snap;
        let _ = write!(out, "[progress]   {:<24}", v.label);
        if s.epochs_total > 0 {
            let frac = s.epochs_done as f64 / s.epochs_total as f64;
            let _ = write!(
                out,
                " {:>5.1}% ({}/{} epochs)",
                frac * 100.0,
                s.epochs_done,
                s.epochs_total
            );
            if frac > 0.0 && frac < 1.0 {
                let eta = v.elapsed_seconds * (1.0 - frac) / frac;
                let _ = write!(out, "  ETA {eta:.1}s");
            }
        } else {
            let _ = write!(out, "  starting");
        }
        let _ = write!(out, "  events {}", s.events_emitted);
        if s.events_dropped > 0 {
            let _ = write!(out, " ({} dropped)", s.events_dropped);
        }
        if let Some(quiet) = v.stalled_for {
            let _ = write!(out, "  STALLED {quiet:.1}s without progress");
        }
        out.push('\n');
    }
    out
}

/// Spawns the heartbeat renderer daemon thread (once per process). The
/// thread snapshots the board every 200 ms and prints a frame whenever
/// at least one job is registered; it also keeps the per-job
/// last-changed timestamps that back the stall watchdog.
fn spawn_renderer() {
    static STARTED: Once = Once::new();
    STARTED.call_once(|| {
        let threshold = stall_seconds();
        let _ = std::thread::Builder::new()
            .name("progress-heartbeat".into())
            .spawn(move || {
                // Keyed by JobState address: (last snapshot, last change).
                let mut seen: BTreeMap<usize, (ProgressSnapshot, Instant)> = BTreeMap::new();
                loop {
                    let board: Vec<Arc<JobState>> =
                        BOARD.lock().expect("progress board lock").clone();
                    if !board.is_empty() {
                        let now = Instant::now();
                        let views: Vec<JobView> = board
                            .iter()
                            .map(|s| {
                                let key = Arc::as_ptr(s) as usize;
                                let snap = s.counters.snapshot();
                                let entry = seen.entry(key).or_insert((snap, now));
                                if entry.0 != snap {
                                    *entry = (snap, now);
                                }
                                let done = s.done.load(Ordering::Relaxed);
                                let quiet = now.duration_since(entry.1).as_secs_f64();
                                JobView {
                                    label: s.label.clone(),
                                    snap,
                                    cached: s.cached.load(Ordering::Relaxed),
                                    done,
                                    elapsed_seconds: now
                                        .duration_since(s.started)
                                        .as_secs_f64(),
                                    stalled_for: (!done && !snap.finished
                                        && quiet > threshold)
                                        .then_some(quiet),
                                }
                            })
                            .collect();
                        eprint!("{}", render_frame(&views));
                        // Forget finished jobs so the board stays small
                        // over a long sweep (they rendered at least once
                        // via the header count).
                        let mut b = BOARD.lock().expect("progress board lock");
                        b.retain(|s| !s.done.load(Ordering::Relaxed));
                        seen.retain(|&k, _| {
                            b.iter().any(|s| Arc::as_ptr(s) as usize == k)
                        });
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
            });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: u64, total: u64, events: u64, dropped: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            epochs_total: total,
            epochs_done: done,
            events_emitted: events,
            events_dropped: dropped,
            finished: false,
        }
    }

    #[test]
    fn frame_shows_percent_and_eta() {
        let views = [JobView {
            label: "probe/e3".into(),
            snap: snap(250, 500, 1234, 0),
            cached: false,
            done: false,
            elapsed_seconds: 2.0,
            stalled_for: None,
        }];
        let frame = render_frame(&views);
        assert!(frame.contains("1 running, 0 done"), "got: {frame}");
        assert!(frame.contains("probe/e3"), "got: {frame}");
        assert!(frame.contains("50.0% (250/500 epochs)"), "got: {frame}");
        assert!(frame.contains("ETA 2.0s"), "got: {frame}");
        assert!(frame.contains("events 1234"), "got: {frame}");
        assert!(!frame.contains("dropped"), "got: {frame}");
    }

    #[test]
    fn frame_flags_stalled_jobs_and_dropped_events() {
        let views = [JobView {
            label: "demo/sleep".into(),
            snap: snap(1, 100, 10, 7),
            cached: false,
            done: false,
            elapsed_seconds: 5.0,
            stalled_for: Some(3.25),
        }];
        let frame = render_frame(&views);
        assert!(frame.contains("STALLED 3.2s without progress"), "got: {frame}");
        assert!(frame.contains("(7 dropped)"), "got: {frame}");
    }

    #[test]
    fn finished_jobs_fold_into_the_header() {
        let views = [
            JobView {
                label: "a".into(),
                snap: snap(100, 100, 5, 0),
                cached: true,
                done: true,
                elapsed_seconds: 0.1,
                stalled_for: None,
            },
            JobView {
                label: "b".into(),
                snap: snap(0, 0, 0, 0),
                cached: false,
                done: false,
                elapsed_seconds: 0.0,
                stalled_for: None,
            },
        ];
        let frame = render_frame(&views);
        assert!(frame.contains("1 running, 1 done (1 from cache)"), "got: {frame}");
        assert!(!frame.lines().any(|l| l.contains("  a ")), "done jobs have no row: {frame}");
        assert!(frame.contains("starting"), "got: {frame}");
    }

    #[test]
    fn job_guard_registers_and_unregisters() {
        assert!(with_current(|s| s.label().to_owned()).is_none());
        let guard = job_started("outer/job");
        assert_eq!(
            with_current(|s| s.label().to_owned()).as_deref(),
            Some("outer/job")
        );
        {
            let _inner = job_started("inner/job");
            assert_eq!(
                with_current(|s| s.label().to_owned()).as_deref(),
                Some("inner/job")
            );
        }
        assert_eq!(
            with_current(|s| s.label().to_owned()).as_deref(),
            Some("outer/job")
        );
        with_current(|s| s.set_config_hash(0xabcd)).expect("slot present");
        assert_eq!(with_current(|s| s.config_hash()), Some(Some(0xabcd)));
        drop(guard);
        assert!(with_current(|s| s.label().to_owned()).is_none());
    }

    #[test]
    fn stall_threshold_has_a_sane_default() {
        // The env var may be set by an outer test harness; only check the
        // parse fallback contract.
        let t = stall_seconds();
        assert!(t > 0.0 && t.is_finite());
    }
}
