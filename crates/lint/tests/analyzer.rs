//! Integration tests for `manytest-lint`: every rule against a
//! violating and a clean fixture, span accuracy, the allow audit,
//! synthetic workspaces for the cross-file rules, and the self-check
//! (the repository's own tree must be clean).

use manytest_lint::diag::render_human;
use manytest_lint::source::{SourceFile, Workspace};
use manytest_lint::{lint_files, lint_workspace, run, LintReport};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Lints one fixture under a virtual path (the path selects which
/// crate-scoped rules apply).
fn lint_fixture(virtual_path: &str, name: &str) -> LintReport {
    lint_files(vec![SourceFile::from_source(virtual_path, fixture(name))])
}

fn rules_of(report: &LintReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ----- nondet-collections ----------------------------------------------

#[test]
fn nondet_collections_flags_hash_containers_with_exact_spans() {
    let report = lint_fixture("crates/core/src/x.rs", "nondet_violating.rs");
    assert_eq!(rules_of(&report), vec!["nondet-collections"; 3]);
    // Span accuracy: `use std::collections::HashMap;` — the ident
    // starts at column 23.
    let spans: Vec<(u32, u32)> = report.findings.iter().map(|f| (f.line, f.col)).collect();
    assert_eq!(spans, vec![(1, 23), (3, 19), (4, 5)]);
    assert_eq!(report.findings[0].file, "crates/core/src/x.rs");
}

#[test]
fn nondet_collections_accepts_btreemap_and_strings() {
    let report = lint_fixture("crates/core/src/x.rs", "nondet_clean.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

#[test]
fn nondet_collections_is_scoped_to_sim_crates() {
    // The same violating source outside the simulation crates is fine
    // (the analyzer itself uses whatever containers it likes).
    let report = lint_fixture("crates/lint/src/x.rs", "nondet_violating.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- wall-clock ------------------------------------------------------

#[test]
fn wall_clock_flags_instant_outside_bench() {
    let report = lint_fixture("crates/core/src/x.rs", "wall_clock_violating.rs");
    assert_eq!(rules_of(&report), vec!["wall-clock"; 2]);
    let lines: Vec<u32> = report.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![1, 4]);
    assert_eq!(report.findings[0].col, 16); // `use std::time::Instant;`
}

#[test]
fn wall_clock_exempts_bench_and_accepts_sim_time() {
    let bench = lint_fixture("crates/bench/src/x.rs", "wall_clock_violating.rs");
    assert!(bench.is_clean(), "{}", render_human(&bench.findings, 1));
    let clean = lint_fixture("crates/core/src/x.rs", "wall_clock_clean.rs");
    assert!(clean.is_clean(), "{}", render_human(&clean.findings, 1));
}

// ----- hot-path-purity -------------------------------------------------

/// A synthetic workspace whose `system.rs` carries the fixture source
/// (workspace rules need the whole-tree pass, unlike file rules).
fn hot_path_report(name: &str) -> LintReport {
    let system = SourceFile::from_source("crates/core/src/system.rs", fixture(name));
    run(&Workspace::from_sources("/nonexistent", vec![system]))
}

#[test]
fn hot_path_purity_catches_a_three_deep_indirect_allocation() {
    // The `vec!` sits three calls below the `control` entry point
    // (control → probe_lane → launch_probe → stage_buffer); the finding
    // lands on the sink site and reports the full chain.
    let report = hot_path_report("hot_path_violating.rs");
    let hot: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "hot-path-purity")
        .collect();
    assert_eq!(hot.len(), 1, "{}", render_human(&report.findings, 1));
    assert!(
        hot[0]
            .message
            .contains("control → probe_lane → launch_probe → stage_buffer"),
        "chain missing: {}",
        hot[0].message
    );
    assert!(hot[0].message.contains("allocates"), "{}", hot[0].message);
    assert_eq!(hot[0].line, 16); // the `vec![0; n]` line
}

#[test]
fn hot_path_purity_accepts_site_allows_and_effect_annotations() {
    // The same allocation chain, audited two ways: a fn-level
    // `lint:effect(alloc)` cuts traversal at `launch_probe`, and a
    // direct sink in `control` carries a site allow.
    let report = hot_path_report("hot_path_clean.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

#[test]
fn hot_path_purity_is_anchored_to_system_rs_entry_points() {
    // The identical source under another basename defines no entry
    // points, so the rule stays silent (unit fixtures are exempt).
    let other = SourceFile::from_source("crates/core/src/other.rs", fixture("hot_path_violating.rs"));
    let report = run(&Workspace::from_sources("/nonexistent", vec![other]));
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- event-match-exhaustiveness --------------------------------------

#[test]
fn event_match_flags_a_wildcard_arm_over_sim_event() {
    let report = lint_fixture("crates/core/src/audit.rs", "event_match_violating.rs");
    assert_eq!(rules_of(&report), vec!["event-match-exhaustiveness"]);
    assert_eq!(report.findings[0].line, 5); // the `_ => 0` arm
    assert!(report.findings[0].message.contains("SimEvent"));
}

#[test]
fn event_match_accepts_exhaustive_audited_and_unguarded_matches() {
    let report = lint_fixture("crates/core/src/audit.rs", "event_match_clean.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

#[test]
fn event_match_only_guards_telemetry_consumer_files() {
    // The same wildcard in a non-consumer file is out of scope.
    let report = lint_fixture("crates/core/src/mapper.rs", "event_match_violating.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- unit-suffix-consistency -----------------------------------------

#[test]
fn unit_suffix_flags_unconverted_time_and_power_mixes() {
    let report = lint_fixture("crates/core/src/x.rs", "unit_suffix_violating.rs");
    assert_eq!(rules_of(&report), vec!["unit-suffix-consistency"; 2]);
    assert!(report.findings[0].message.contains("epoch_us"));
    assert!(report.findings[0].message.contains("timeout_ms"));
    assert!(report.findings[1].message.contains("power"));
}

#[test]
fn unit_suffix_accepts_consistent_converted_and_cross_group_arithmetic() {
    let report = lint_fixture("crates/core/src/x.rs", "unit_suffix_clean.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

#[test]
fn unit_suffix_is_scoped_to_sim_crates() {
    let report = lint_fixture("crates/lint/src/x.rs", "unit_suffix_violating.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- rng-escape ------------------------------------------------------

#[test]
fn rng_escape_flags_shared_storage() {
    let report = lint_fixture("crates/core/src/x.rs", "rng_escape_violating.rs");
    assert_eq!(rules_of(&report), vec!["rng-escape"]);
    assert!(report.findings[0].message.contains("`Mutex`"));
    assert_eq!((report.findings[0].line, report.findings[0].col), (4, 20));
}

#[test]
fn rng_escape_accepts_owned_handles_and_derivation() {
    let report = lint_fixture("crates/core/src/x.rs", "rng_escape_clean.rs");
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- allow audit -----------------------------------------------------

#[test]
fn moving_an_allow_away_from_its_violation_reports_unused_allow() {
    // The allow targets the next code line — an unrelated item — so the
    // violation below survives AND the allow is reported stale.
    let src = "// lint:allow(nondet-collections, reason = \"misplaced\")\nfn unrelated() {}\nuse std::collections::HashMap;\n";
    let report = lint_files(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
    let mut rules = rules_of(&report);
    rules.sort();
    assert_eq!(rules, vec!["nondet-collections", "unused-allow"]);
}

#[test]
fn allow_without_reason_is_malformed() {
    let src = "// lint:allow(nondet-collections)\nuse std::collections::HashMap;\n";
    let report = lint_files(vec![SourceFile::from_source("crates/core/src/x.rs", src)]);
    assert!(
        rules_of(&report).contains(&"malformed-allow"),
        "{}",
        render_human(&report.findings, 1)
    );
}

// ----- event-emission-coverage (synthetic workspace) -------------------

fn synthetic_events_workspace(emitter_body: &str, audit_body: &str) -> Workspace {
    let obs = SourceFile::from_source(
        "crates/sim/src/obs.rs",
        "pub enum SimEvent { Alpha, Beta { x: u32 }, Gamma }\n",
    );
    let emitter = SourceFile::from_source("crates/core/src/emitter.rs", emitter_body);
    let audit = SourceFile::from_source("crates/core/src/audit.rs", audit_body);
    Workspace::from_sources("/nonexistent", vec![obs, emitter, audit])
}

#[test]
fn event_coverage_reports_unconstructed_and_unaudited_variants() {
    let ws = synthetic_events_workspace(
        "pub fn emit() { observe(SimEvent::Alpha); observe(SimEvent::Beta { x: 1 }); }\n",
        "pub fn audit() { check(SimEvent::Alpha); check_count(\"Gamma\"); }\n",
    );
    let report = run(&ws);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "event-emission-coverage")
        .map(|f| f.message.as_str())
        .collect();
    // Gamma is audited but never constructed; Beta is constructed but
    // never reconciled.
    assert_eq!(messages.len(), 2, "{}", render_human(&report.findings, 3));
    assert!(messages.iter().any(|m| m.contains("Gamma") && m.contains("never constructed")));
    assert!(messages.iter().any(|m| m.contains("Beta") && m.contains("not reconciled")));
}

#[test]
fn deleting_an_audit_arm_fails_the_lint() {
    // Full coverage first: every variant constructed and audited.
    let emitter =
        "pub fn emit() { observe(SimEvent::Alpha); observe(SimEvent::Beta { x: 1 }); observe(SimEvent::Gamma); }\n";
    let full = synthetic_events_workspace(
        emitter,
        "pub fn audit() { check(SimEvent::Alpha); check(SimEvent::Beta); check_count(\"Gamma\"); }\n",
    );
    assert!(
        run(&full)
            .findings
            .iter()
            .all(|f| f.rule != "event-emission-coverage"),
        "baseline should cover all variants"
    );
    // Delete the Beta arm: the lint must start failing.
    let broken = synthetic_events_workspace(
        emitter,
        "pub fn audit() { check(SimEvent::Alpha); check_count(\"Gamma\"); }\n",
    );
    assert!(run(&broken)
        .findings
        .iter()
        .any(|f| f.rule == "event-emission-coverage" && f.message.contains("Beta")));
}

/// Like `synthetic_events_workspace`, but the obs file also carries a
/// `ROOT_KINDS` const and a `CauseKind::expected` table, opting the
/// workspace into the cause-link half of the rule.
fn cause_table_workspace(expected_body: &str) -> Workspace {
    let obs_src = format!(
        "pub enum SimEvent {{ Alpha, Beta {{ x: u32 }}, Gamma }}\n\
         impl SimEvent {{ pub const ROOT_KINDS: [&'static str; 1] = [\"Alpha\"]; }}\n\
         impl CauseKind {{\n    pub fn expected(self) -> (&'static [&'static str], &'static [&'static str]) {{\n        match self {{\n{expected_body}        }}\n    }}\n}}\n",
    );
    let obs = SourceFile::from_source("crates/sim/src/obs.rs", &obs_src);
    let emitter = SourceFile::from_source(
        "crates/core/src/emitter.rs",
        "pub fn emit() { observe(SimEvent::Alpha); observe(SimEvent::Beta { x: 1 }); observe(SimEvent::Gamma); }\n",
    );
    let audit = SourceFile::from_source(
        "crates/core/src/audit.rs",
        "pub fn audit() { check(SimEvent::Alpha); check(SimEvent::Beta); check_count(\"Gamma\"); }\n",
    );
    Workspace::from_sources("/nonexistent", vec![obs, emitter, audit])
}

#[test]
fn non_root_variant_missing_from_the_cause_table_is_flagged() {
    // Beta is a target; Gamma is neither a root nor a target, even
    // though it appears as a *source* — sources don't count.
    let ws = cause_table_workspace(
        "            CauseKind::A => (&[\"Alpha\"], &[\"Beta\"]),\n            CauseKind::B => (&[\"Gamma\"], &[\"Beta\"]),\n",
    );
    let report = run(&ws);
    assert!(
        report.findings.iter().any(|f| {
            f.rule == "event-emission-coverage"
                && f.message.contains("Gamma")
                && f.message.contains("cause-link table")
        }),
        "{}",
        render_human(&report.findings, 5)
    );
}

#[test]
fn cause_table_covering_every_non_root_variant_is_clean() {
    let ws = cause_table_workspace(
        "            CauseKind::A => (&[\"Alpha\"], &[\"Beta\", \"Gamma\"]),\n",
    );
    let report = run(&ws);
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != "event-emission-coverage"),
        "{}",
        render_human(&report.findings, 5)
    );
}

// ----- event-emission-coverage: provenance emission sites --------------

fn system_workspace(body: &str) -> Workspace {
    let system = SourceFile::from_source("crates/core/src/system.rs", body);
    Workspace::from_sources("/nonexistent", vec![system])
}

#[test]
fn uncaused_emission_sites_require_an_audited_allow() {
    let bare = system_workspace(
        "impl System {\n    fn control(&mut self) {\n        self.observe(now, ev);\n    }\n}\n",
    );
    assert!(
        run(&bare).findings.iter().any(|f| {
            f.rule == "event-emission-coverage" && f.message.contains("provenance root")
        }),
        "bare observe() must be flagged"
    );
    let justified = system_workspace(
        "impl System {\n    fn control(&mut self) {\n        \
         // lint:allow(event-emission-coverage, reason = \"genuine root\")\n        \
         self.observe(now, ev);\n    }\n}\n",
    );
    let report = run(&justified);
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

#[test]
fn raw_on_event_and_emit_record_calls_are_flagged() {
    let report = run(&system_workspace(
        "fn f(obs: &mut dyn Observer) {\n    obs.on_event(&rec);\n    emit_record(obs, id, t, None, ev);\n}\n",
    ));
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "event-emission-coverage")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("on_event")),
        "raw on_event: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("emit_record")),
        "raw emit_record: {messages:?}"
    );
}

#[test]
fn emitter_definitions_and_caused_emissions_need_no_allow() {
    // The `fn observe(` definition and `observe_linked`/`emit_caused`
    // call sites are not root-emission findings.
    let report = run(&system_workspace(
        "impl System {\n    pub fn observe(&mut self, now: f64, ev: SimEvent) -> EventId {\n        \
         self.observe_linked(now, None, ev)\n    }\n    \
         fn g(&mut self) {\n        self.observe_linked(now, Some(link), ev);\n        \
         self.emit_caused(now, kind, cause, ev);\n    }\n}\n",
    ));
    assert!(report.is_clean(), "{}", render_human(&report.findings, 1));
}

// ----- golden-schema (on-disk synthetic workspace) ---------------------

#[test]
fn golden_schema_catches_bad_kinds_unknown_probes_and_doc_drift() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-golden-fixture");
    let golden = root.join("crates/bench/tests/golden");
    std::fs::create_dir_all(&golden).expect("tmpdir");
    std::fs::write(golden.join("e3.quick.json"), "{\n  \"Bogus\": 3\n}\n").expect("write");
    std::fs::write(golden.join("q7.quick.json"), "{ \"Alpha\": 1 }\n").expect("write");
    std::fs::write(golden.join("e11.quick.json"), "{ \"Alpha\": }\n").expect("write");
    std::fs::write(
        root.join("README.md"),
        "Run `repro explain e99` to inspect a probe.\n",
    )
    .expect("write");
    let obs = SourceFile::from_source("crates/sim/src/obs.rs", "pub enum SimEvent { Alpha }\n");
    let events = SourceFile::from_source(
        "crates/bench/src/events.rs",
        "pub const PROBE_IDS: [&str; 2] = [\"e3\", \"e11\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![obs, events]);
    let report = run(&ws);
    let golden_findings: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        golden_findings.iter().any(|m| m.contains("`Bogus`")),
        "bad kind key: {golden_findings:?}"
    );
    assert!(
        golden_findings.iter().any(|m| m.contains("`q7`")),
        "unknown probe id file: {golden_findings:?}"
    );
    assert!(
        golden_findings.iter().any(|m| m.contains("does not parse")),
        "parse error: {golden_findings:?}"
    );
    assert!(
        golden_findings.iter().any(|m| m.contains("`e99`")),
        "doc drift: {golden_findings:?}"
    );
    // The well-formed names were accepted: nothing flagged e3 itself.
    assert!(
        !golden_findings.iter().any(|m| m.contains("unknown probe id `e3`")),
        "{golden_findings:?}"
    );
}

#[test]
fn golden_schema_validates_run_manifests() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-manifest-fixture");
    let dir = root.join("crates/bench/tests/fixtures/manifests");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    // Stale schema, malformed hash, unknown probe/outcome, and a
    // missing required key (`label`) in one manifest; a well-formed
    // sibling draws no findings.
    std::fs::write(
        dir.join("run-000001-bad.json"),
        "{\n  \"schema\": \"manytest-run-manifest-v0\",\n  \"config_hash\": \"XYZ\",\n  \
         \"probe\": \"q9\",\n  \"outcome\": \"exploded\",\n  \"wall_seconds\": 1.5\n}\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("run-000002-good.json"),
        "{\n  \"schema\": \"manytest-run-manifest-v1\",\n  \
         \"config_hash\": \"8735f11164b18c04\",\n  \"label\": \"probe/e3\",\n  \
         \"probe\": \"e3\",\n  \"outcome\": \"ok\",\n  \"wall_seconds\": 0.25\n}\n",
    )
    .expect("write");
    let events = SourceFile::from_source(
        "crates/bench/src/events.rs",
        "pub const PROBE_IDS: [&str; 2] = [\"e3\", \"e11\"];\n",
    );
    let ledger = SourceFile::from_source(
        "crates/bench/src/ledger.rs",
        "pub const MANIFEST_SCHEMA: &str = \"manytest-run-manifest-v1\";\n\
         pub const MANIFEST_REQUIRED_KEYS: [&str; 4] = \
         [\"schema\", \"config_hash\", \"label\", \"outcome\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![events, ledger]);
    let report = run(&ws);
    let findings: Vec<(&str, &str)> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema")
        .map(|f| (f.file.as_str(), f.message.as_str()))
        .collect();
    let bad = "crates/bench/tests/fixtures/manifests/run-000001-bad.json";
    let msgs: Vec<&str> = findings.iter().filter(|(f, _)| *f == bad).map(|(_, m)| *m).collect();
    assert!(msgs.iter().any(|m| m.contains("manifest-v0")), "schema drift: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`XYZ`")), "bad hash: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`q9`")), "unknown probe: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`exploded`")), "bad outcome: {msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("missing required key `label`")),
        "missing key: {msgs:?}"
    );
    // The well-formed manifest drew no findings at all.
    let good = "crates/bench/tests/fixtures/manifests/run-000002-good.json";
    assert!(
        !findings.iter().any(|(f, _)| *f == good),
        "good manifest flagged: {findings:?}"
    );
}

#[test]
fn golden_schema_validates_perfetto_traces_and_flow_pairing() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-trace-fixture");
    let report_dir = root.join("report");
    std::fs::create_dir_all(&report_dir).expect("tmpdir");
    // An unmatched flow start, an X slice without dur, and a bogus phase
    // letter; the well-formed entries draw no findings.
    std::fs::write(
        report_dir.join("e3.trace.json"),
        "[\n\
         {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"p\"}},\n\
         {\"name\":\"FaultActivated\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":100.000,\"pid\":1,\"tid\":103,\"args\":{\"core\":3}},\n\
         {\"name\":\"TestLaunched\",\"cat\":\"session\",\"ph\":\"X\",\"ts\":150.000,\"pid\":1,\"tid\":103},\n\
         {\"name\":\"activation\",\"cat\":\"cause\",\"ph\":\"s\",\"id\":2,\"ts\":100.000,\"pid\":1,\"tid\":103},\n\
         {\"name\":\"oops\",\"ph\":\"q\",\"ts\":1.000,\"pid\":1,\"tid\":1}\n\
         ]\n",
    )
    .expect("write");
    let events = SourceFile::from_source(
        "crates/bench/src/events.rs",
        "pub const PROBE_IDS: [&str; 1] = [\"e3\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![events]);
    let report = run(&ws);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("missing `dur`")),
        "X without dur: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("unknown trace phase letter `q`")),
        "bad phase: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("do not pair up")),
        "unmatched flow: {messages:?}"
    );
    // The valid metadata and instant entries drew no findings of their own.
    assert_eq!(messages.len(), 3, "{messages:?}");
}

#[test]
fn golden_schema_checks_trace_and_diff_doc_ids() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-traceid-fixture");
    std::fs::create_dir_all(&root).expect("tmpdir");
    std::fs::write(
        root.join("README.md"),
        "Run `repro trace e3` then `repro trace q9`.\n\
         Compare with `repro diff e3 e42` or `repro diff e11 --seed2 111`.\n",
    )
    .expect("write");
    let events = SourceFile::from_source(
        "crates/bench/src/events.rs",
        "pub const PROBE_IDS: [&str; 3] = [\"e3\", \"e11\", \"a1\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![events]);
    let report = run(&ws);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("`q9`")),
        "unknown trace id: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`e42`")),
        "unknown second diff id: {messages:?}"
    );
    // e3, e11 and the --seed2 flag drew no findings.
    assert_eq!(messages.len(), 2, "{messages:?}");
}

#[test]
fn golden_schema_validates_kernels_baseline_against_phase_profile() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-kernels-fixture");
    let golden = root.join("crates/bench/tests/golden");
    std::fs::create_dir_all(&golden).expect("tmpdir");
    std::fs::write(
        golden.join("kernels_baseline.json"),
        "{\n  \"g8.epochs\": 250,\n  \"g16.candidates_scanned\": 61798,\n  \
         \"g8.not_a_counter\": 1,\n  \"epochs\": 2,\n  \"x8.epochs\": 3\n}\n",
    )
    .expect("write");
    let obs = SourceFile::from_source(
        "crates/sim/src/obs.rs",
        "pub enum SimEvent { Alpha }\n\
         pub struct PhaseProfile { pub epochs: u64, pub candidates_scanned: u64 }\n",
    );
    let events = SourceFile::from_source(
        "crates/bench/src/events.rs",
        "pub const PROBE_IDS: [&str; 1] = [\"e3\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![obs, events]);
    let report = run(&ws);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema")
        .map(|f| f.message.as_str())
        .collect();
    // The three malformed keys are flagged; the two real ones are not,
    // and the baseline's filename is exempt from the probe-id check.
    assert!(
        messages.iter().any(|m| m.contains("`g8.not_a_counter`")),
        "unknown counter: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`epochs`") && !m.contains("g8")),
        "missing grid prefix: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`x8.epochs`")),
        "bad grid prefix: {messages:?}"
    );
    assert_eq!(messages.len(), 3, "{messages:?}");
}

#[test]
fn golden_schema_checks_doc_metric_names_against_metric_keys() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-metric-fixture");
    std::fs::create_dir_all(&root).expect("tmpdir");
    std::fs::write(
        root.join("README.md"),
        "Scrape `manytest_tests_completed_total` (and the stale \
         `manytest_bogus_metric`) from metrics.prom.\n\
         Rust paths like `manytest_sim::obs` and the crate name \
         `manytest_bench` are not metrics.\n",
    )
    .expect("write");
    let report_src = SourceFile::from_source(
        "crates/bench/src/report.rs",
        "pub const METRIC_KEYS: [&str; 1] = [\"manytest_tests_completed_total\"];\n",
    );
    let ws = Workspace::from_sources(root, vec![report_src]);
    let report = run(&ws);
    let metric_findings: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "golden-schema" && f.message.contains("metric"))
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(
        metric_findings.len(),
        1,
        "only the stale metric is flagged: {metric_findings:?}"
    );
    assert!(metric_findings[0].contains("`manytest_bogus_metric`"));
}

// ----- acceptance: seeded violations fail, the real tree passes --------

#[test]
fn seeding_a_hashmap_into_core_fails_the_workspace_lint() {
    let seeded = SourceFile::from_source(
        "crates/core/src/seeded.rs",
        "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    );
    let report = lint_files(vec![seeded]);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "nondet-collections" && f.file == "crates/core/src/seeded.rs"));
}

#[test]
fn self_check_repo_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace loads");
    assert!(
        report.is_clean(),
        "the repository must lint clean:\n{}",
        render_human(&report.findings, report.files_scanned)
    );
    // Sanity: the scan actually visited the tree.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
}
