//! Configuration validation errors.

use std::fmt;

/// Error returned by [`crate::system::SystemBuilder::build`] when the
/// configuration is inconsistent.
// Not `Eq`: `InvalidFaultFraction` carries the rejected f64.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The epoch length is zero.
    ZeroEpoch,
    /// The simulation horizon is shorter than one epoch.
    HorizonTooShort,
    /// The arrival rate is not strictly positive and finite.
    InvalidArrivalRate,
    /// Fewer than two DVFS levels were requested.
    TooFewDvfsLevels,
    /// The workload mix contains no sources.
    EmptyWorkloadMix,
    /// The mesh edge override is zero.
    ZeroMesh,
    /// A fault-injection fraction or rate is NaN or outside `[0, 1]`.
    InvalidFaultFraction {
        /// The offending configuration field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Faults were requested but the horizon is zero, so no injection
    /// time exists (faults spread over the first half of the run).
    FaultsNeedHorizon,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroEpoch => write!(f, "epoch length must be positive"),
            BuildError::HorizonTooShort => {
                write!(f, "simulation horizon must cover at least one epoch")
            }
            BuildError::InvalidArrivalRate => {
                write!(f, "arrival rate must be positive and finite")
            }
            BuildError::TooFewDvfsLevels => write!(f, "need at least two DVFS levels"),
            BuildError::EmptyWorkloadMix => write!(f, "workload mix has no sources"),
            BuildError::ZeroMesh => write!(f, "mesh edge must be positive"),
            BuildError::InvalidFaultFraction { field, value } => {
                write!(f, "{field} must be a probability in [0,1], got {value}")
            }
            BuildError::FaultsNeedHorizon => {
                write!(f, "fault injection needs a positive horizon to place faults in")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        for e in [
            BuildError::ZeroEpoch,
            BuildError::HorizonTooShort,
            BuildError::InvalidArrivalRate,
            BuildError::TooFewDvfsLevels,
            BuildError::EmptyWorkloadMix,
            BuildError::ZeroMesh,
            BuildError::InvalidFaultFraction {
                field: "vf_windowed_fault_fraction",
                value: f64::NAN,
            },
            BuildError::FaultsNeedHorizon,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(BuildError::ZeroEpoch);
        assert!(e.source().is_none());
    }
}
