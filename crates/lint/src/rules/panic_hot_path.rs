//! `panic-in-hot-path`: `unwrap`/`expect`/`panic!`/`unreachable!` in the
//! epoch loop, the test scheduler and the thermal kernels must carry an
//! audited `lint:allow` with a reason — or be refactored away.
//!
//! A panic mid-epoch tears down a batch job and poisons the golden
//! regeneration pass; worse, `catch_unwind` in the runner keeps sibling
//! jobs running, so one panicking configuration can silently truncate a
//! sweep. In the three hot files every potential panic site must either
//! be rewritten as invariant-checked access (`let … else { return }` +
//! `debug_assert!`) or carry a reviewed justification.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct PanicHotPath;

/// The hot-path files under guard. Fixtures opt in by using one of
/// these as their virtual path.
pub const HOT_FILES: [&str; 4] = [
    "crates/core/src/system.rs",
    "crates/core/src/store.rs",
    "crates/test/src/scheduler.rs",
    "crates/aging/src/thermal.rs",
];

/// Macro names that unwind unconditionally when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Rule for PanicHotPath {
    fn id(&self) -> &'static str {
        "panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! in the epoch loop, scheduler and thermal kernels \
         need an audited lint:allow"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !HOT_FILES.contains(&file.rel_path.as_str()) {
            return;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
                continue;
            }
            let method_call = (tok.text == "unwrap" || tok.text == "expect")
                && i > 0
                && code[i - 1].is_punct('.')
                && code.get(i + 1).is_some_and(|t| t.is_punct('('));
            let panic_macro = PANIC_MACROS.contains(&tok.text.as_str())
                && code.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if !(method_call || panic_macro) {
                continue;
            }
            let shown = if panic_macro {
                format!("{}!", tok.text)
            } else {
                format!(".{}()", tok.text)
            };
            out.push(Finding {
                rule: self.id(),
                file: file.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!("`{shown}` in a hot path without an audited allow"),
                rationale: "a panic here kills a batch job mid-sweep; refactor to invariant-\
                            checked access (let-else + debug_assert) or justify it with \
                            lint:allow(panic-in-hot-path, reason = \"…\")",
            });
        }
    }
}
