//! `wall-clock`: no `Instant`/`SystemTime` outside `crates/bench` and
//! `crates/shims`.
//!
//! Simulated time is the only clock the simulation crates may read;
//! a wall-clock read anywhere in the model would couple results to host
//! speed and scheduling. Timing the *harness* is legitimate, so `bench`
//! (whose runner reports wall seconds) and the dependency shims are
//! exempt.

use super::Rule;
use crate::diag::Finding;
use crate::source::SourceFile;

pub struct WallClock;

const BANNED: [&str; 2] = ["Instant", "SystemTime"];

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "Instant/SystemTime are banned outside crates/bench and crates/shims"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name() == "bench" || file.rel_path.starts_with("crates/shims/") {
            return;
        }
        for tok in file.code_tokens() {
            if BANNED.iter().any(|b| tok.is_ident(b)) {
                out.push(Finding {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{}` outside crates/bench: simulation code must read simulated time only",
                        tok.text
                    ),
                    rationale: "wall-clock reads make results depend on host speed; use SimTime, \
                                or move harness timing into crates/bench",
                });
            }
        }
    }
}
