//! Full-system integration tests spanning every crate: the assertions here
//! are the paper's headline behaviours, checked end-to-end through the
//! public facade API.

use manytest::prelude::*;

fn builder(node: TechNode) -> SystemBuilder {
    SystemBuilder::new(node)
        .seed(0xFEED)
        .arrival_rate(400.0)
        .sim_time_ms(300)
}

#[test]
fn headline_throughput_penalty_is_below_one_percent_at_16nm() {
    let base = builder(TechNode::N16).testing(false).build().unwrap().run();
    let tested = builder(TechNode::N16).testing(true).build().unwrap().run();
    let penalty = tested.throughput_penalty_vs(&base);
    assert!(
        penalty < 0.01,
        "DATE'15 claims <1% penalty at 16nm; measured {:.3}%",
        penalty * 100.0
    );
    assert!(tested.tests_completed > 0, "the tested run must actually test");
}

#[test]
fn tdp_is_never_violated_across_nodes_and_governors() {
    for node in TechNode::ALL {
        for governor in [GovernorKind::Pid, GovernorKind::Naive, GovernorKind::FixedTdp] {
            let r = builder(node)
                .arrival_rate(3_000.0)
                .sim_time_ms(150)
                .governor(governor)
                .build()
                .unwrap()
                .run();
            assert_eq!(
                r.cap_violations, 0,
                "{node} with {governor:?} violated the TDP"
            );
        }
    }
}

#[test]
fn reports_are_bitwise_reproducible() {
    let a = builder(TechNode::N22).build().unwrap().run();
    let b = builder(TechNode::N22).build().unwrap().run();
    assert_eq!(a, b, "same seed must give identical reports");
}

#[test]
fn every_core_eventually_gets_tested() {
    let r = builder(TechNode::N32)
        .arrival_rate(200.0)
        .sim_time_ms(500)
        .build()
        .unwrap()
        .run();
    assert!(
        r.min_tests_per_core >= 1,
        "after 500ms at light load every core should have been tested; min = {}",
        r.min_tests_per_core
    );
}

#[test]
fn planted_faults_are_found_with_bounded_latency() {
    let r = builder(TechNode::N22)
        .sim_time_ms(600)
        .injected_faults(10)
        .build()
        .unwrap()
        .run();
    assert_eq!(r.faults_injected, 10);
    assert!(
        r.faults_detected >= 8,
        "most latent faults should be caught, got {}/10",
        r.faults_detected
    );
    // Faults are injected in the first 300ms; with ~125ms test periods the
    // mean detection latency should be a few periods at most.
    assert!(
        r.mean_detection_latency < 0.4,
        "latency {:.3}s too large",
        r.mean_detection_latency
    );
}

#[test]
fn test_energy_share_shrinks_with_load() {
    let light = builder(TechNode::N16).arrival_rate(250.0).build().unwrap().run();
    let heavy = builder(TechNode::N16)
        .arrival_rate(4_000.0)
        .build()
        .unwrap()
        .run();
    assert!(
        heavy.test_energy_share < light.test_energy_share,
        "test share must shrink with load: light {:.3} vs heavy {:.3}",
        light.test_energy_share,
        heavy.test_energy_share
    );
}

#[test]
fn dark_silicon_grows_with_scaling_and_power_tracks_it() {
    let mut last_dark = -1.0;
    for node in TechNode::ALL {
        let r = builder(node)
            .arrival_rate(5_000.0)
            .sim_time_ms(150)
            .testing(false)
            .build()
            .unwrap()
            .run();
        assert!(r.dark_fraction > last_dark, "dark fraction must grow");
        last_dark = r.dark_fraction;
        assert!(r.mean_power <= r.tdp * 1.05);
    }
}

#[test]
fn pid_extracts_more_throughput_than_naive_at_saturation() {
    let pid = builder(TechNode::N16)
        .arrival_rate(6_000.0)
        .governor(GovernorKind::Pid)
        .build()
        .unwrap()
        .run();
    let naive = builder(TechNode::N16)
        .arrival_rate(6_000.0)
        .governor(GovernorKind::Naive)
        .build()
        .unwrap()
        .run();
    assert!(
        pid.throughput_mips > naive.throughput_mips,
        "ICCD'14: PID budgeting should beat the naive TDP policy ({} vs {})",
        pid.throughput_mips,
        naive.throughput_mips
    );
}

#[test]
fn vf_coverage_completes_on_long_runs() {
    let r = builder(TechNode::N32)
        .arrival_rate(200.0)
        .sim_time_ms(1_500)
        .build()
        .unwrap()
        .run();
    assert!(
        r.full_vf_coverage,
        "1.5s at light load must cover every (core, level) cell; per-level {:?}",
        r.tests_per_level
    );
}

#[test]
fn trace_series_are_consistent_with_report() {
    let r = builder(TechNode::N16).build().unwrap().run();
    let power = r.trace.series("power_w").expect("power series");
    // The peak epoch power in the trace matches the report.
    let trace_peak = power.max_value().unwrap();
    assert!((trace_peak - r.peak_power).abs() < 1e-6);
    // No epoch in the trace exceeds the TDP band.
    assert!(power.points().iter().all(|&(_, p)| p <= r.tdp * 1.01));
}

#[test]
fn disabled_testing_is_a_true_baseline() {
    let r = builder(TechNode::N45).testing(false).build().unwrap().run();
    assert_eq!(r.tests_completed, 0);
    assert_eq!(r.tests_aborted, 0);
    assert_eq!(r.tests_denied_power, 0);
    assert_eq!(r.test_energy_share, 0.0);
    assert!(r.tests_per_core.iter().all(|&t| t == 0));
}

#[test]
fn mapping_strategies_yield_comparable_throughput() {
    let base = builder(TechNode::N16)
        .arrival_rate(2_500.0)
        .mapper(MapperKind::Baseline)
        .build()
        .unwrap()
        .run();
    let tum = builder(TechNode::N16)
        .arrival_rate(2_500.0)
        .mapper(MapperKind::TestAware)
        .build()
        .unwrap()
        .run();
    let diff = (base.throughput_mips - tum.throughput_mips).abs() / base.throughput_mips;
    assert!(
        diff < 0.05,
        "test awareness must not cost real throughput (diff {:.2}%)",
        diff * 100.0
    );
}
