use std::sync::{Arc, Mutex};

pub struct Shared {
    rng: Arc<Mutex<SimRng>>,
}
