//! Experiment harness regenerating every figure and table of the paper's
//! evaluation (reconstructed — see `EXPERIMENTS.md` at the repo root).
//!
//! Each experiment is a pure function from a [`Scale`] (how long/heavy to
//! run) to a structured result with a `print()` method that emits the
//! series/rows the paper reports. The `repro` binary runs them all at
//! [`Scale::Full`]; the criterion benches time them at [`Scale::Quick`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod diff;
pub mod events;
pub mod experiments;
pub mod kernels;
pub mod ledger;
pub mod progress;
pub mod regress;
pub mod report;
pub mod runner;
pub mod trace;

pub use ablations::*;
pub use experiments::*;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short horizons for criterion timing and CI.
    Quick,
    /// The horizons used for the reported numbers.
    Full,
}

impl Scale {
    /// Scales a full-size horizon (milliseconds) down for quick runs.
    ///
    /// Quick runs still cover at least 250 ms of simulated time: the test
    /// scheduler's default criticality threshold is crossed ~125 ms into a
    /// run, so anything shorter would measure a system that never tests.
    pub fn ms(self, full: u64) -> u64 {
        match self {
            Scale::Quick => (full / 2).max(250),
            Scale::Full => full,
        }
    }

    /// Scales a seed count down for quick runs.
    pub fn seeds(self, full: usize) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => full,
        }
    }
}
