//! A lightweight Rust lexer: just enough syntax to make the rules
//! string- and comment-aware.
//!
//! The lexer splits a source file into [`Token`]s with 1-based
//! line/column spans. It understands the constructs that would otherwise
//! produce false positives in a plain text scan:
//!
//! * line (`//`, `///`, `//!`) and block (`/* */`, nested) comments;
//! * string literals (`"…"` with escapes, raw strings `r#"…"#` at any
//!   hash depth, byte strings `b"…"` / `br#"…"#`);
//! * character literals vs lifetimes (`'x'` / `'\n'` vs `'a`, `'static`);
//! * identifiers, numbers and single-character punctuation.
//!
//! It is *not* a parser: rules pattern-match over the token stream
//! (e.g. `SimEvent` `:` `:` `Ident`) instead of an AST. That trade keeps
//! the analyzer dependency-free and fast while still being immune to
//! matches inside strings, comments and doc text.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
    /// String literal of any flavour; `text` holds the *contents*
    /// (delimiters and prefixes stripped, escapes left as written).
    Str,
    /// Character literal; `text` holds the contents between the quotes.
    Char,
    /// Lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// Numeric literal (integer or float, any base/suffix).
    Number,
    /// Line or block comment; `text` holds the body without delimiters.
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is included per kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// are closed at end of input, and unrecognised bytes become punctuation.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    _src: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            _src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token { kind, text, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col),
                'r' | 'b' if self.raw_or_byte_string(line, col) => {}
                // Raw identifier `r#ident`: an *identifier* that happens
                // to spell a keyword. The parser leans on `is_ident("fn")`
                // to find items, so `let r#fn = …` must not produce a bare
                // `fn` token; the text keeps the `r#` prefix to stay
                // distinguishable from the keyword.
                'r' if self.peek(1) == Some('#')
                    && self
                        .peek(2)
                        .is_some_and(|c| c == '_' || c.is_alphabetic()) =>
                {
                    self.bump();
                    self.bump(); // r#
                    let mut text = String::from("r#");
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            text.push(self.bump().unwrap_or_default());
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, text, line, col);
                }
                // Byte char literal `b'x'` / `b'\n'`: the `b` prefix would
                // otherwise lex as an identifier and leave the quote to
                // the lifetime/char disambiguator with a stale column.
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // the b prefix
                    self.char_or_lifetime(line, col);
                }
                '\'' => self.char_or_lifetime(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    let c = self.bump().unwrap_or_default();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // consume "//"
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap_or_default());
        }
        self.push(TokenKind::Comment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push(self.bump().unwrap_or_default());
                    text.push(self.bump().unwrap_or_default());
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(_), _) => text.push(self.bump().unwrap_or_default()),
                (None, _) => break, // unterminated: close at EOF
            }
        }
        self.push(TokenKind::Comment, text, line, col);
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                self.bump();
                break;
            }
            if c == '\\' {
                text.push(self.bump().unwrap_or_default());
                if self.peek(0).is_some() {
                    text.push(self.bump().unwrap_or_default());
                }
                continue;
            }
            text.push(self.bump().unwrap_or_default());
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and friends. Returns
    /// false (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1; // past the leading r or b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false;
        }
        // `b"…"` (no `r` in the prefix) still processes escapes; any
        // `r` prefix makes the body raw.
        let prefix_len = ahead - hashes;
        let raw = (0..prefix_len).any(|i| self.peek(i) == Some('r'));
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes and opening quote
        }
        let mut text = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') if !raw => {
                    text.push(self.bump().unwrap_or_default());
                    if self.peek(0).is_some() {
                        text.push(self.bump().unwrap_or_default());
                    }
                }
                Some('"') => {
                    // A raw string only closes when the quote is followed
                    // by the right number of hashes.
                    let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                    if closes {
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    text.push(self.bump().unwrap_or_default());
                }
                Some(_) => text.push(self.bump().unwrap_or_default()),
            }
        }
        self.push(TokenKind::Str, text, line, col);
        true
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                let mut text = String::new();
                text.push(self.bump().unwrap_or_default());
                if self.peek(0).is_some() {
                    text.push(self.bump().unwrap_or_default());
                }
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    text.push(self.bump().unwrap_or_default());
                }
                self.push(TokenKind::Char, text, line, col);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                let mut text = String::new();
                text.push(self.bump().unwrap_or_default());
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(self.bump().unwrap_or_default());
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokenKind::Char, text, line, col);
                } else {
                    self.push(TokenKind::Lifetime, text, line, col);
                }
            }
            Some(_) => {
                // Punctuation char literal like '{' or ' '.
                let mut text = String::new();
                text.push(self.bump().unwrap_or_default());
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, text, line, col);
            }
            None => self.push(TokenKind::Punct, "'".into(), line, col),
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(self.bump().unwrap_or_default());
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(self.bump().unwrap_or_default());
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` continues the number; `0..n` does not.
                text.push(self.bump().unwrap_or_default());
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts_have_positions() {
        let toks = lex("let x = foo.bar();\n  y");
        assert!(toks[0].is_ident("let"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let y = toks.last().expect("has tokens");
        assert!(y.is_ident("y"));
        assert_eq!((y.line, y.col), (2, 3));
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let toks = kinds("\"HashMap\" // HashMap\n/* HashMap */ BTreeMap");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .collect();
        assert_eq!(idents.len(), 1);
        assert_eq!(idents[0].1, "BTreeMap");
    }

    #[test]
    fn raw_strings_at_hash_depth() {
        let toks = kinds(r###"r#"says "hi""# x"###);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "says \"hi\"");
        assert!(toks[1].1 == "x");
    }

    #[test]
    fn escaped_quote_stays_inside_string() {
        let toks = kinds(r#""a\"b" c"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r#"a\"b"#);
        assert_eq!(toks[1].1, "c");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("&'a str 'x' '\\n' 'static");
        let kinds: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&TokenKind::Lifetime));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
        assert_eq!(toks.last().expect("tokens").0, TokenKind::Lifetime);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[1].1 == "after");
    }

    #[test]
    fn raw_strings_with_inner_quote_hash_runs_close_at_the_right_depth() {
        // `"#` inside an `r##"…"##` body must not close the string; only
        // a quote followed by the full hash run does.
        let toks = kinds("r##\"has \"# inside\"## after");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "has \"# inside");
        assert!(toks[1].1 == "after");
        // Byte-raw at depth 1 behaves the same.
        let toks = kinds("br#\"a\"b\"# x");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "a\"b");
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        // `r#fn` is an identifier named fn — the symbol extractor must
        // not see a `fn` item keyword here.
        let toks = lex("let r#fn = r#match; r#"); // trailing r# stays punct
        assert!(toks.iter().all(|t| !t.is_ident("fn")));
        assert!(toks.iter().all(|t| !t.is_ident("match")));
        assert!(toks.iter().any(|t| t.is_ident("r#fn")));
        assert!(toks.iter().any(|t| t.is_ident("r#match")));
    }

    #[test]
    fn byte_char_literals_lex_as_chars() {
        let toks = lex("b'x' b'\\n' b\"bytes\"");
        assert_eq!(toks[0].kind, TokenKind::Char);
        assert_eq!(toks[0].text, "x");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!(toks[1].kind, TokenKind::Char);
        assert_eq!(toks[2].kind, TokenKind::Str);
        assert_eq!(toks[2].text, "bytes");
    }

    #[test]
    fn deeply_nested_block_comments_and_unterminated_tails() {
        let toks = kinds("/* 1 /* 2 /* 3 */ 2 */ 1 */ code");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1].1, "code");
        // Unterminated nesting closes at EOF without panicking and
        // swallows everything after the opener.
        let toks = kinds("/* a /* b */ still-open\nx");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::Comment);
    }

    #[test]
    fn lifetime_char_disambiguation_in_generics_and_matches() {
        // `<'a>` and `&'a` are lifetimes; `'a'` and `'}'` are chars, and
        // a lifetime directly against punctuation keeps its span.
        let toks = lex("fn f<'a>(x: &'a str) { match c { 'a' => {} '}' => {} } }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["a", "}"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("0..10 1.5");
        assert_eq!(toks[0].0, TokenKind::Number);
        assert_eq!(toks[0].1, "0");
        assert!(toks[1].0 == TokenKind::Punct);
        assert_eq!(toks.last().expect("tokens").1, "1.5");
    }
}
