use std::collections::HashMap;

pub fn build() -> HashMap<u32, f64> {
    HashMap::new()
}
