//! `repro bench kernels` — control-loop scaling driver.
//!
//! Runs the standard configuration at a sweep of mesh edges (8×8 up to
//! 64×64 by default) and records the deterministic [`PhaseProfile`]
//! counters plus bench-side wall-clock per grid. The counters are the
//! point: after the struct-of-arrays refactor the per-epoch scan work
//! (`candidates_scanned`, `free_set_queries`, `ctx_rebuilds`, …) must
//! grow roughly linearly with the core count, and the committed
//! `BENCH_kernels.json` plus the `kernels_gate` test pin that.
//!
//! Output discipline matches the rest of the harness: the stdout table
//! contains only deterministic values (byte-identical across reruns and
//! worker counts); wall-clock seconds go to stderr and into
//! `BENCH_kernels.json` only.

use crate::report::WallPhaseTimer;
use crate::Scale;
use manytest_core::prelude::*;
use manytest_sim::{Phase, PhaseProfile};
use std::fmt::Write as _;
use std::time::Instant;

/// Grid edges swept by default: 64 to 4096 cores.
pub const DEFAULT_GRIDS: [u16; 4] = [8, 16, 32, 64];

/// Grid edges used by `--quick` runs and the CI smoke.
pub const QUICK_GRIDS: [u16; 3] = [8, 16, 32];

/// Fixed seed for every kernels run: the sweep varies only the mesh
/// edge, so counter differences between grids are attributable to scale.
pub const KERNELS_SEED: u64 = 42;

/// One grid's outcome: the deterministic counters plus wall diagnostics.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Mesh edge (the run simulates `grid * grid` cores).
    pub grid: u16,
    /// Core count, `grid * grid`.
    pub cores: usize,
    /// Applications that ran to completion.
    pub apps_completed: u64,
    /// SBST sessions that ran to completion.
    pub tests_completed: u64,
    /// The full deterministic phase profile of the run.
    pub profile: PhaseProfile,
    /// Wall-clock seconds for the whole run (non-deterministic; stderr
    /// and JSON only, never stdout).
    pub wall_seconds: f64,
    /// Wall-clock seconds per control-loop phase (non-deterministic).
    pub wall_phases: [f64; Phase::COUNT],
}

/// The configuration one kernels run uses: the evaluation's standard
/// 16 nm setup with the mesh edge overridden. Exposed so tests can run
/// the exact config the sweep (and the 64×64 determinism check) uses.
pub fn kernels_builder(grid: u16, scale: Scale) -> SystemBuilder {
    SystemBuilder::new(TechNode::N16)
        .mesh_edge(grid)
        .seed(KERNELS_SEED)
        .sim_time_ms(scale.ms(500))
        .arrival_rate(200.0)
}

/// Runs the sweep serially (one run per grid, smallest first).
pub fn run_kernels(grids: &[u16], scale: Scale) -> Vec<KernelRun> {
    grids
        .iter()
        .map(|&grid| {
            let mut system = kernels_builder(grid, scale)
                .build()
                .expect("kernels config is valid");
            let (timer, acc) = WallPhaseTimer::new();
            system.set_phase_observer(Box::new(timer));
            let start = Instant::now();
            let report = system.run();
            let wall_seconds = start.elapsed().as_secs_f64();
            let wall_phases = *acc.lock().expect("timer accumulator is never poisoned");
            KernelRun {
                grid,
                cores: usize::from(grid) * usize::from(grid),
                apps_completed: report.apps_completed,
                tests_completed: report.tests_completed,
                profile: report.profile,
                wall_seconds,
                wall_phases,
            }
        })
        .collect()
}

/// The deterministic stdout table: raw scan counters plus their
/// per-epoch means, which make the linear-vs-quadratic story legible at
/// a glance (cores ×4 between rows should mean per-epoch scans ×~4).
pub fn print_kernels(runs: &[KernelRun], scale: Scale) {
    println!("## kernels — control-loop scaling with mesh edge (seed {KERNELS_SEED})");
    println!(
        "# scale: {} — deterministic counters only; wall times on stderr and in BENCH_kernels.json",
        if scale == Scale::Quick { "quick" } else { "full" }
    );
    println!(
        "grid  cores  epochs  apps  tests  cand_scan  cand/ep  free_q  ctx_rb  ctx_delta  heap_pop  dirty"
    );
    for r in runs {
        let p = &r.profile;
        let per_epoch = if p.epochs == 0 {
            0.0
        } else {
            p.candidates_scanned as f64 / p.epochs as f64
        };
        println!(
            "{:>4}  {:>5}  {:>6}  {:>4}  {:>5}  {:>9}  {:>7.1}  {:>6}  {:>6}  {:>9}  {:>8}  {:>5}",
            r.grid,
            r.cores,
            p.epochs,
            r.apps_completed,
            r.tests_completed,
            p.candidates_scanned,
            per_epoch,
            p.free_set_queries,
            p.ctx_rebuilds,
            p.ctx_delta_updates,
            p.heap_pops,
            p.dirty_marks,
        );
    }
    println!();
}

/// One stderr line per grid with the non-deterministic wall times.
pub fn wall_kernels_table(runs: &[KernelRun]) -> String {
    let mut out = String::from("# kernels wall-clock (non-deterministic)\n# grid  wall_s");
    for phase in Phase::ALL {
        let _ = write!(out, "  {}_s", phase.as_str());
    }
    out.push('\n');
    for r in runs {
        let _ = write!(out, "# {:>4}  {:>6.3}", r.grid, r.wall_seconds);
        for phase in Phase::ALL {
            let _ = write!(out, "  {:>7.4}", r.wall_phases[phase.index()]);
        }
        out.push('\n');
    }
    out
}

/// Renders `BENCH_kernels.json`: per grid, every profile counter (by its
/// [`PhaseProfile::entries`] name), the run aggregates, and the wall
/// times. Hand-rolled like `BENCH_repro.json` — the shims have no JSON
/// serializer.
pub fn kernels_json(runs: &[KernelRun], scale: Scale) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {KERNELS_SEED},");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if scale == Scale::Quick { "quick" } else { "full" }
    );
    json.push_str("  \"grids\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"grid\": {},", r.grid);
        let _ = writeln!(json, "      \"cores\": {},", r.cores);
        let _ = writeln!(json, "      \"apps_completed\": {},", r.apps_completed);
        let _ = writeln!(json, "      \"tests_completed\": {},", r.tests_completed);
        json.push_str("      \"profile\": {");
        let entries = r.profile.entries();
        for (j, (name, value)) in entries.iter().enumerate() {
            let sep = if j + 1 == entries.len() { "" } else { ", " };
            let _ = write!(json, "\"{name}\": {value}{sep}");
        }
        json.push_str("},\n");
        let _ = writeln!(json, "      \"wall_seconds\": {:.6},", r.wall_seconds);
        json.push_str("      \"wall_phases\": {");
        for (j, phase) in Phase::ALL.iter().enumerate() {
            let sep = if j + 1 == Phase::ALL.len() { "" } else { ", " };
            let _ = write!(
                json,
                "\"{}\": {:.6}{sep}",
                phase.as_str(),
                r.wall_phases[phase.index()]
            );
        }
        json.push_str("}\n");
        let _ = writeln!(json, "    }}{}", if i + 1 == runs.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_json_shape_is_stable() {
        let mut profile = PhaseProfile::default();
        profile.epochs = 250;
        profile.candidates_scanned = 16_000;
        let run = KernelRun {
            grid: 8,
            cores: 64,
            apps_completed: 10,
            tests_completed: 20,
            profile,
            wall_seconds: 0.125,
            wall_phases: [0.0; Phase::COUNT],
        };
        let json = kernels_json(&[run], Scale::Quick);
        assert!(json.contains("\"grid\": 8"));
        assert!(json.contains("\"cores\": 64"));
        assert!(json.contains("\"candidates_scanned\": 16000"));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"wall_seconds\": 0.125000"));
        // Every profile counter is present by name.
        for (name, _) in PhaseProfile::default().entries() {
            assert!(json.contains(&format!("\"{name}\":")), "missing {name}");
        }
    }

    #[test]
    fn kernels_builder_overrides_the_mesh_edge() {
        let system = kernels_builder(8, Scale::Quick)
            .build()
            .expect("valid config");
        assert_eq!(system.mesh().node_count(), 64);
    }
}
