//! The nine experiments (E1–E9) of the reconstructed evaluation.
//!
//! Every driver takes a `jobs` worker count and submits its independent
//! simulation runs to one [`Batch`](crate::runner::Batch); results come
//! back in submission order, so the folded tables are identical for any
//! `jobs` value (`1` reproduces the old serial loops exactly).

use crate::runner::{failure_table, Batch};
use crate::Scale;
use manytest_core::prelude::*;
use manytest_power::TechNode;

fn build(node: TechNode, seed: u64, ms: u64, rate: f64) -> SystemBuilder {
    SystemBuilder::new(node)
        .seed(seed)
        .sim_time_ms(ms)
        .arrival_rate(rate)
}

// ---------------------------------------------------------------------------
// E1 — throughput penalty of online testing vs technology node
// ---------------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Row {
    /// Technology node.
    pub node: TechNode,
    /// Core count at that node.
    pub cores: usize,
    /// Static dark-silicon fraction.
    pub dark_fraction: f64,
    /// Throughput without testing, MIPS.
    pub mips_off: f64,
    /// Throughput with testing, MIPS.
    pub mips_on: f64,
    /// Relative penalty (positive = testing costs throughput).
    pub penalty: f64,
    /// Tests completed in the tested run.
    pub tests: u64,
}

/// E1: run every node with testing on/off and report the penalty.
///
/// Submission order: node-major, then seed, testing-off before testing-on.
pub fn e1_tech_sweep(scale: Scale, jobs: usize) -> Vec<E1Row> {
    let ms = scale.ms(300);
    let seeds = scale.seeds(3);
    let mut batch = Batch::new();
    for &node in TechNode::ALL.iter() {
        for s in 0..seeds as u64 {
            for testing in [false, true] {
                batch.push(format!("e1/{node}/seed{s}/testing={testing}"), move || {
                    crate::ledger::run_system("e1", build(node, 10 + s, ms, 3_000.0).testing(testing))
                });
            }
        }
    }
    let mut reports = batch.run(jobs).into_iter();
    TechNode::ALL
        .iter()
        .map(|&node| {
            let mut mips_off = 0.0;
            let mut mips_on = 0.0;
            let mut tests = 0;
            for _s in 0..seeds {
                let base = reports.next().expect("one off-run per (node, seed)");
                let tested = reports.next().expect("one on-run per (node, seed)");
                mips_off += base.throughput_mips;
                mips_on += tested.throughput_mips;
                tests += tested.tests_completed;
            }
            mips_off /= seeds as f64;
            mips_on /= seeds as f64;
            E1Row {
                node,
                cores: node.core_count(),
                dark_fraction: node.dark_silicon_fraction(),
                mips_off,
                mips_on,
                penalty: (mips_off - mips_on) / mips_off,
                tests: tests / seeds as u64,
            }
        })
        .collect()
}

/// Prints the E1 table.
pub fn print_e1(rows: &[E1Row]) {
    println!("## E1 — throughput penalty of online testing vs technology node");
    println!("node   cores  dark%   MIPS(no test)  MIPS(test)  penalty%  tests");
    for r in rows {
        println!(
            "{:<5}  {:>5}  {:>5.1}  {:>13.0}  {:>10.0}  {:>7.2}%  {:>5}",
            r.node.to_string(),
            r.cores,
            r.dark_fraction * 100.0,
            r.mips_off,
            r.mips_on,
            r.penalty * 100.0,
            r.tests
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E2 — chip power trace under the TDP cap
// ---------------------------------------------------------------------------

/// The E2 result: a downsampled power trace plus compliance stats.
#[derive(Debug, Clone)]
pub struct E2Trace {
    /// `(t, workload_w, test_w, total_w, cap_w)` samples.
    pub samples: Vec<(f64, f64, f64, f64, f64)>,
    /// Configured TDP, watts.
    pub tdp: f64,
    /// Epochs above the TDP.
    pub violations: u64,
    /// Peak epoch power, watts.
    pub peak: f64,
}

/// E2: a bursty 16 nm run; the trace shows test power filling workload
/// troughs while the total stays under the (PID-governed) cap.
pub fn e2_power_trace(scale: Scale, jobs: usize) -> E2Trace {
    let ms = scale.ms(400);
    let mut batch = Batch::new();
    batch.push("e2/trace", move || {
        crate::ledger::run_system("e2", build(TechNode::N16, 5, ms, 2_000.0))
    });
    let report = batch.run(jobs).pop().expect("one run");
    let workload = report.trace.series("workload_power_w").expect("series");
    let test = report.trace.series("test_power_w").expect("series");
    let total = report.trace.series("power_w").expect("series");
    let cap = report.trace.series("cap_w").expect("series");
    let n = workload.len().min(40);
    let w = workload.downsample(n);
    let te = test.downsample(n);
    let to = total.downsample(n);
    let ca = cap.downsample(n);
    let samples = (0..w.len())
        .map(|i| {
            (
                w.points()[i].0,
                w.points()[i].1,
                te.points()[i].1,
                to.points()[i].1,
                ca.points()[i].1,
            )
        })
        .collect();
    E2Trace {
        samples,
        tdp: report.tdp,
        violations: report.cap_violations,
        peak: report.peak_power,
    }
}

/// Prints the E2 trace.
pub fn print_e2(t: &E2Trace) {
    println!("## E2 — chip power trace (16 nm, bursty load, TDP {} W)", t.tdp);
    println!("t(ms)   workload_W  test_W  total_W  cap_W");
    for &(ts, w, te, to, ca) in &t.samples {
        println!(
            "{:>6.1}  {:>10.2}  {:>6.2}  {:>7.2}  {:>6.1}",
            ts * 1e3,
            w,
            te,
            to,
            ca
        );
    }
    println!(
        "peak {:.1} W, {} epochs above TDP (target: 0)",
        t.peak, t.violations
    );
    println!();
}

// ---------------------------------------------------------------------------
// E3 — fraction of consumed power dedicated to testing vs load
// ---------------------------------------------------------------------------

/// One row of the E3 sweep.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Application arrival rate, apps/second.
    pub rate: f64,
    /// Mean chip power, watts.
    pub mean_power: f64,
    /// Test share of consumed energy.
    pub test_share: f64,
    /// Tests completed.
    pub tests: u64,
}

/// E3: sweep the arrival rate and report the test-energy share (the TC'16
/// abstract anchors this at ≈ 2 % of consumed power at realistic load).
pub fn e3_test_power_share(scale: Scale, jobs: usize) -> Vec<E3Row> {
    let ms = scale.ms(300);
    let rates = [250.0, 500.0, 1_000.0, 2_000.0, 4_000.0];
    let mut batch = Batch::new();
    for &rate in rates.iter() {
        batch.push(format!("e3/rate{rate}"), move || {
            crate::ledger::run_system("e3", build(TechNode::N16, 21, ms, rate))
        });
    }
    rates
        .iter()
        .zip(batch.run(jobs))
        .map(|(&rate, r)| E3Row {
            rate,
            mean_power: r.mean_power,
            test_share: r.test_energy_share,
            tests: r.tests_completed,
        })
        .collect()
}

/// Prints the E3 table.
pub fn print_e3(rows: &[E3Row]) {
    println!("## E3 — test share of consumed power vs load (16 nm)");
    println!("apps/s   mean_W   test_share%   tests");
    for r in rows {
        println!(
            "{:>6.0}  {:>7.2}  {:>11.2}  {:>6}",
            r.rate,
            r.mean_power,
            r.test_share * 100.0,
            r.tests
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E4 — mean test interval vs load
// ---------------------------------------------------------------------------

/// One row of the E4 sweep.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Application arrival rate, apps/second.
    pub rate: f64,
    /// Mean same-core test interval, seconds.
    pub mean_interval: f64,
    /// Max same-core test interval, seconds.
    pub max_interval: f64,
    /// Minimum completed tests over cores.
    pub min_tests: u64,
    /// Sessions aborted (non-intrusive preemption).
    pub aborted: u64,
}

/// E4: test intervals grow with load (fewer idle cores, less headroom) but
/// stay bounded — the scheduler keeps exploiting temporarily free cores.
pub fn e4_test_interval_vs_load(scale: Scale, jobs: usize) -> Vec<E4Row> {
    let ms = scale.ms(400);
    let rates = [250.0, 500.0, 1_000.0, 2_000.0, 4_000.0];
    let mut batch = Batch::new();
    for &rate in rates.iter() {
        batch.push(format!("e4/rate{rate}"), move || {
            crate::ledger::run_system("e4", build(TechNode::N16, 33, ms, rate))
        });
    }
    rates
        .iter()
        .zip(batch.run(jobs))
        .map(|(&rate, r)| E4Row {
            rate,
            mean_interval: r.mean_test_interval,
            max_interval: r.max_test_interval,
            min_tests: r.min_tests_per_core,
            aborted: r.tests_aborted,
        })
        .collect()
}

/// Prints the E4 table.
pub fn print_e4(rows: &[E4Row]) {
    println!("## E4 — test interval vs load (16 nm)");
    println!("apps/s   mean_interval(ms)  max_interval(ms)  min_tests/core  aborted");
    for r in rows {
        println!(
            "{:>6.0}  {:>17.1}  {:>16.1}  {:>14}  {:>7}",
            r.rate,
            r.mean_interval * 1e3,
            r.max_interval * 1e3,
            r.min_tests,
            r.aborted
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E5 — mapping comparison: baseline vs test-aware (TUM)
// ---------------------------------------------------------------------------

/// Aggregated metrics for one mapper.
#[derive(Debug, Clone)]
pub struct E5Side {
    /// Mapper under measurement.
    pub mapper: MapperKind,
    /// Mean throughput, MIPS.
    pub mips: f64,
    /// Mean tests completed.
    pub tests: f64,
    /// Mean aborted sessions.
    pub aborted: f64,
    /// Mean of mean same-core test intervals, seconds.
    pub mean_interval: f64,
    /// Mean of max same-core test intervals, seconds.
    pub max_interval: f64,
    /// Mean of the per-run minimum tests on any core.
    pub min_tests: f64,
    /// Mean weighted hop cost per app.
    pub hop_cost: f64,
}

/// E5: same workload/seeds under all three mappers (first-fit lower
/// bound, contiguous baseline, test-aware).
///
/// Submission order: mapper-major, then seed.
pub fn e5_mapping_compare(scale: Scale, jobs: usize) -> Vec<E5Side> {
    let ms = scale.ms(300);
    let seeds = scale.seeds(3);
    let kinds = [MapperKind::FirstFit, MapperKind::Baseline, MapperKind::TestAware];
    let mut batch = Batch::new();
    for &kind in kinds.iter() {
        for s in 0..seeds as u64 {
            batch.push(format!("e5/{kind:?}/seed{s}"), move || {
                crate::ledger::run_system("e5", build(TechNode::N16, 40 + s, ms, 2_500.0).mapper(kind))
            });
        }
    }
    let reports = batch.run(jobs);
    kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mut acc = E5Side {
                mapper: kind,
                mips: 0.0,
                tests: 0.0,
                aborted: 0.0,
                mean_interval: 0.0,
                max_interval: 0.0,
                min_tests: 0.0,
                hop_cost: 0.0,
            };
            for r in &reports[i * seeds..(i + 1) * seeds] {
                acc.mips += r.throughput_mips;
                acc.tests += r.tests_completed as f64;
                acc.aborted += r.tests_aborted as f64;
                acc.mean_interval += r.mean_test_interval;
                acc.max_interval += r.max_test_interval;
                acc.min_tests += r.min_tests_per_core as f64;
                acc.hop_cost += r.mean_hop_cost;
            }
            let n = seeds as f64;
            acc.mips /= n;
            acc.tests /= n;
            acc.aborted /= n;
            acc.mean_interval /= n;
            acc.max_interval /= n;
            acc.min_tests /= n;
            acc.hop_cost /= n;
            acc
        })
        .collect()
}

/// Prints the E5 table.
pub fn print_e5(sides: &[E5Side]) {
    println!("## E5 — mapping comparison at high load (16 nm, 2500 apps/s)");
    print!("{:<25}", "metric");
    for s in sides {
        print!("  {:>16}", format!("{:?}", s.mapper));
    }
    println!();
    let rows: [(&str, fn(&E5Side) -> f64); 7] = [
        ("throughput (MIPS)", |s| s.mips),
        ("tests completed", |s| s.tests),
        ("tests aborted", |s| s.aborted),
        ("mean test interval (ms)", |s| s.mean_interval * 1e3),
        ("max test interval (ms)", |s| s.max_interval * 1e3),
        ("min tests on any core", |s| s.min_tests),
        ("hop cost (bit-hops/app)", |s| s.hop_cost),
    ];
    for (name, f) in rows {
        print!("{name:<25}");
        for s in sides {
            print!("  {:>16.1}", f(s));
        }
        println!();
    }
    println!();
}

// ---------------------------------------------------------------------------
// E6 — criticality adaptation: stressed cores get tested more
// ---------------------------------------------------------------------------

/// The E6 result: cores bucketed by lifetime damage.
#[derive(Debug, Clone)]
pub struct E6Adaptation {
    /// Mean tests per core for each damage quintile (least → most worn).
    pub tests_by_damage_quintile: Vec<f64>,
    /// Pearson correlation between per-core damage and test count.
    pub correlation: f64,
}

/// E6: at moderate load, the stress term of the criticality metric makes
/// worn cores test more often; quintile means should rise monotonically.
pub fn e6_criticality_adaptation(scale: Scale, jobs: usize) -> E6Adaptation {
    let ms = scale.ms(500);
    let mut batch = Batch::new();
    batch.push("e6/adaptation", move || {
        crate::ledger::run_system("e6", build(TechNode::N16, 55, ms, 2_000.0))
    });
    let r = batch.run(jobs).pop().expect("one run");
    let n = r.damage_per_core.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        r.damage_per_core[a]
            .partial_cmp(&r.damage_per_core[b])
            .expect("damage is finite")
    });
    let quintile = n / 5;
    let tests_by_damage_quintile: Vec<f64> = (0..5)
        .map(|q| {
            let lo = q * quintile;
            let hi = if q == 4 { n } else { (q + 1) * quintile };
            order[lo..hi]
                .iter()
                .map(|&c| r.tests_per_core[c] as f64)
                .sum::<f64>()
                / (hi - lo) as f64
        })
        .collect();
    let mean_d = r.damage_per_core.iter().sum::<f64>() / n as f64;
    let mean_t = r.tests_per_core.iter().map(|&t| t as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_d = 0.0;
    let mut var_t = 0.0;
    for c in 0..n {
        let dd = r.damage_per_core[c] - mean_d;
        let dt = r.tests_per_core[c] as f64 - mean_t;
        cov += dd * dt;
        var_d += dd * dd;
        var_t += dt * dt;
    }
    let correlation = if var_d > 0.0 && var_t > 0.0 {
        cov / (var_d.sqrt() * var_t.sqrt())
    } else {
        0.0
    };
    E6Adaptation {
        tests_by_damage_quintile,
        correlation,
    }
}

/// Prints the E6 result.
pub fn print_e6(a: &E6Adaptation) {
    println!("## E6 — criticality adaptation (tests follow stress)");
    println!("damage quintile (least→most worn):  mean tests/core");
    for (q, t) in a.tests_by_damage_quintile.iter().enumerate() {
        println!("  Q{}  {:>6.2}", q + 1, t);
    }
    println!("Pearson r(damage, tests) = {:.3}", a.correlation);
    println!();
}

// ---------------------------------------------------------------------------
// E7 — DVFS-level coverage of tests
// ---------------------------------------------------------------------------

/// The E7 result.
#[derive(Debug, Clone)]
pub struct E7Coverage {
    /// Completed routines per DVFS level (lowest first).
    pub tests_per_level: Vec<u64>,
    /// Every core tested at every level at least once?
    pub full_coverage: bool,
    /// Cores × levels.
    pub cells: usize,
}

/// E7: a long, lightly loaded run must distribute tests over all V/f
/// levels (the journal's "cover all the voltage and frequency levels").
pub fn e7_vf_coverage(scale: Scale, jobs: usize) -> E7Coverage {
    let ms = scale.ms(800);
    let mut batch = Batch::new();
    batch.push("e7/coverage", move || {
        crate::ledger::run_system("e7", build(TechNode::N16, 60, ms, 500.0))
    });
    let r = batch.run(jobs).pop().expect("one run");
    E7Coverage {
        cells: r.tests_per_core.len() * r.tests_per_level.len(),
        tests_per_level: r.tests_per_level,
        full_coverage: r.full_vf_coverage,
    }
}

/// Prints the E7 histogram.
pub fn print_e7(c: &E7Coverage) {
    println!("## E7 — test distribution over DVFS levels (16 nm)");
    println!("level  tests");
    for (l, t) in c.tests_per_level.iter().enumerate() {
        println!("  L{l}   {t:>6}");
    }
    println!(
        "full per-core × per-level coverage: {} ({} cells)",
        c.full_coverage, c.cells
    );
    println!();
}

// ---------------------------------------------------------------------------
// E8 — PID power budgeting vs baselines
// ---------------------------------------------------------------------------

/// One governor's results.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Governor under measurement.
    pub governor: GovernorKind,
    /// Mean throughput, MIPS.
    pub mips: f64,
    /// Mean chip power, watts.
    pub mean_power: f64,
    /// Peak epoch power, watts.
    pub peak_power: f64,
    /// Epochs above TDP.
    pub violations: u64,
    /// Tests completed.
    pub tests: u64,
}

/// E8: under saturating demand, the PID governor extracts more throughput
/// from the same TDP than the naive bang-bang policy (ICCD'14's >43 %
/// claim is about exactly this gap).
pub fn e8_pid_vs_naive(scale: Scale, jobs: usize) -> Vec<E8Row> {
    let ms = scale.ms(300);
    let governors = [GovernorKind::Pid, GovernorKind::Naive, GovernorKind::FixedTdp];
    let mut batch = Batch::new();
    for &g in governors.iter() {
        batch.push(format!("e8/{g:?}"), move || {
            crate::ledger::run_system("e8", build(TechNode::N16, 70, ms, 6_000.0).governor(g))
        });
    }
    governors
        .iter()
        .zip(batch.run(jobs))
        .map(|(&g, r)| E8Row {
            governor: g,
            mips: r.throughput_mips,
            mean_power: r.mean_power,
            peak_power: r.peak_power,
            violations: r.cap_violations,
            tests: r.tests_completed,
        })
        .collect()
}

/// Prints the E8 table.
pub fn print_e8(rows: &[E8Row]) {
    println!("## E8 — power governors under saturating demand (16 nm, TDP 80 W)");
    println!("governor   MIPS      mean_W  peak_W  violations  tests");
    for r in rows {
        println!(
            "{:<9}  {:>8.0}  {:>6.1}  {:>6.1}  {:>10}  {:>5}",
            format!("{:?}", r.governor),
            r.mips,
            r.mean_power,
            r.peak_power,
            r.violations,
            r.tests
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E9 — the dark-silicon premise
// ---------------------------------------------------------------------------

/// One node's dark-silicon numbers.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Technology node.
    pub node: TechNode,
    /// Cores at fixed die area.
    pub cores: usize,
    /// Peak chip demand if everything ran at nominal, watts.
    pub peak_demand: f64,
    /// Fixed TDP, watts.
    pub tdp: f64,
    /// Static dark fraction.
    pub dark_fraction: f64,
    /// Measured mean power under saturating load, watts.
    pub measured_mean: f64,
}

/// E9: the context figure — demand outgrows the fixed TDP with scaling.
pub fn e9_dark_silicon(scale: Scale, jobs: usize) -> Vec<E9Row> {
    let ms = scale.ms(200);
    let mut batch = Batch::new();
    for &node in TechNode::ALL.iter() {
        batch.push(format!("e9/{node}"), move || {
            crate::ledger::run_system("e9", build(node, 80, ms, 8_000.0).testing(false))
        });
    }
    TechNode::ALL
        .iter()
        .zip(batch.run(jobs))
        .map(|(&node, r)| E9Row {
            node,
            cores: node.core_count(),
            peak_demand: node.peak_power_all_cores(),
            tdp: node.params().tdp,
            dark_fraction: node.dark_silicon_fraction(),
            measured_mean: r.mean_power,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E10 — lifetime extension through wear-aware mapping (extension experiment)
// ---------------------------------------------------------------------------

/// The E10 result: weakest-link lifetime proxies under both mappers.
#[derive(Debug, Clone)]
pub struct E10Lifetime {
    /// Damage rate of the most worn core under the baseline mapper,
    /// damage/second (averaged over seeds).
    pub baseline_worst_rate: f64,
    /// Same under the test-aware utilization-oriented mapper.
    pub tum_worst_rate: f64,
    /// Relative damage spread (σ/µ) under the baseline.
    pub baseline_spread: f64,
    /// Relative damage spread under TUM.
    pub tum_spread: f64,
    /// Estimated lifetime gain: `baseline_worst / tum_worst − 1`.
    pub lifetime_gain: f64,
}

/// E10 (extension): a chip dies when its *first* core wears out, so
/// lifetime scales inversely with the worst per-core damage rate. The
/// utilization term of the paper's mapper levels wear; this experiment
/// quantifies the resulting weakest-link lifetime gain (the theme the
/// same group develops into DATE'16's lifetime-aware mapping, which
/// reports up to 62 % with a mapper optimised purely for lifetime).
///
/// Submission order: mapper-major (baseline, then TUM), then seed.
pub fn e10_lifetime(scale: Scale, jobs: usize) -> E10Lifetime {
    let ms = scale.ms(800);
    let seeds = scale.seeds(3);
    let kinds = [MapperKind::Baseline, MapperKind::TestAware];
    let mut batch = Batch::new();
    for &kind in kinds.iter() {
        for s in 0..seeds as u64 {
            batch.push(format!("e10/{kind:?}/seed{s}"), move || {
                crate::ledger::run_system("e10", build(TechNode::N16, 100 + s, ms, 1_500.0).mapper(kind))
            });
        }
    }
    let reports = batch.run(jobs);
    let mut worst = [0.0f64; 2];
    let mut spread = [0.0f64; 2];
    for (i, _) in kinds.iter().enumerate() {
        for r in &reports[i * seeds..(i + 1) * seeds] {
            let rates: Vec<f64> = r
                .damage_per_core
                .iter()
                .map(|d| d / r.sim_seconds)
                .collect();
            let n = rates.len() as f64;
            let mean = rates.iter().sum::<f64>() / n;
            let var = rates.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            worst[i] += rates.iter().fold(0.0f64, |a, &b| a.max(b));
            spread[i] += var.sqrt() / mean;
        }
        worst[i] /= seeds as f64;
        spread[i] /= seeds as f64;
    }
    E10Lifetime {
        baseline_worst_rate: worst[0],
        tum_worst_rate: worst[1],
        baseline_spread: spread[0],
        tum_spread: spread[1],
        lifetime_gain: worst[0] / worst[1] - 1.0,
    }
}

/// Prints the E10 result.
pub fn print_e10(l: &E10Lifetime) {
    println!("## E10 — weakest-link lifetime under wear-aware mapping (extension)");
    println!(
        "baseline: worst core wears at {:.4}/s (spread {:.1}%)",
        l.baseline_worst_rate,
        l.baseline_spread * 100.0
    );
    println!(
        "TUM:      worst core wears at {:.4}/s (spread {:.1}%)",
        l.tum_worst_rate,
        l.tum_spread * 100.0
    );
    println!(
        "estimated weakest-link lifetime gain: {:+.1}%",
        l.lifetime_gain * 100.0
    );
    println!();
}

/// Prints the E9 table.
pub fn print_e9(rows: &[E9Row]) {
    println!("## E9 — dark silicon across technology nodes (fixed area & TDP)");
    println!("node   cores  peak_demand_W  TDP_W  dark%   measured_mean_W(saturated)");
    for r in rows {
        println!(
            "{:<5}  {:>5}  {:>13.1}  {:>5.0}  {:>5.1}  {:>10.1}",
            r.node.to_string(),
            r.cores,
            r.peak_demand,
            r.tdp,
            r.dark_fraction * 100.0,
            r.measured_mean
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E11 — fault response: quarantine, victim handling, graceful degradation
// ---------------------------------------------------------------------------

/// The four victim-handling policies E11 sweeps, in print order.
pub const E11_POLICIES: [FaultResponsePolicy; 4] = [
    FaultResponsePolicy::Ignore,
    FaultResponsePolicy::Abort,
    FaultResponsePolicy::RestartElsewhere,
    FaultResponsePolicy::MigrateRegion,
];

/// One row of the E11 table: seed-averaged outcomes for one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Row {
    /// Victim-handling policy under test.
    pub policy: FaultResponsePolicy,
    /// Mean cores quarantined by the end of the run.
    pub quarantined: f64,
    /// Mean healthy cores remaining at the end of the run.
    pub healthy_end: f64,
    /// Mean throughput, MIPS.
    pub mips: f64,
    /// Mean victim applications aborted by a quarantine.
    pub aborted: f64,
    /// Mean victim applications restarted elsewhere.
    pub restarted: f64,
    /// Mean victim applications migrated in place.
    pub migrated: f64,
    /// Mean corruption exposure: core-seconds of application work
    /// executed on a core carrying an active fault.
    pub exposure: f64,
}

/// E11: close the detect→respond loop. Injects the same solid faults
/// under each victim-handling policy and reports what quarantining costs
/// (capacity, throughput, victim churn) and buys (corruption exposure).
///
/// Submission order: policy-major, then seed.
pub fn e11_fault_response(scale: Scale, jobs: usize) -> Vec<E11Row> {
    let ms = scale.ms(400);
    let seeds = scale.seeds(3);
    let mut batch = Batch::new();
    for &policy in &E11_POLICIES {
        for s in 0..seeds as u64 {
            batch.push(format!("e11/{policy}/seed{s}"), move || {
                crate::ledger::run_system(
                    "e11",
                    build(TechNode::N22, 110 + s, ms, 2_000.0)
                        .injected_faults(8)
                        .fault_response(policy),
                )
            });
        }
    }
    let mut reports = batch.run(jobs).into_iter();
    E11_POLICIES
        .iter()
        .map(|&policy| {
            let mut row = E11Row {
                policy,
                quarantined: 0.0,
                healthy_end: 0.0,
                mips: 0.0,
                aborted: 0.0,
                restarted: 0.0,
                migrated: 0.0,
                exposure: 0.0,
            };
            for _s in 0..seeds {
                let r = reports.next().expect("one run per (policy, seed)");
                row.quarantined += r.cores_quarantined as f64;
                row.healthy_end += r.healthy_cores_end as f64;
                row.mips += r.throughput_mips;
                row.aborted += r.apps_aborted as f64;
                row.restarted += r.apps_restarted as f64;
                row.migrated += r.apps_migrated as f64;
                row.exposure += r.corruption_exposure;
            }
            let n = seeds as f64;
            row.quarantined /= n;
            row.healthy_end /= n;
            row.mips /= n;
            row.aborted /= n;
            row.restarted /= n;
            row.migrated /= n;
            row.exposure /= n;
            row
        })
        .collect()
}

/// Prints the E11 table.
pub fn print_e11(rows: &[E11Row]) {
    println!("## E11 — fault response: quarantine cost vs corruption exposure");
    println!("policy    quarantined  healthy_end       MIPS  aborted  restarted  migrated  exposure_cs");
    for r in rows {
        println!(
            "{:<8}  {:>11.1}  {:>11.1}  {:>9.0}  {:>7.1}  {:>9.1}  {:>8.1}  {:>11.4}",
            r.policy.as_str(),
            r.quarantined,
            r.healthy_end,
            r.mips,
            r.aborted,
            r.restarted,
            r.migrated,
            r.exposure
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E12 — core lifecycle: re-admission lane × checkpoint cadence
// ---------------------------------------------------------------------------

/// The re-admission lane settings E12 sweeps: probe cadence in µs, with
/// `None` the terminal-quarantine baseline (lane off).
pub const E12_LANES: [Option<u64>; 2] = [None, Some(3_000)];

/// The checkpoint intervals E12 sweeps, µs (0 = checkpointing off:
/// migrations transfer the full state accumulated since mapping).
pub const E12_CHECKPOINTS: [u64; 3] = [0, 20_000, 2_000];

/// One row of the E12 table: seed-averaged lifecycle outcomes for one
/// (lane, checkpoint interval) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct E12Row {
    /// Probe cadence, µs (`None` = lane off, quarantine terminal).
    pub lane_us: Option<u64>,
    /// Checkpoint interval, µs (0 = off).
    pub checkpoint_us: u64,
    /// Mean cores ever quarantined.
    pub quarantined: f64,
    /// Mean cores re-admitted by the lane.
    pub readmitted: f64,
    /// Mean probes launched.
    pub probes: f64,
    /// Mean healthy cores remaining at the end of the run.
    pub healthy_end: f64,
    /// Mean throughput, MIPS.
    pub mips: f64,
    /// Mean checkpoint images written.
    pub checkpoints: f64,
    /// Mean corruption exposure, core-seconds.
    pub exposure: f64,
}

/// E12: the full core lifecycle on an intermittent-fault workload whose
/// faults *cool* a quarter-horizon after injection. Sweeps the
/// re-admission lane (off = terminal quarantine vs a 3 ms probe cadence)
/// against the checkpoint cadence, reporting how much withdrawn capacity
/// the lane recovers, what it costs in corruption exposure, and how the
/// checkpoint interval trades migration debt against pause overhead.
///
/// Submission order: lane-major, then checkpoint interval, then seed.
/// Runs through [`Batch::run_outcomes`]: a panicking cell surfaces as a
/// failure table instead of tearing down the sweep.
pub fn e12_core_lifecycle(scale: Scale, jobs: usize) -> Vec<E12Row> {
    let ms = scale.ms(400);
    let seeds = scale.seeds(3);
    let mut batch = Batch::new();
    for &lane in &E12_LANES {
        for &ck in &E12_CHECKPOINTS {
            for s in 0..seeds as u64 {
                batch.push(
                    format!(
                        "e12/lane-{}/ckpt-{ck}/seed{s}",
                        lane.map_or("off".to_owned(), |us| us.to_string())
                    ),
                    move || {
                        let mut b = build(TechNode::N22, 120 + s, ms, 1_000.0)
                            .injected_faults(32)
                            .intermittent_faults(1.0)
                            .intermittent_cooldown(0.25)
                            .fault_response(FaultResponsePolicy::MigrateRegion)
                            .checkpoint_interval_us(ck);
                        if let Some(us) = lane {
                            b = b.probe_cadence_us(us);
                        }
                        crate::ledger::run_system("e12", b)
                    },
                );
            }
        }
    }
    let (outcomes, _) = batch.run_outcomes(jobs);
    let failures = failure_table(&outcomes);
    assert!(failures.is_empty(), "e12 sweep had failed jobs:\n{failures}");
    let mut reports = outcomes.into_iter().map(|o| o.ok().expect("no failures"));
    let mut rows = Vec::new();
    for &lane in &E12_LANES {
        for &ck in &E12_CHECKPOINTS {
            let mut row = E12Row {
                lane_us: lane,
                checkpoint_us: ck,
                quarantined: 0.0,
                readmitted: 0.0,
                probes: 0.0,
                healthy_end: 0.0,
                mips: 0.0,
                checkpoints: 0.0,
                exposure: 0.0,
            };
            for _s in 0..seeds {
                let r = reports.next().expect("one run per (lane, ckpt, seed)");
                row.quarantined += r.cores_quarantined as f64;
                row.readmitted += r.cores_readmitted as f64;
                row.probes += r.probes_launched as f64;
                row.healthy_end += r.healthy_cores_end as f64;
                row.mips += r.throughput_mips;
                row.checkpoints += r.apps_checkpointed as f64;
                row.exposure += r.corruption_exposure;
            }
            let n = seeds as f64;
            row.quarantined /= n;
            row.readmitted /= n;
            row.probes /= n;
            row.healthy_end /= n;
            row.mips /= n;
            row.checkpoints /= n;
            row.exposure /= n;
            rows.push(row);
        }
    }
    rows
}

/// Prints the E12 table.
pub fn print_e12(rows: &[E12Row]) {
    println!("## E12 — core lifecycle: re-admission lane x checkpoint cadence");
    println!("lane_us  ckpt_us  quarantined  readmitted  probes  healthy_end       MIPS  checkpoints  exposure_cs");
    for r in rows {
        println!(
            "{:>7}  {:>7}  {:>11.1}  {:>10.1}  {:>6.1}  {:>11.1}  {:>9.0}  {:>11.1}  {:>11.4}",
            r.lane_us.map_or("off".to_owned(), |us| us.to_string()),
            r.checkpoint_us,
            r.quarantined,
            r.readmitted,
            r.probes,
            r.healthy_end,
            r.mips,
            r.checkpoints,
            r.exposure
        );
    }
    println!();
}
