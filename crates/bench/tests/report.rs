//! End-to-end guarantees of the run-report pipeline: the HTML and
//! Prometheus files are byte-identical across reruns and worker counts,
//! the flight recording reconciles with the report aggregates, and the
//! wall-clock phase timer never leaks into the deterministic outputs.

use manytest_bench::report::{
    render_html, render_prometheus, run_report_probe, run_report_probe_timed, write_report_files,
    METRIC_KEYS, REPORT_SNAPSHOT_CAPACITY,
};
use manytest_bench::Scale;
use manytest_core::prelude::*;

/// Two independent report generations must produce the same bytes — the
/// renderer consumes only the deterministic report, and the report is
/// reproducible. Worker counts cannot matter (a probe is a single run),
/// but CI additionally diffs the `repro report` output across `--jobs 1`
/// and `--jobs 4` at the binary level.
#[test]
fn report_files_are_byte_identical_across_runs() {
    let dir = std::env::temp_dir().join(format!("manytest-report-{}", std::process::id()));
    let (a_dir, b_dir) = (dir.join("a"), dir.join("b"));
    let a = run_report_probe("e11", Scale::Quick).expect("known id");
    let b = run_report_probe("e11", Scale::Quick).expect("known id");
    write_report_files(&a_dir, "e11", &a).expect("first report");
    write_report_files(&b_dir, "e11", &b).expect("second report");
    for name in ["e11.html", "metrics.prom"] {
        let left = std::fs::read(a_dir.join(name)).expect("first file");
        let right = std::fs::read(b_dir.join(name)).expect("second file");
        assert!(!left.is_empty(), "{name} is empty");
        assert_eq!(left, right, "{name} differs between two identical runs");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Installing the wall-clock phase timer must not change the simulation
/// or its rendered report by a single byte: wall time is observed, never
/// recorded.
#[test]
fn wall_phase_timer_does_not_perturb_the_report() {
    let plain = run_report_probe("e3", Scale::Quick).expect("known id");
    let (timed, wall) = run_report_probe_timed("e3", Scale::Quick).expect("known id");
    assert_eq!(plain, timed, "the phase timer must be a pure observer");
    assert_eq!(render_html("e3", &plain), render_html("e3", &timed));
    assert_eq!(render_prometheus("e3", &plain), render_prometheus("e3", &timed));
    assert!(
        wall.iter().sum::<f64>() > 0.0,
        "the timer must have measured something"
    );
}

/// The flight recording carried on the report must reconcile with the
/// aggregates and respect its configured bound.
#[test]
fn flight_recording_reconciles_and_respects_its_bound() {
    let report = run_report_probe("e11", Scale::Quick).expect("known id");
    validate_events(&report).expect("audit reconciles profile, state and events");
    assert!(!report.state.is_empty(), "report probes must record state");
    assert!(
        report.state.snapshots().len() <= REPORT_SNAPSHOT_CAPACITY,
        "recorder exceeded its ring capacity"
    );
    assert_eq!(
        report.state.seen(),
        report.profile.epochs,
        "one snapshot offered per epoch"
    );
    let last = report.state.last().expect("final snapshot retained");
    assert_eq!(u64::from(last.pending_apps), report.apps_pending);
    assert_eq!(u64::from(last.active_tests), report.tests_in_flight);
}

/// Every metric named in `METRIC_KEYS` is present in the exposition with
/// the probe label, and nothing undeclared sneaks in.
#[test]
fn prometheus_file_matches_the_declared_schema() {
    let report = run_report_probe("e3", Scale::Quick).expect("known id");
    let text = render_prometheus("e3", &report);
    let mut sample_lines = 0;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        sample_lines += 1;
        let name = line.split('{').next().unwrap_or_default();
        assert!(METRIC_KEYS.contains(&name), "undeclared metric `{name}`");
        assert!(
            line.contains("{probe=\"e3\"}"),
            "sample is missing the probe label: {line}"
        );
    }
    assert_eq!(sample_lines, METRIC_KEYS.len(), "one sample per declared metric");
}
