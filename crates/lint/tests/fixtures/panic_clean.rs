pub fn lookup(xs: &[u32], i: usize) -> u32 {
    let Some(v) = xs.get(i) else {
        debug_assert!(false, "caller guarantees i < xs.len()");
        return 0;
    };
    *v
}

pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(panic-in-hot-path, reason = "fixture: caller guarantees non-empty input")
    *xs.first().expect("non-empty")
}
