//! The naive first-fit mapper — the lower bound every contiguous mapper
//! is measured against.

use crate::context::MapContext;
use crate::mapping::Mapping;
use crate::Mapper;
use manytest_workload::TaskGraph;
use serde::{Deserialize, Serialize};

/// Non-contiguous first-fit mapping: task *i* goes to the *i*-th free core
/// in node-id order, ignoring communication, utilisation and criticality
/// alike. Fast and fair, but it fragments applications across the die —
/// the failure mode contiguous mapping (CoNA/SHiC/MapPro) exists to avoid.
///
/// # Examples
///
/// ```
/// use manytest_map::prelude::*;
/// use manytest_noc::Mesh2D;
/// use manytest_workload::presets;
///
/// let ctx = MapContext::all_free(Mesh2D::new(8, 8));
/// let app = presets::pip();
/// let ff = FirstFitMapper::new().map(&ctx, &app).unwrap();
/// let cona = ConaMapper::new().map(&ctx, &app).unwrap();
/// // On an empty mesh both happen to pack densely; first-fit's weakness
/// // shows under fragmentation (see the unit tests).
/// assert!(ff.is_valid_for(Mesh2D::new(8, 8), &app));
/// # let _ = cona;
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirstFitMapper {
    _private: (),
}

impl FirstFitMapper {
    /// Creates the first-fit mapper.
    pub fn new() -> Self {
        FirstFitMapper::default()
    }
}

impl Mapper for FirstFitMapper {
    // lint:effect(alloc, reason = "mapping lane materializes one placement per admitted app; admission frequency is workload-, not mesh-, scaled")
    fn map(&self, ctx: &MapContext, app: &TaskGraph) -> Option<Mapping> {
        let mesh = ctx.mesh();
        let free: Vec<_> = mesh.coords().filter(|&c| ctx.is_free(c)).collect();
        if free.len() < app.task_count() {
            return None;
        }
        Some(Mapping::new(free[..app.task_count()].to_vec()))
    }

    fn name(&self) -> &str {
        "first-fit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ConaMapper;
    use manytest_noc::{Coord, Mesh2D};
    use manytest_workload::presets;

    #[test]
    fn maps_when_space_allows() {
        let mesh = Mesh2D::new(8, 8);
        let ctx = MapContext::all_free(mesh);
        for app in presets::all() {
            let m = FirstFitMapper::new().map(&ctx, &app).expect("fits");
            assert!(m.is_valid_for(mesh, &app));
        }
    }

    #[test]
    fn refuses_when_full() {
        let mesh = Mesh2D::new(3, 3);
        let mut ctx = MapContext::all_free(mesh);
        for c in mesh.coords().take(5) {
            ctx.set_free(c, false);
        }
        // 4 free cores < 8 tasks.
        assert!(FirstFitMapper::new().map(&ctx, &presets::pip()).is_none());
    }

    #[test]
    fn fragmentation_destroys_locality() {
        let mesh = Mesh2D::new(8, 8);
        let mut ctx = MapContext::all_free(mesh);
        // Only the leftmost and rightmost columns are free: first-fit
        // (row-major) alternates between them, ping-ponging every edge
        // across the die; a contiguous mapper settles into one column.
        for c in mesh.coords() {
            ctx.set_free(c, c.x == 0 || c.x == 7);
        }
        let app = presets::pip();
        let ff = FirstFitMapper::new().map(&ctx, &app).unwrap();
        let cona = ConaMapper::new().map(&ctx, &app).unwrap();
        assert!(
            cona.weighted_hop_cost(&app) < ff.weighted_hop_cost(&app) / 2.0,
            "contiguity should at least halve the hop cost: {} vs {}",
            cona.weighted_hop_cost(&app),
            ff.weighted_hop_cost(&app)
        );
    }

    #[test]
    fn first_fit_takes_lowest_ids() {
        let mesh = Mesh2D::new(4, 4);
        let ctx = MapContext::all_free(mesh);
        let mut g = manytest_workload::TaskGraph::new("pair");
        let a = g.add_task(manytest_workload::Task { instructions: 1 });
        let b = g.add_task(manytest_workload::Task { instructions: 1 });
        g.add_edge(a, b, 1.0);
        let m = FirstFitMapper::new().map(&ctx, &g).unwrap();
        assert_eq!(m.coord_of(a), Coord::new(0, 0));
        assert_eq!(m.coord_of(b), Coord::new(1, 0));
    }

    #[test]
    fn ignores_everything_but_availability() {
        let mesh = Mesh2D::new(6, 6);
        let clean = MapContext::all_free(mesh);
        let mut pressured = MapContext::all_free(mesh);
        for c in mesh.coords() {
            pressured.set_utilization(c, 0.9);
            pressured.set_criticality(c, 9.0);
        }
        let app = presets::mwd();
        let ff = FirstFitMapper::new();
        assert_eq!(ff.map(&clean, &app), ff.map(&pressured, &app));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FirstFitMapper::new().name(), "first-fit");
    }
}
