//! Byte-exact wire codec for telemetry types.
//!
//! The bench harness persists finished [`Report`]s into an on-disk run
//! ledger and replays them on cache hits. A replayed report must render
//! **byte-identical** tables, Prometheus expositions and JSONL dumps, so
//! this codec round-trips every value exactly:
//!
//! * `f64` is written as the lowercase hex of [`f64::to_bits`] — no
//!   decimal formatting is involved, so every bit pattern (including
//!   negative zero and the exact shortest-round-trip inputs) survives;
//! * integers are written in decimal; `usize` travels as `u64`;
//! * enums travel as their dense indices;
//! * strings are percent-escaped so the stream stays token-separable.
//!
//! The format is a flat whitespace-separated token stream with a
//! versioned header ([`WIRE_HEADER`]). Decoding is total: any malformed
//! input yields a [`WireError`], never a panic, because ledger blobs may
//! be truncated or corrupted on disk and a corrupt cache entry must
//! degrade to a cache miss.
//!
//! [`Report`]: https://docs.rs/ — `manytest_core::Report`, which
//! implements [`Wire`] by exhaustively destructuring itself, so adding a
//! report field without extending the codec is a compile error.

use std::fmt;
use std::str::SplitAsciiWhitespace;

/// First token pair of every encoded stream: format magic + version.
pub const WIRE_HEADER: &str = "manytest-wire 1";

/// A decode failure: what was expected and roughly where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Zero-based index of the offending token.
    pub token: usize,
    /// What the decoder expected there.
    pub expected: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at token {}: expected {}", self.token, self.expected)
    }
}

impl std::error::Error for WireError {}

/// Encoder: appends whitespace-separated tokens to an owned buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: String,
}

impl WireWriter {
    /// A writer primed with the [`WIRE_HEADER`].
    pub fn new() -> Self {
        let mut w = WireWriter { buf: String::new() };
        w.buf.push_str(WIRE_HEADER);
        w
    }

    /// Appends one raw token (must contain no whitespace).
    fn token(&mut self, tok: &str) {
        debug_assert!(!tok.is_empty() && !tok.contains(char::is_whitespace));
        self.buf.push('\n');
        self.buf.push_str(tok);
    }

    /// Appends an unsigned integer token.
    pub fn u64(&mut self, v: u64) {
        self.token(&v.to_string());
    }

    /// Appends a signed integer token.
    pub fn i64(&mut self, v: i64) {
        self.token(&v.to_string());
    }

    /// Appends a float as the lowercase hex of its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.token(&format!("{:016x}", v.to_bits()));
    }

    /// Appends a bool as `0`/`1`.
    pub fn bool(&mut self, v: bool) {
        self.token(if v { "1" } else { "0" });
    }

    /// Appends a string, percent-escaping everything outside
    /// `[A-Za-z0-9_.-]` so the token stays whitespace-free. The empty
    /// string is written as a lone `%` (an escape with no digits, which
    /// no escaped byte produces).
    pub fn str(&mut self, s: &str) {
        if s.is_empty() {
            self.token("%");
            return;
        }
        let mut tok = String::with_capacity(s.len());
        for b in s.bytes() {
            match b {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.' | b'-' => {
                    tok.push(b as char);
                }
                _ => {
                    tok.push('%');
                    tok.push_str(&format!("{b:02x}"));
                }
            }
        }
        self.token(&tok);
    }

    /// The finished stream.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Decoder over a token stream produced by [`WireWriter`].
#[derive(Debug)]
pub struct WireReader<'a> {
    toks: SplitAsciiWhitespace<'a>,
    at: usize,
}

impl<'a> WireReader<'a> {
    /// Opens a reader, checking the [`WIRE_HEADER`].
    ///
    /// # Errors
    ///
    /// Fails when the stream does not start with the expected magic and
    /// version tokens.
    pub fn new(text: &'a str) -> Result<Self, WireError> {
        let mut r = WireReader { toks: text.split_ascii_whitespace(), at: 0 };
        let magic = r.next("wire header magic")?;
        let version = r.next("wire header version")?;
        let mut expect = WIRE_HEADER.split_ascii_whitespace();
        if Some(magic) != expect.next() || Some(version) != expect.next() {
            return Err(WireError { token: 0, expected: "manytest-wire header" });
        }
        Ok(r)
    }

    fn next(&mut self, expected: &'static str) -> Result<&'a str, WireError> {
        let tok = self.toks.next().ok_or(WireError { token: self.at, expected })?;
        self.at += 1;
        Ok(tok)
    }

    /// Builds an error anchored at the most recent token — for decoders
    /// that read a well-formed token whose *value* is out of range
    /// (an unknown enum index, an overflowing narrowing, …).
    pub fn err<T>(&self, expected: &'static str) -> Result<T, WireError> {
        Err(WireError { token: self.at.saturating_sub(1), expected })
    }

    /// Reads an unsigned integer token.
    ///
    /// # Errors
    ///
    /// Fails on a missing or non-numeric token.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let tok = self.next("u64")?;
        match tok.parse() {
            Ok(v) => Ok(v),
            Err(_) => self.err("u64"),
        }
    }

    /// Reads a signed integer token.
    ///
    /// # Errors
    ///
    /// Fails on a missing or non-numeric token.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let tok = self.next("i64")?;
        match tok.parse() {
            Ok(v) => Ok(v),
            Err(_) => self.err("i64"),
        }
    }

    /// Reads a float written as bit-pattern hex.
    ///
    /// # Errors
    ///
    /// Fails on a missing or non-hex token.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let tok = self.next("f64 bits")?;
        match u64::from_str_radix(tok, 16) {
            Ok(bits) => Ok(f64::from_bits(bits)),
            Err(_) => self.err("f64 bits"),
        }
    }

    /// Reads a `0`/`1` bool token.
    ///
    /// # Errors
    ///
    /// Fails on a missing token or any value other than `0`/`1`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.next("bool")? {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => self.err("bool"),
        }
    }

    /// Reads a percent-escaped string token.
    ///
    /// # Errors
    ///
    /// Fails on a missing token or a malformed escape.
    pub fn str(&mut self) -> Result<String, WireError> {
        let tok = self.next("string")?;
        if tok == "%" {
            return Ok(String::new());
        }
        let mut out = Vec::with_capacity(tok.len());
        let bytes = tok.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                let Some(hex) = tok.get(i + 1..i + 3) else {
                    return self.err("string escape");
                };
                let Ok(b) = u8::from_str_radix(hex, 16) else {
                    return self.err("string escape");
                };
                out.push(b);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        match String::from_utf8(out) {
            Ok(s) => Ok(s),
            Err(_) => self.err("utf-8 string"),
        }
    }

    /// Verifies the stream is exhausted (guards against truncated writes
    /// that happen to decode — a short blob must not silently pass).
    ///
    /// # Errors
    ///
    /// Fails when unread tokens remain.
    pub fn finish(mut self) -> Result<(), WireError> {
        if self.toks.next().is_some() {
            return Err(WireError { token: self.at, expected: "end of stream" });
        }
        Ok(())
    }
}

/// A type with an exact wire round-trip: `decode(encode(x)) == x`, bit
/// for bit. Implemented next to each type's definition so a field added
/// to the struct without touching the codec fails to compile (encoders
/// destructure exhaustively).
pub trait Wire: Sized {
    /// Appends this value's tokens to the stream.
    fn encode(&self, w: &mut WireWriter);

    /// Reads one value off the stream.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        u32::try_from(v).or_else(|_| r.err("u32"))
    }
}

impl Wire for u16 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        u16::try_from(v).or_else(|_| r.err("u16"))
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        u8::try_from(v).or_else(|_| r.err("u8"))
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        usize::try_from(v).or_else(|_| r.err("usize"))
    }
}

impl Wire for i16 {
    fn encode(&self, w: &mut WireWriter) {
        w.i64(i64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.i64()?;
        i16::try_from(v).or_else(|_| r.err("i16"))
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.f64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.bool(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.bool()? { Ok(Some(T::decode(r)?)) } else { Ok(None) }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.u64()?;
        // Cap the pre-allocation: a corrupt length token must not OOM.
        let mut out = Vec::with_capacity(usize::try_from(n).unwrap_or(0).min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Encodes one value as a complete stream (header included).
pub fn encode_to_string<T: Wire>(value: &T) -> String {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.finish()
}

/// Decodes one value from a complete stream, requiring full consumption.
///
/// # Errors
///
/// Returns a [`WireError`] on a bad header, malformed tokens, truncation
/// or trailing garbage.
pub fn decode_from_str<T: Wire>(text: &str) -> Result<T, WireError> {
    let mut r = WireReader::new(text)?;
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips_are_exact() {
        for &bits in &[0u64, 1, 0x8000_0000_0000_0000, f64::NAN.to_bits(), (-0.0f64).to_bits()] {
            let v = f64::from_bits(bits);
            let text = encode_to_string(&v);
            let back: f64 = decode_from_str(&text).expect("round trip");
            assert_eq!(back.to_bits(), bits, "f64 bits must survive");
        }
        let v: Vec<(f64, f64)> = vec![(0.25, -1.5), (1e-300, f64::INFINITY)];
        let back: Vec<(f64, f64)> = decode_from_str(&encode_to_string(&v)).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        for s in ["power_w", "", "has space", "per/cent %", "unicode: µW"] {
            let text = encode_to_string(&s.to_owned());
            let back: String = decode_from_str(&text).expect("round trip");
            assert_eq!(back, s);
        }
    }

    #[test]
    fn truncated_and_malformed_input_errors_instead_of_panicking() {
        assert!(decode_from_str::<u64>("").is_err());
        assert!(decode_from_str::<u64>("manytest-wire 1").is_err());
        assert!(decode_from_str::<u64>("manytest-wire 1\nnot-a-number").is_err());
        assert!(decode_from_str::<u64>("wrong-magic 1\n3").is_err());
        // Trailing garbage is rejected too.
        assert!(decode_from_str::<u64>("manytest-wire 1\n3\n4").is_err());
        // A option tag other than 0/1 is rejected.
        assert!(decode_from_str::<Option<u64>>("manytest-wire 1\n2").is_err());
    }

    #[test]
    fn usize_max_survives_via_u64() {
        let text = encode_to_string(&usize::MAX);
        let back: usize = decode_from_str(&text).expect("round trip");
        assert_eq!(back, usize::MAX);
    }
}
