//! Diagnostics: findings, human rendering and JSON rendering.

use std::fmt;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`nondet-collections`, `unused-allow`, …).
    pub rule: &'static str,
    /// Workspace-relative, `/`-separated path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Why the rule exists / what to do instead.
    pub rationale: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders findings for terminals: one `file:line:col` diagnostic per
/// finding plus the rule rationale, then a summary line.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
        out.push_str("    note: ");
        out.push_str(f.rationale);
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!("manytest-lint: {files_scanned} files scanned, no findings\n"));
    } else {
        out.push_str(&format!(
            "manytest-lint: {} finding{} in {} files scanned\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            files_scanned
        ));
    }
    out
}

/// Renders findings as a stable JSON document (machine-readable CI
/// artifact). Keys are emitted in a fixed order; paths use `/`.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "wall-clock",
            file: "crates/sim/src/time.rs".into(),
            line: 3,
            col: 9,
            message: "Instant outside crates/bench".into(),
            rationale: "wall-clock reads break replay",
        }
    }

    #[test]
    fn human_format_is_file_line_col() {
        let text = render_human(&[finding()], 10);
        assert!(text.starts_with("crates/sim/src/time.rs:3:9: [wall-clock]"));
        assert!(text.contains("1 finding in 10 files scanned"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = finding();
        f.message = "say \"hi\"".into();
        let json = render_json(&[f], 2);
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("say \\\"hi\\\""));
        let empty = render_json(&[], 2);
        assert!(empty.contains("\"findings\": []"));
    }
}
