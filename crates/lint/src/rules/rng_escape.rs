//! `rng-escape`: `SimRng` handles must not be parked where they can
//! cross a batch-job boundary.
//!
//! The runtime RNG audit (debug builds only) panics when a `SimRng` is
//! drawn from two different batch jobs. This rule is its static twin:
//! it flags the constructions that make such sharing possible at all —
//! a `SimRng` inside `Arc`/`Mutex`/`RwLock`/`OnceLock`/`OnceCell`, in a
//! `static` item or in a `thread_local!` block. Release builds skip the
//! runtime check, so the static gate is what actually protects CI.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct RngEscape;

/// Idents that, appearing shortly before a `SimRng`, indicate the
/// handle is being parked in shared or global storage.
const ESCAPE_HATCHES: [&str; 7] = [
    "Arc", "Mutex", "RwLock", "OnceLock", "OnceCell", "static", "thread_local",
];

/// How many code tokens back to look for an escape hatch (covers
/// `Arc<Mutex<SimRng>>` and `static RNG: Mutex<SimRng>`).
const LOOKBACK: usize = 8;

impl Rule for RngEscape {
    fn id(&self) -> &'static str {
        "rng-escape"
    }

    fn description(&self) -> &'static str {
        "SimRng must not be stored in Arc/Mutex/static/thread_local where it could cross \
         a batch-job boundary"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // The sim crate defines SimRng (and its own audit machinery);
        // test code exercises sharing deliberately.
        if file.crate_name() == "sim" || file.is_test_file() {
            return;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokenKind::Ident
                || tok.text != "SimRng"
                || file.is_test_line(tok.line)
            {
                continue;
            }
            let hatch = code[i.saturating_sub(LOOKBACK)..i]
                .iter()
                .rev()
                .find(|t| ESCAPE_HATCHES.iter().any(|h| t.is_ident(h)));
            if let Some(hatch) = hatch {
                out.push(Finding {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "SimRng stored behind `{}`: the handle can outlive its batch-job \
                         audit scope",
                        hatch.text
                    ),
                    rationale: "a shared or global SimRng breaks per-job determinism; derive a \
                                fresh stream per job with SimRng::derive instead",
                });
            }
        }
    }
}
