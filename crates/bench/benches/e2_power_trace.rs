//! Criterion bench regenerating E2 (chip power trace under the TDP cap) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e2_power_trace, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_power_trace");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e2_power_trace(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
