//! Decision-telemetry probes for the evaluation suite.
//!
//! Each experiment gets one *probe*: a single representative run with the
//! same node/seed/load as the experiment's first job, instrumented with an
//! in-memory event log and a few injected faults so every event kind has a
//! chance to fire. Probes back two `repro` features:
//!
//! * `repro --events DIR` dumps each probe's log as `DIR/<id>.jsonl`
//!   (validated against the report's aggregates first), and
//! * `repro explain <id>` renders the log as a human-readable decision
//!   timeline plus counter/histogram summaries.
//!
//! Probes are separate runs — the experiments themselves stay untouched,
//! so their tables remain bit-identical with or without `--events`.

use crate::runner::Batch;
use crate::Scale;
use manytest_core::prelude::*;
use manytest_sim::OnlineStats;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::Path;

/// Event-log capacity used by every probe: large enough that no probe at
/// `Scale::Full` drops samples (`write_event_logs` asserts this).
pub const PROBE_EVENT_CAPACITY: usize = 1 << 17;

/// Faults injected into every probe so the fault lifecycle shows up in
/// the timeline even for experiments that do not inject any themselves.
const PROBE_FAULTS: usize = 8;

/// Experiments that have a probe (all of them).
pub const PROBE_IDS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
    "a4", "a5", "a6",
];

/// The probe configuration for one experiment id, mirroring that
/// experiment's first submitted job (node, seed, horizon, load, switches),
/// plus the capture instrumentation. `None` for unknown ids.
pub fn probe_builder(id: &str, scale: Scale) -> Option<SystemBuilder> {
    let base = |node: TechNode, seed: u64, full_ms: u64, rate: f64| {
        SystemBuilder::new(node)
            .seed(seed)
            .sim_time_ms(scale.ms(full_ms))
            .arrival_rate(rate)
    };
    let builder = match id {
        "e1" => base(TechNode::N16, 10, 300, 3_000.0),
        "e2" => base(TechNode::N16, 5, 400, 2_000.0),
        "e3" => base(TechNode::N16, 21, 300, 1_000.0),
        "e4" => base(TechNode::N16, 33, 400, 1_000.0),
        "e5" => base(TechNode::N16, 40, 300, 2_500.0),
        "e6" => base(TechNode::N16, 55, 500, 2_000.0),
        "e7" => base(TechNode::N16, 60, 800, 500.0),
        "e8" => base(TechNode::N16, 70, 300, 6_000.0),
        "e9" => base(TechNode::N16, 80, 200, 8_000.0).testing(false),
        "e10" => base(TechNode::N16, 100, 800, 1_500.0),
        "e11" => base(TechNode::N16, 110, 400, 2_000.0)
            .fault_response(FaultResponsePolicy::MigrateRegion)
            .intermittent_faults(0.25)
            .test_false_positives(0.01),
        // The lifecycle probe needs room for intermittents to be caught,
        // confirmed, cooled and re-admitted, so it keeps the experiment's
        // N22 mesh and a longer horizon instead of the N16 default.
        "e12" => base(TechNode::N22, 121, 800, 500.0)
            .fault_response(FaultResponsePolicy::MigrateRegion)
            .intermittent_faults(1.0)
            .intermittent_cooldown(0.25)
            .probe_cadence_us(3_000)
            .checkpoint_interval_us(2_000),
        "a1" => base(TechNode::N16, 90, 300, 2_500.0).mapper(MapperKind::Baseline),
        "a2" => base(TechNode::N16, 91, 500, 2_000.0),
        "a3" => base(TechNode::N16, 92, 300, 2_500.0).mapper(MapperKind::Baseline),
        "a4" => base(TechNode::N16, 93, 1_200, 400.0).vf_windowed_faults(1.0),
        "a5" => base(TechNode::N16, 94, 500, 2_000.0).transient_thermal(true),
        "a6" => base(TechNode::N16, 95, 300, 3_000.0).model_contention(true),
        _ => return None,
    };
    Some(
        builder
            .capture_events(PROBE_EVENT_CAPACITY)
            .injected_faults(PROBE_FAULTS)
            .vf_windowed_faults(0.25),
    )
}

/// Runs one probe to completion (through the run-ledger funnel, so a
/// warm ledger serves it from cache). `None` for unknown ids.
pub fn run_probe(id: &str, scale: Scale) -> Option<Report> {
    Some(crate::ledger::run_system(
        &format!("probe/{id}"),
        probe_builder(id, scale)?,
    ))
}

/// Runs the probes for `ids` (unknown ids are skipped) on up to `jobs`
/// workers and returns `(id, report)` pairs in `ids` order.
pub fn capture_events(ids: &[&str], scale: Scale, jobs: usize) -> Vec<(String, Report)> {
    let mut batch = Batch::new();
    let known: Vec<&str> = ids
        .iter()
        .copied()
        .filter(|id| probe_builder(id, scale).is_some())
        .collect();
    for &id in &known {
        let owned = id.to_owned();
        batch.push(format!("probe/{id}"), move || {
            run_probe(&owned, scale).expect("id was checked above")
        });
    }
    known
        .into_iter()
        .map(str::to_owned)
        .zip(batch.run(jobs))
        .collect()
}

/// Runs the probes for `ids` and writes one validated JSONL file per
/// probe into `dir` (created if missing). Returns `(id, event_count)` in
/// `ids` order.
///
/// # Errors
///
/// I/O errors from creating the directory or writing a file, and a
/// synthesized [`io::ErrorKind::InvalidData`] error if any probe's event
/// counts fail to reconcile with its report aggregates or the log
/// overflowed [`PROBE_EVENT_CAPACITY`].
pub fn write_event_logs(
    dir: &Path,
    ids: &[&str],
    scale: Scale,
    jobs: usize,
) -> io::Result<Vec<(String, usize)>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (id, report) in capture_events(ids, scale, jobs) {
        validate_events(&report).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("probe {id}: {e}"),
            )
        })?;
        if report.events.dropped() > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "probe {id}: event log dropped {} samples; raise PROBE_EVENT_CAPACITY",
                    report.events.dropped()
                ),
            ));
        }
        let file = fs::File::create(dir.join(format!("{id}.jsonl")))?;
        let mut writer = io::BufWriter::new(file);
        report.events.write_jsonl(&mut writer)?;
        writer.flush()?; // surface flush errors; BufWriter's drop swallows them
        written.push((id, report.events.len()));
    }
    Ok(written)
}

/// One human-readable timeline line for an event.
pub(crate) fn describe(out: &mut String, t: f64, ev: &SimEvent) {
    let ms = t * 1e3;
    let _ = write!(out, "{ms:>10.3} ms  ");
    describe_event(out, ev);
    out.push('\n');
}

/// The description text for an event (no timestamp, no newline).
pub(crate) fn describe_event(out: &mut String, ev: &SimEvent) {
    let _ = match *ev {
        SimEvent::AppArrived { app, tasks } => {
            write!(out, "app {app} arrived ({tasks} tasks)")
        }
        SimEvent::AppRejected { app, tasks } => {
            write!(out, "app {app} REJECTED ({tasks} tasks exceed the mesh)")
        }
        SimEvent::AppMapped {
            app,
            tasks,
            first_node,
            region_w,
            region_h,
            level,
            hop_cost,
            queue_wait,
            headroom,
        } => write!(
            out,
            "app {app} mapped: {tasks} tasks in {region_w}x{region_h} region at node {first_node}, \
             V/f level {level}, hop cost {hop_cost:.2}, waited {:.3} ms, headroom {headroom:.2} W",
            queue_wait * 1e3
        ),
        SimEvent::AppCompleted { app, latency } => {
            write!(out, "app {app} completed (latency {:.3} ms)", latency * 1e3)
        }
        SimEvent::TestLaunched {
            core,
            routine,
            level,
            power,
            headroom,
        } => write!(
            out,
            "test launched on core {core}: routine {routine} at V/f level {level} \
             ({power:.3} W, headroom left {headroom:.2} W)"
        ),
        SimEvent::TestDeniedPower {
            core,
            needed,
            headroom,
        } => write!(
            out,
            "test DENIED on core {core}: needs {needed:.3} W, headroom {headroom:.3} W"
        ),
        SimEvent::TestAborted { core, reason } => {
            write!(out, "test aborted on core {core} ({})", reason.as_str())
        }
        SimEvent::TestCompleted {
            core,
            routine,
            level,
            covered_levels,
            interval,
        } => {
            let _ = write!(
                out,
                "test completed on core {core}: routine {routine} at level {level}, \
                 {covered_levels} levels covered"
            );
            if interval >= 0.0 {
                write!(out, ", {:.3} ms since last", interval * 1e3)
            } else {
                write!(out, ", first test on this core")
            }
        }
        SimEvent::CapAdjusted {
            cap,
            measured,
            headroom,
            reservations,
        } => write!(
            out,
            "cap -> {cap:.2} W (measured {measured:.2} W, headroom {headroom:.2} W, \
             {reservations} reservations)"
        ),
        SimEvent::DvfsTransition { core, from, to } => {
            write!(out, "core {core} V/f level {from} -> {to} (-1 = gated)")
        }
        SimEvent::FaultActivated { core } => {
            write!(out, "latent fault ACTIVATED on core {core}")
        }
        SimEvent::FaultDetected { core, latency } => write!(
            out,
            "fault DETECTED on core {core} ({:.3} ms after activation)",
            latency * 1e3
        ),
        SimEvent::CoreSuspected { core, level } => write!(
            out,
            "core {core} SUSPECT: confirmation retests queued at V/f level {level}"
        ),
        SimEvent::CoreQuarantined { core, retests } => write!(
            out,
            "core {core} QUARANTINED after {retests} confirmation retests (power-gated)"
        ),
        SimEvent::CoreCleared { core, retests } => write!(
            out,
            "core {core} cleared: {retests} retests failed to reproduce the fault"
        ),
        SimEvent::AppAborted { app, core } => {
            write!(out, "app {app} ABORTED (victim of core {core} quarantine)")
        }
        SimEvent::AppRestarted { app, core } => write!(
            out,
            "app {app} restarted elsewhere (victim of core {core} quarantine)"
        ),
        SimEvent::AppMigrated {
            app,
            core,
            moved_tasks,
            delay,
        } => write!(
            out,
            "app {app} migrated off core {core}: {moved_tasks} tasks moved, \
             {:.3} ms state-transfer delay",
            delay * 1e3
        ),
        SimEvent::CoreProbeLaunched {
            core,
            streak,
            inflight,
        } => write!(
            out,
            "probe launched on quarantined core {core}: {streak} clean so far \
             ({inflight} probe sessions in flight)"
        ),
        SimEvent::CoreReadmitted { core, probes } => write!(
            out,
            "core {core} RE-ADMITTED after {probes} clean probes (mappable again)"
        ),
        SimEvent::CoreRequarantined { core, backoff } => write!(
            out,
            "core {core} re-quarantined: probe reproduced the fault \
             (backoff exponent now {backoff})"
        ),
        SimEvent::AppCheckpointed { app, tasks, bytes } => write!(
            out,
            "app {app} checkpointed: {tasks} live tasks, {bytes} B image"
        ),
    };
}

/// Renders one record: the timeline line, plus — for fault-response
/// outcomes (quarantine, migration, abort, restart) — its full causal
/// chain as indented `caused-by` lines, so "why was this core withdrawn"
/// reads inline instead of requiring a manual timeline scan.
pub(crate) fn describe_record(out: &mut String, graph: &ProvenanceGraph<'_>, rec: &EventRecord) {
    describe(out, rec.t, &rec.ev);
    let traced = matches!(
        rec.ev,
        SimEvent::CoreQuarantined { .. }
            | SimEvent::CoreReadmitted { .. }
            | SimEvent::CoreRequarantined { .. }
            | SimEvent::AppMigrated { .. }
            | SimEvent::AppAborted { .. }
            | SimEvent::AppRestarted { .. }
    );
    if !traced {
        return;
    }
    let chain = graph.chain_to_root(rec.id);
    for i in 1..chain.len() {
        let Some(link) = chain[i - 1].cause else { break };
        let anc = chain[i];
        let _ = write!(
            out,
            "              caused-by [{}] {:>8.3} ms: ",
            link.kind.as_str(),
            anc.t * 1e3
        );
        describe_event(out, &anc.ev);
        out.push('\n');
    }
}

/// Timeline length before elision kicks in.
const EXPLAIN_HEAD: usize = 48;
const EXPLAIN_TAIL: usize = 24;
/// Fault-response verdicts whose causal chains `explain` renders in the
/// degradation block (independently of head/tail elision).
const EXPLAIN_CHAINS: usize = 4;

/// Runs the probe for `id` and renders its decision timeline, counter
/// summary and key histograms as one printable string. `None` for
/// unknown ids.
pub fn explain(id: &str, scale: Scale) -> Option<String> {
    let report = run_probe(id, scale)?;
    let events = report.events.events();
    let mut out = String::new();
    let _ = writeln!(out, "## decision timeline — probe {id}");
    let _ = writeln!(
        out,
        "{} events over {:.3} s simulated ({} dropped)",
        report.events.total(),
        report.sim_seconds,
        report.events.dropped()
    );
    if let Some(warning) = report.events.saturation_warning() {
        let _ = writeln!(out, "{warning}");
    }
    out.push('\n');
    let graph = ProvenanceGraph::build(events);
    if events.len() <= EXPLAIN_HEAD + EXPLAIN_TAIL {
        for rec in events {
            describe_record(&mut out, &graph, rec);
        }
    } else {
        for rec in &events[..EXPLAIN_HEAD] {
            describe_record(&mut out, &graph, rec);
        }
        let _ = writeln!(
            out,
            "           ... {} events elided (full log via --events) ...",
            events.len() - EXPLAIN_HEAD - EXPLAIN_TAIL
        );
        for rec in &events[events.len() - EXPLAIN_TAIL..] {
            describe_record(&mut out, &graph, rec);
        }
    }

    // Registry pass: per-kind counters plus the distributions the paper's
    // analysis cares about (all in milliseconds).
    let mut registry = CounterRegistry::new();
    let mut queue_wait = OnlineStats::new();
    let mut detection = OnlineStats::new();
    let mut interval = OnlineStats::new();
    let mut cap = OnlineStats::new();
    for rec in events {
        registry.on_event(rec);
        match rec.ev {
            SimEvent::AppMapped { queue_wait: w, .. } => queue_wait.push(w * 1e3),
            SimEvent::FaultDetected { latency, .. } => detection.push(latency * 1e3),
            SimEvent::TestCompleted { interval: iv, .. } if iv >= 0.0 => interval.push(iv * 1e3),
            SimEvent::CapAdjusted { cap: c, .. } => cap.push(c),
            // lint:allow(event-match-exhaustiveness, reason = "subset contract: latency histograms only sample the four latency-bearing events; other variants carry no duration")
            _ => {}
        }
    }
    for (name, stats) in [
        ("queue_wait_ms", &queue_wait),
        ("detection_latency_ms", &detection),
        ("test_interval_ms", &interval),
    ] {
        let hi = stats.max().unwrap_or(1.0).max(1e-9) * 1.001;
        registry.declare_histogram(name, 0.0, hi, 8);
        // Second pass per histogram keeps declaration and fill adjacent;
        // the event slice is already in memory, so this is cheap.
        for rec in events {
            match (rec.ev, name) {
                (SimEvent::AppMapped { queue_wait: w, .. }, "queue_wait_ms") => {
                    registry.record(name, w * 1e3)
                }
                (SimEvent::FaultDetected { latency, .. }, "detection_latency_ms") => {
                    registry.record(name, latency * 1e3)
                }
                (SimEvent::TestCompleted { interval: iv, .. }, "test_interval_ms")
                    if iv >= 0.0 =>
                {
                    registry.record(name, iv * 1e3)
                }
                // lint:allow(event-match-exhaustiveness, reason = "subset contract: each named histogram samples exactly one event kind; the dispatch above selects it")
                _ => {}
            }
        }
    }
    out.push('\n');
    if cap.count() > 0 {
        let _ = writeln!(
            out,
            "power cap: min {:.2} W  mean {:.2} W  max {:.2} W over {} adjustments",
            cap.min().unwrap_or(0.0),
            cap.mean(),
            cap.max().unwrap_or(0.0),
            cap.count()
        );
    }
    if report.cores_suspected + report.cores_quarantined + report.cores_cleared > 0 {
        let n = report.tests_per_core.len() as u64;
        let _ = writeln!(out, "\ndegradation:");
        let _ = writeln!(
            out,
            "  healthy cores: {} of {} at end of run",
            report.healthy_cores_end, n
        );
        let _ = writeln!(
            out,
            "  suspicions {}  quarantines {} ({} false)  cleared {}  \
             confirmation retests {}",
            report.cores_suspected,
            report.cores_quarantined,
            report.false_quarantines,
            report.cores_cleared,
            report.confirmation_retests
        );
        let _ = writeln!(
            out,
            "  victim apps: {} aborted, {} restarted, {} migrated",
            report.apps_aborted, report.apps_restarted, report.apps_migrated
        );
        let _ = writeln!(
            out,
            "  corruption exposure: {:.3} core-seconds of work on fault-carrying cores",
            report.corruption_exposure
        );
        // The causal chains behind the first few quarantine verdicts —
        // rendered from anywhere in the log, since the head/tail window
        // above usually elides the mid-run response activity.
        let verdicts: Vec<&EventRecord> = events
            .iter()
            .filter(|rec| {
                matches!(
                    rec.ev,
                    SimEvent::CoreQuarantined { .. } | SimEvent::AppMigrated { .. }
                )
            })
            .take(EXPLAIN_CHAINS)
            .collect();
        if !verdicts.is_empty() {
            let _ = writeln!(out, "  first response chains:");
            for rec in verdicts {
                describe_record(&mut out, &graph, rec);
            }
        }
    }
    out.push('\n');
    out.push_str(&registry.summary());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_probe_id_has_a_builder() {
        for id in PROBE_IDS {
            assert!(probe_builder(id, Scale::Quick).is_some(), "missing probe {id}");
        }
        assert!(probe_builder("zz", Scale::Quick).is_none());
        assert!(explain("zz", Scale::Quick).is_none());
    }
}
