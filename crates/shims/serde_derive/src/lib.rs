//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the workspace never serializes at runtime, it only annotates types.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
