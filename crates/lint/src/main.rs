//! CLI driver for `manytest-lint`.
//!
//! ```sh
//! manytest-lint --workspace [--json] [--sarif FILE] [--root DIR]
//! manytest-lint --workspace --changed REF            # review scope
//! manytest-lint [--json] FILE...                     # lint single files
//! manytest-lint --rules                              # list rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use manytest_lint::cache::lint_workspace_cached;
use manytest_lint::diag::{render_human, render_json};
use manytest_lint::rules::{registry, META_RULES};
use manytest_lint::sarif::render_sarif;
use manytest_lint::source::SourceFile;
use manytest_lint::{lint_files, lint_workspace, lint_workspace_changed, LintReport};
use std::path::{Path, PathBuf};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let workspace = args.iter().any(|a| a == "--workspace");
    let list_rules = args.iter().any(|a| a == "--rules");
    let mut root_flag: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut changed_ref: Option<String> = None;
    let mut no_cache = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" | "--workspace" | "--rules" => {}
            "--no-cache" => no_cache = true,
            "--root" => match it.next() {
                Some(v) => root_flag = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--sarif" => match it.next() {
                Some(v) => sarif_path = Some(PathBuf::from(v)),
                None => return usage("--sarif needs a file path"),
            },
            "--changed" => match it.next() {
                Some(v) => changed_ref = Some(v.clone()),
                None => return usage("--changed needs a git ref"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return 0;
            }
            a if a.starts_with("--root=") => {
                root_flag = Some(PathBuf::from(&a["--root=".len()..]));
            }
            a if a.starts_with("--sarif=") => {
                sarif_path = Some(PathBuf::from(&a["--sarif=".len()..]));
            }
            a if a.starts_with("--changed=") => {
                changed_ref = Some(a["--changed=".len()..].to_string());
            }
            a if a.starts_with("--") => return usage(&format!("unknown flag {a}")),
            a => paths.push(PathBuf::from(a)),
        }
    }

    if list_rules {
        for rule in registry() {
            println!("{:<26} {}", rule.id(), rule.description());
        }
        for meta in META_RULES {
            println!("{meta:<26} (allow audit; reported by the engine itself)");
        }
        return 0;
    }

    let report: LintReport = if workspace || changed_ref.is_some() {
        let root = match root_flag.or_else(discover_root) {
            Some(r) => r,
            None => return usage("could not find a workspace root; pass --root DIR"),
        };
        let run = if let Some(git_ref) = &changed_ref {
            match changed_files(&root, git_ref) {
                Ok(changed) => lint_workspace_changed(&root, &changed),
                Err(e) => {
                    eprintln!("manytest-lint: --changed {git_ref}: {e}");
                    return 2;
                }
            }
        } else if no_cache {
            lint_workspace(&root)
        } else {
            lint_workspace_cached(&root).map(|(r, _)| r)
        };
        match run {
            Ok(r) => r,
            Err(e) => {
                eprintln!("manytest-lint: error reading workspace: {e}");
                return 2;
            }
        }
    } else if paths.is_empty() {
        return usage("pass --workspace or one or more .rs files");
    } else {
        let mut files = Vec::new();
        for p in &paths {
            match std::fs::read_to_string(p) {
                Ok(text) => {
                    files.push(SourceFile::from_source(p.to_string_lossy(), text));
                }
                Err(e) => {
                    eprintln!("manytest-lint: cannot read {}: {e}", p.display());
                    return 2;
                }
            }
        }
        lint_files(files)
    };

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, render_sarif(&report.findings)) {
            eprintln!("manytest-lint: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if json {
        print!("{}", render_json(&report.findings, report.files_scanned));
    } else {
        print!("{}", render_human(&report.findings, report.files_scanned));
    }
    if report.is_clean() {
        0
    } else {
        1
    }
}

/// The `.rs` files changed relative to `git_ref`, as workspace-relative
/// paths: committed changes (`git diff --name-only REF`) plus anything
/// dirty or untracked in the working tree.
fn changed_files(root: &Path, git_ref: &str) -> Result<Vec<String>, String> {
    let mut changed: Vec<String> = Vec::new();
    for args in [
        vec!["diff", "--name-only", git_ref],
        vec!["status", "--porcelain"],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&args)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            // Porcelain lines are `XY <path>`; diff lines are bare paths.
            let path = if args[0] == "status" {
                line.get(3..).unwrap_or("")
            } else {
                line
            };
            let path = path.trim();
            if path.ends_with(".rs") && !changed.iter().any(|p| p == path) {
                changed.push(path.to_string());
            }
        }
    }
    changed.sort();
    Ok(changed)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; falls back to the compile-time location of
/// this crate (two levels below the root).
fn discover_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if is_workspace_root(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baked = baked.canonicalize().ok()?;
    is_workspace_root(&baked).then_some(baked)
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

fn usage(msg: &str) -> i32 {
    eprintln!("manytest-lint: {msg}");
    eprint!("{HELP}");
    2
}

const HELP: &str = "\
usage: manytest-lint --workspace [--json] [--sarif FILE] [--root DIR]
       manytest-lint --workspace --changed REF
       manytest-lint [--json] FILE...
       manytest-lint --rules

  --workspace    lint every .rs file in the workspace plus the golden
                 JSONs and doc probe references
  --changed REF  review scope: analyze the full tree but only report
                 findings in .rs files changed vs the git ref (committed,
                 dirty or untracked)
  --json         machine-readable output to stdout (CI artifact)
  --sarif FILE   additionally write SARIF 2.1.0 to FILE (code scanning)
  --no-cache     skip the incremental cache (target/lint-cache.json)
  --root DIR     workspace root (default: walk up from the current dir)
  --rules        list registered rules and exit

exit codes: 0 clean, 1 findings, 2 usage/io error
";
