//! # manytest — power-aware online testing of manycore systems in the dark
//! silicon era
//!
//! A from-scratch Rust reproduction of the system evaluated in
//! *"Power-aware online testing of manycore systems in the dark silicon
//! era"* (DATE 2015): a NoC-based manycore platform whose runtime schedules
//! software-based self-test (SBST) routines onto idle cores using only the
//! power headroom left under the chip's TDP, paired with a test-aware
//! utilization-oriented runtime mapper.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. Depend on it for the whole system, or on the individual crates
//! ([`sim`], [`noc`], [`power`], [`aging`], [`workload`], [`map`],
//! [`sbst`], [`core`]) for a single substrate.
//!
//! # Quickstart
//!
//! ```
//! use manytest::prelude::*;
//!
//! // 16 nm node, 16×16 mesh, 80 W TDP, PID power budgeting, test-aware
//! // mapping, online testing on.
//! let report = SystemBuilder::new(TechNode::N16)
//!     .seed(2024)
//!     .arrival_rate(300.0)   // applications per second
//!     .sim_time_ms(100)
//!     .build()?
//!     .run();
//!
//! println!("{}", report.summary());
//! assert!(report.tests_completed > 0);
//! assert_eq!(report.cap_violations, 0);
//! # Ok::<(), manytest::core::BuildError>(())
//! ```
//!
//! # Reproducing the paper
//!
//! Every figure and table of the evaluation has a generator in the
//! `manytest-bench` crate: `cargo run -p manytest-bench --bin repro --release`
//! prints every series; `cargo bench` runs the criterion benches. See
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! DESIGN.md for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use manytest_aging as aging;
pub use manytest_core as core;
pub use manytest_map as map;
pub use manytest_noc as noc;
pub use manytest_power as power;
pub use manytest_sbst as sbst;
pub use manytest_sim as sim;
pub use manytest_workload as workload;

/// One-stop imports for typical use.
pub mod prelude {
    pub use manytest_aging::prelude::*;
    pub use manytest_core::prelude::*;
    pub use manytest_map::prelude::*;
    pub use manytest_noc::prelude::*;
    pub use manytest_power::prelude::*;
    pub use manytest_sbst::prelude::*;
    pub use manytest_sim::prelude::*;
    pub use manytest_workload::prelude::*;
}
