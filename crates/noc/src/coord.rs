//! Mesh coordinates and node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (tile) coordinate in a 2-D mesh: `x` is the column, `y` the row.
///
/// # Examples
///
/// ```
/// use manytest_noc::coord::Coord;
///
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 0);
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column index (0-based, grows east).
    pub x: u16,
    /// Row index (0-based, grows north).
    pub y: u16,
}

/// A dense node identifier: `id = y * width + x` for the owning mesh.
///
/// Dense ids let per-node state live in flat `Vec`s indexed by
/// [`NodeId::index`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (hop) distance to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Chebyshev distance to `other` (radius of the smallest covering
    /// square), used by the square-region first-node search.
    pub fn chebyshev(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) as u32).max(self.y.abs_diff(other.y) as u32)
    }
}

impl NodeId {
    /// The id as a `usize` index into per-node state vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_symmetry_and_identity() {
        let a = Coord::new(3, 7);
        let b = Coord::new(9, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 12);
    }

    #[test]
    fn chebyshev_is_max_axis() {
        let a = Coord::new(0, 0);
        assert_eq!(a.chebyshev(Coord::new(2, 5)), 5);
        assert_eq!(a.chebyshev(Coord::new(5, 2)), 5);
        assert_eq!(a.chebyshev(a), 0);
    }

    #[test]
    fn chebyshev_never_exceeds_manhattan() {
        for x in 0..8u16 {
            for y in 0..8u16 {
                let a = Coord::new(3, 3);
                let b = Coord::new(x, y);
                assert!(a.chebyshev(b) <= a.manhattan(b));
                assert!(a.manhattan(b) <= 2 * a.chebyshev(b));
            }
        }
    }

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Coord::new(1, 2)), "(1,2)");
    }
}
