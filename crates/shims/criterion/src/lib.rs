//! Offline mini-criterion.
//!
//! A dependency-free stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API the bench targets
//! use: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size`, `finish`), `Bencher::iter`, and
//! `Bencher::iter_batched`.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and prints min / mean /
//! max wall-clock per iteration. There is no statistical analysis, HTML
//! report, or comparison to saved baselines — the numbers land on stdout
//! and in `repro`'s own `BENCH_repro.json` instead.
//!
//! Set `CRITERION_SAMPLE_SIZE` to override every group's sample count
//! (useful to smoke-test benches in CI with `CRITERION_SAMPLE_SIZE=1`).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle, one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        if std::env::var("CRITERION_SAMPLE_SIZE").is_err() {
            self.sample_size = n;
        }
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost. The shim times the routine
/// alone in every mode, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: fewer per batch in real criterion.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        std::hint::black_box(f());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up (not recorded).
    let mut warmup = Bencher::default();
    f(&mut warmup);
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{name:<40} no samples recorded");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // one warm-up + sample_size timed runs
        assert!(calls >= 2);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut consumed = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 7u32,
                |x| {
                    consumed += x;
                    consumed
                },
                BatchSize::PerIteration,
            )
        });
        group.finish();
        assert!(consumed >= 7 * 4); // warm-up + 3 samples
    }
}
