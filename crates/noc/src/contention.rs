//! Link-contention (queueing delay) model.
//!
//! The base latency model is zero-load: hops cost a fixed pipeline delay.
//! Under congestion a wormhole link behaves like a queueing server — as
//! offered load ρ approaches the link bandwidth, waiting time blows up
//! like `1/(1−ρ)`. [`LinkLoads`] snapshots per-link utilisation from a
//! [`TrafficMatrix`] window; [`ContentionModel`] turns a route's worst
//! link load into a latency multiplier. The full simulator applies the
//! multiplier to message latencies when congestion modelling is enabled.

use crate::coord::Coord;
use crate::routing::{xy_route, Direction};
use crate::topology::Mesh2D;
use crate::traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Per-link offered-load snapshot over a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkLoads {
    mesh: Mesh2D,
    utilization: Vec<f64>, // node × 4 directions, in [0, 1]
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::West => 0,
        Direction::East => 1,
        Direction::South => 2,
        Direction::North => 3,
    }
}

impl LinkLoads {
    /// Computes the load of every link from the bits `traffic` carried
    /// during a window of `window_secs` seconds on links of `bandwidth`
    /// bits/second. Loads are clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `window_secs` and `bandwidth` are strictly positive.
    // lint:effect(alloc+panic, reason = "per-epoch constructor by design: builds the link-load matrix from the epoch's traffic; asserts are config validation")
    pub fn from_traffic(traffic: &TrafficMatrix, window_secs: f64, bandwidth: f64) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let mesh = traffic.mesh();
        let capacity = bandwidth * window_secs;
        let mut utilization = vec![0.0; mesh.node_count() * 4];
        for c in mesh.coords() {
            for dir in [
                Direction::West,
                Direction::East,
                Direction::South,
                Direction::North,
            ] {
                let i = mesh.node_id(c).index() * 4 + dir_index(dir);
                utilization[i] = (traffic.link_bits(c, dir) / capacity).clamp(0.0, 1.0);
            }
        }
        LinkLoads { mesh, utilization }
    }

    /// The mesh these loads belong to.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Offered load of the link leaving `from` in direction `dir`.
    pub fn utilization(&self, from: Coord, dir: Direction) -> f64 {
        self.utilization[self.mesh.node_id(from).index() * 4 + dir_index(dir)]
    }

    /// The most loaded link along the XY route `src → dst` (0 for a
    /// self-message).
    pub fn worst_on_route(&self, src: Coord, dst: Coord) -> f64 {
        xy_route(src, dst)
            .map(|hop| self.utilization(hop.from, hop.dir))
            .fold(0.0, f64::max)
    }

    /// Mean load over all links.
    pub fn mean(&self) -> f64 {
        self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
    }

    /// The single most loaded link on the chip.
    pub fn peak(&self) -> f64 {
        self.utilization.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Maps link load to a latency multiplier, `1/(1−ρ)` with a saturation
/// clamp (a real router backpressures rather than diverging).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Load at which the multiplier saturates (ρ is clamped here).
    pub saturation: f64,
}

impl ContentionModel {
    /// Default model: saturate at 95 % load (20× zero-load latency).
    pub fn new() -> Self {
        ContentionModel { saturation: 0.95 }
    }

    /// Latency multiplier for a link at load `utilization`.
    ///
    /// # Examples
    ///
    /// ```
    /// use manytest_noc::contention::ContentionModel;
    ///
    /// let m = ContentionModel::new();
    /// assert_eq!(m.delay_factor(0.0), 1.0);
    /// assert!((m.delay_factor(0.5) - 2.0).abs() < 1e-12);
    /// assert!(m.delay_factor(0.99) <= m.delay_factor(1.0));
    /// ```
    pub fn delay_factor(&self, utilization: f64) -> f64 {
        let rho = utilization.clamp(0.0, self.saturation);
        1.0 / (1.0 - rho)
    }

    /// Latency multiplier for the route `src → dst` given the current
    /// link loads (dominated by the worst link, as in wormhole routing).
    pub fn route_factor(&self, loads: &LinkLoads, src: Coord, dst: Coord) -> f64 {
        self.delay_factor(loads.worst_on_route(src, dst))
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_matrix() -> TrafficMatrix {
        let mesh = Mesh2D::new(4, 4);
        let mut tm = TrafficMatrix::new(mesh);
        // Saturate the (0,0) → (1,0) link for a 1 ms window at 128 Gb/s:
        // capacity = 128e9 × 1e-3 = 128e6 bits; charge half of that.
        tm.charge_route(Coord::new(0, 0), Coord::new(1, 0), 64.0e6);
        tm
    }

    #[test]
    fn loads_reflect_charged_traffic() {
        let tm = loaded_matrix();
        let loads = LinkLoads::from_traffic(&tm, 1e-3, 128.0e9);
        assert!((loads.utilization(Coord::new(0, 0), Direction::East) - 0.5).abs() < 1e-9);
        assert_eq!(loads.utilization(Coord::new(2, 2), Direction::East), 0.0);
        assert!((loads.peak() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn loads_are_clamped_to_one() {
        let mesh = Mesh2D::new(2, 1);
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(Coord::new(0, 0), Coord::new(1, 0), 1e12);
        let loads = LinkLoads::from_traffic(&tm, 1e-3, 128.0e9);
        assert_eq!(loads.utilization(Coord::new(0, 0), Direction::East), 1.0);
    }

    #[test]
    fn worst_on_route_finds_the_bottleneck() {
        let tm = loaded_matrix();
        let loads = LinkLoads::from_traffic(&tm, 1e-3, 128.0e9);
        // Route crossing the hot link sees its load; a disjoint route sees 0.
        assert!((loads.worst_on_route(Coord::new(0, 0), Coord::new(3, 0)) - 0.5).abs() < 1e-9);
        assert_eq!(loads.worst_on_route(Coord::new(0, 3), Coord::new(3, 3)), 0.0);
        assert_eq!(loads.worst_on_route(Coord::new(1, 1), Coord::new(1, 1)), 0.0);
    }

    #[test]
    fn delay_factor_properties() {
        let m = ContentionModel::new();
        assert_eq!(m.delay_factor(0.0), 1.0);
        assert!((m.delay_factor(0.5) - 2.0).abs() < 1e-12);
        assert!((m.delay_factor(0.9) - 10.0).abs() < 1e-9);
        // Saturation: clamped at ρ = 0.95 → 20×.
        assert!((m.delay_factor(2.0) - 20.0).abs() < 1e-9);
        // Monotone.
        let factors: Vec<f64> = (0..=10).map(|i| m.delay_factor(i as f64 / 10.0)).collect();
        assert!(factors.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn route_factor_uses_worst_link() {
        let tm = loaded_matrix();
        let loads = LinkLoads::from_traffic(&tm, 1e-3, 128.0e9);
        let m = ContentionModel::new();
        let hot = m.route_factor(&loads, Coord::new(0, 0), Coord::new(2, 0));
        let cold = m.route_factor(&loads, Coord::new(0, 3), Coord::new(2, 3));
        assert!((hot - 2.0).abs() < 1e-9);
        assert_eq!(cold, 1.0);
    }

    #[test]
    fn mean_load_is_small_for_one_hot_link() {
        let tm = loaded_matrix();
        let loads = LinkLoads::from_traffic(&tm, 1e-3, 128.0e9);
        assert!(loads.mean() < 0.01);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let tm = loaded_matrix();
        LinkLoads::from_traffic(&tm, 0.0, 1e9);
    }
}
