//! Deterministic parallel batch runner for the evaluation suite.
//!
//! Every experiment in this crate boils down to a list of *independent*
//! `System::run()` simulations (nodes × seeds × on/off configurations)
//! whose results are then folded into a table. [`Batch`] executes such a
//! list across a pool of scoped worker threads and returns the results
//! **in submission order, keyed by index** — so the fold, and therefore
//! every printed table, is bit-identical to the old serial loop no matter
//! how many workers run or in which order they finish. Determinism falls
//! out of keying, not locking: each run seeds its own `SystemBuilder`, so
//! no cross-run state exists to race on.
//!
//! ```
//! use manytest_bench::runner::Batch;
//!
//! let mut batch = Batch::new();
//! for i in 0..8u64 {
//!     batch.push(format!("square/{i}"), move || i * i);
//! }
//! assert_eq!(batch.run(4), vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use manytest_sim::enter_job_scope;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Jobs executed by all batches since process start (used by `repro` to
/// attribute serial-equivalent run counts to each experiment).
static TOTAL_JOBS: AtomicU64 = AtomicU64::new(0);

/// Monotone id generator for batch jobs; feeds the per-job RNG audit
/// scope so a `SimRng` handle leaking across two jobs is caught in debug
/// builds (see `manytest_sim::enter_job_scope`).
static JOB_IDS: AtomicU64 = AtomicU64::new(1);

/// Total number of batch jobs executed so far in this process.
pub fn jobs_executed() -> u64 {
    TOTAL_JOBS.load(Ordering::Relaxed)
}

/// Cumulative per-job accounting across every batch this process ran.
///
/// `repro` snapshots this before/after each experiment and diffs, turning
/// process-global counters into per-experiment metrics for the bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Summed per-job wall-clock seconds (serial-equivalent busy time).
    pub busy_seconds: f64,
    /// Summed queue depth observed as each job was claimed (jobs still
    /// waiting behind it); divide by `jobs` for the mean depth.
    pub queue_depth_sum: f64,
}

static JOB_STATS: Mutex<JobStats> = Mutex::new(JobStats {
    jobs: 0,
    busy_seconds: 0.0,
    queue_depth_sum: 0.0,
});

/// Snapshot of the cumulative [`JobStats`] for this process.
pub fn job_stats() -> JobStats {
    *JOB_STATS.lock().expect("job stats lock")
}

fn record_job(busy_seconds: f64, queue_depth: f64) {
    let mut stats = JOB_STATS.lock().expect("job stats lock");
    stats.jobs += 1;
    stats.busy_seconds += busy_seconds;
    stats.queue_depth_sum += queue_depth;
}

/// The worker count used when a batch is run with `jobs = 0`: the
/// `MANYTEST_JOBS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("MANYTEST_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Wall-clock accounting for one executed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Number of jobs the batch contained (serial-equivalent runs).
    pub runs: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock seconds from first launch to last completion.
    pub wall_seconds: f64,
    /// Summed per-job wall-clock seconds; `busy_seconds / wall_seconds`
    /// approximates the speedup actually achieved.
    pub busy_seconds: f64,
    /// The slowest single job, seconds (the critical path floor).
    pub max_job_seconds: f64,
    /// Mean number of jobs still queued as each job started (0 for the
    /// last job; deterministic, derived from submission index).
    pub mean_queue_depth: f64,
}

struct Job<'scope, R> {
    label: String,
    run: Box<dyn FnOnce() -> R + Send + 'scope>,
}

/// The result of one batch job under panic isolation.
///
/// Returned by [`Batch::run_outcomes`]: a panicking job becomes a
/// `Failed` entry in its submission slot instead of tearing down the
/// batch, so a sweep's remaining jobs still complete (and stay
/// deterministic — the failure lands at the same index on any worker
/// count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<R> {
    /// The job returned normally.
    Ok(R),
    /// The job panicked; the rest of the batch kept going.
    Failed {
        /// The label the job was pushed with.
        label: String,
        /// The panic payload rendered to text (non-string payloads
        /// render as a placeholder).
        payload: String,
    },
}

impl<R> JobOutcome<R> {
    /// The result, if the job completed.
    pub fn ok(self) -> Option<R> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Whether the job panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// Renders the `Failed` entries of an outcome slice as a fixed-width
/// failure table (empty when every job succeeded). Derived only from the
/// submission-ordered outcomes, so the text is byte-identical across
/// worker counts.
pub fn failure_table<R>(outcomes: &[JobOutcome<R>]) -> String {
    use std::fmt::Write as _;
    let failed: Vec<(&str, &str)> = outcomes
        .iter()
        .filter_map(|o| match o {
            JobOutcome::Failed { label, payload } => Some((label.as_str(), payload.as_str())),
            JobOutcome::Ok(_) => None,
        })
        .collect();
    if failed.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "## failed jobs ({} of {})", failed.len(), outcomes.len());
    let width = failed.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, payload) in failed {
        let _ = writeln!(
            out,
            "{label:<width$}  {}",
            payload.lines().next().unwrap_or("<empty panic payload>")
        );
    }
    out
}

/// Renders a panic payload the way the default hook would.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// An ordered list of labelled, independent jobs.
///
/// `push` order defines result order; [`Batch::run`] executes the jobs on
/// up to `jobs` scoped threads and returns one result per job, index `i`
/// of the output corresponding to the `i`-th `push`. A panicking job does
/// not poison the others — every job still runs. [`Batch::run_outcomes`]
/// surfaces each panic as a [`JobOutcome::Failed`] in its slot;
/// [`Batch::run`]/[`Batch::run_timed`] instead re-raise the first panic
/// (in submission order) with the job's label logged to stderr.
pub struct Batch<'scope, R> {
    jobs: Vec<Job<'scope, R>>,
}

impl<R> Default for Batch<'_, R> {
    fn default() -> Self {
        Batch { jobs: Vec::new() }
    }
}

impl<'scope, R: Send> Batch<'scope, R> {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job. `label` names the job in panic diagnostics.
    pub fn push(&mut self, label: impl Into<String>, run: impl FnOnce() -> R + Send + 'scope) {
        self.jobs.push(Job {
            label: label.into(),
            run: Box::new(run),
        });
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Executes all jobs on up to `jobs` worker threads (`0` = the
    /// [`default_jobs`] parallelism) and returns the results in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by submission order) panic of any job.
    pub fn run(self, jobs: usize) -> Vec<R> {
        self.run_timed(jobs).0
    }

    /// Like [`Batch::run`], additionally reporting wall-clock stats.
    pub fn run_timed(self, jobs: usize) -> (Vec<R>, BatchStats) {
        let (outcomes, stats) = self.execute(jobs);
        let mut out = Vec::with_capacity(outcomes.len());
        let mut first_panic = None;
        for outcome in outcomes {
            match outcome {
                Ok(r) => out.push(r),
                Err((label, payload)) => {
                    eprintln!("batch job '{label}' panicked");
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        (out, stats)
    }

    /// Like [`Batch::run_timed`], but panics are *isolated*: each job's
    /// slot holds either its result or a [`JobOutcome::Failed`] carrying
    /// the label and stringified panic payload. Nothing is re-raised —
    /// the caller decides how to render and whether to fail the process.
    pub fn run_outcomes(self, jobs: usize) -> (Vec<JobOutcome<R>>, BatchStats) {
        let (outcomes, stats) = self.execute(jobs);
        let outcomes = outcomes
            .into_iter()
            .map(|outcome| match outcome {
                Ok(r) => JobOutcome::Ok(r),
                Err((label, payload)) => JobOutcome::Failed {
                    label,
                    payload: panic_message(payload.as_ref()),
                },
            })
            .collect();
        (outcomes, stats)
    }

    /// Shared engine: runs every job under `catch_unwind`, keyed by
    /// submission index.
    #[allow(clippy::type_complexity)]
    fn execute(
        self,
        jobs: usize,
    ) -> (
        Vec<Result<R, (String, Box<dyn Any + Send>)>>,
        BatchStats,
    ) {
        let n = self.jobs.len();
        TOTAL_JOBS.fetch_add(n as u64, Ordering::Relaxed);
        let requested = if jobs == 0 { default_jobs() } else { jobs };
        let workers = requested.min(n.max(1));
        let start = Instant::now();
        // Per-batch accounting: (busy sum, slowest job, queue-depth sum).
        let accum = Mutex::new((0.0f64, 0.0f64, 0.0f64));
        // Runs one job inside its own RNG-audit scope with timing. The
        // queue depth is derived from the submission index (jobs still
        // waiting behind this one), so it is identical on every schedule.
        let run_one = |i: usize, job: Job<'scope, R>| {
            let depth = (n - 1 - i) as f64;
            let _scope = enter_job_scope(JOB_IDS.fetch_add(1, Ordering::Relaxed));
            // Progress registration: the ledger funnel reads the label
            // and deposits the config hash through this slot, and the
            // `--progress` heartbeat renderer watches its counters.
            let progress = crate::progress::job_started(&job.label);
            let t0 = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(job.run)).map_err(|p| {
                // Record the failure while the job's thread-local slot
                // (and its config hash) is still reachable.
                crate::ledger::note_failed_job(&job.label, &panic_message(p.as_ref()));
                (job.label, p)
            });
            drop(progress);
            let secs = t0.elapsed().as_secs_f64();
            record_job(secs, depth);
            let mut a = accum.lock().expect("batch stats lock");
            a.0 += secs;
            a.1 = a.1.max(secs);
            a.2 += depth;
            drop(a);
            outcome
        };
        let outcomes = if workers <= 1 || n <= 1 {
            // Serial path: run inline on the caller's thread. This is the
            // reference behaviour the parallel path must reproduce.
            self.jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| run_one(i, job))
                .collect::<Vec<_>>()
        } else {
            // Parallel path: a shared cursor hands out job indices; each
            // result lands in its submission slot, so completion order is
            // irrelevant to the output.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Job<'scope, R>>>> =
                self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let results: Vec<Mutex<Option<_>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = slots[i]
                            .lock()
                            .expect("job slot lock")
                            .take()
                            .expect("each index is claimed exactly once");
                        *results[i].lock().expect("result slot lock") = Some(run_one(i, job));
                    });
                }
            });
            results
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot lock")
                        .expect("every job ran to completion")
                })
                .collect()
        };
        let (busy_seconds, max_job_seconds, depth_sum) =
            accum.into_inner().expect("batch stats lock");
        let stats = BatchStats {
            runs: n,
            workers,
            wall_seconds: start.elapsed().as_secs_f64(),
            busy_seconds,
            max_job_seconds,
            mean_queue_depth: if n == 0 { 0.0 } else { depth_sum / n as f64 },
        };
        (outcomes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn counter_tracks_jobs() {
        let before = jobs_executed();
        let mut batch = Batch::new();
        for i in 0..5u64 {
            batch.push(format!("j{i}"), move || i);
        }
        batch.run(2);
        assert!(jobs_executed() >= before + 5);
    }

    #[test]
    fn batch_stats_account_for_every_job() {
        let before = job_stats();
        let mut batch = Batch::new();
        for i in 0..6u64 {
            batch.push(format!("j{i}"), move || i * i);
        }
        let (results, stats) = batch.run_timed(3);
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25]);
        assert_eq!(stats.runs, 6);
        assert_eq!(stats.workers, 3);
        assert!(stats.busy_seconds >= 0.0);
        assert!(stats.max_job_seconds <= stats.busy_seconds + 1e-12);
        // Depths are 5,4,3,2,1,0 regardless of schedule → mean 2.5.
        assert!((stats.mean_queue_depth - 2.5).abs() < 1e-12);
        let after = job_stats();
        assert_eq!(after.jobs, before.jobs + 6);
        assert!(after.busy_seconds >= before.busy_seconds);
        assert!((after.queue_depth_sum - before.queue_depth_sum - 15.0).abs() < 1e-9);
    }

    /// A job that panics mid-batch becomes a `Failed` slot; every other
    /// job still runs and lands at its submission index.
    #[test]
    fn panicking_job_is_isolated_and_ordering_is_preserved() {
        let mut batch = Batch::new();
        for i in 0..6u64 {
            batch.push(format!("j{i}"), move || {
                assert!(i != 2, "job 2 exploded");
                i * 10
            });
        }
        let (outcomes, stats) = batch.run_outcomes(1);
        assert_eq!(stats.runs, 6);
        assert_eq!(outcomes.len(), 6);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                let JobOutcome::Failed { label, payload } = outcome else {
                    panic!("job 2 should have failed, got {outcome:?}");
                };
                assert_eq!(label, "j2");
                assert!(payload.contains("job 2 exploded"), "got: {payload}");
            } else {
                assert_eq!(*outcome, JobOutcome::Ok(i as u64 * 10));
            }
        }
    }

    /// The failure table is schedule-independent: one worker and four
    /// workers produce byte-identical outcome vectors.
    #[test]
    fn failure_outcomes_are_identical_across_worker_counts() {
        let build = || {
            let mut batch = Batch::new();
            for i in 0..8u64 {
                batch.push(format!("sweep/{i}"), move || {
                    if i % 3 == 1 {
                        panic!("deterministic failure in job {i}");
                    }
                    i + 100
                });
            }
            batch
        };
        let (serial, _) = build().run_outcomes(1);
        let (parallel, _) = build().run_outcomes(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.iter().filter(|o| o.is_failed()).count(), 3);
    }

    /// `run` keeps the historical contract: the first panic in submission
    /// order is re-raised even if a later job panicked first in time.
    #[test]
    fn run_reraises_the_first_panic_in_submission_order() {
        let mut batch = Batch::new();
        batch.push("ok", || 1u64);
        batch.push("boom-a", || panic!("first by submission"));
        batch.push("boom-b", || panic!("second by submission"));
        let err = catch_unwind(AssertUnwindSafe(|| batch.run(2)))
            .expect_err("batch must re-raise");
        assert_eq!(panic_message(err.as_ref()), "first by submission");
    }

    /// Every batch job gets its own audit scope: a `SimRng` handle that
    /// was first drawn inside one job must not be drawn in another.
    #[test]
    #[cfg(debug_assertions)]
    fn shared_rng_across_jobs_is_caught() {
        use manytest_sim::SimRng;
        use std::sync::Arc;

        let shared = Arc::new(Mutex::new(SimRng::seed_from(7)));
        let mut batch = Batch::new();
        for i in 0..2 {
            let rng = Arc::clone(&shared);
            batch.push(format!("leak{i}"), move || {
                rng.lock().expect("shared rng lock").next_u64()
            });
        }
        // Serial execution so both jobs run on one thread — the audit
        // must still fire, because scopes, not threads, define jobs.
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| batch.run(1)))
            .expect_err("second draw must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("crossed a batch job boundary"),
            "unexpected panic message: {msg}"
        );
    }
}
