//! Criterion bench regenerating E6 (criticality adaptation) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e6_criticality_adaptation, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_criticality_adaptation");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e6_criticality_adaptation(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
