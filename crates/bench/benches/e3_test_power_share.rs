//! Criterion bench regenerating E3 (test share of consumed power vs load) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e3_test_power_share, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_test_power_share");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e3_test_power_share(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
