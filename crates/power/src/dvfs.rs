//! Discrete voltage/frequency ladders (DVFS), including near-threshold
//! operating points.
//!
//! The ICCD'14 power manager this paper builds on applies "fine-grained DVFS
//! including near-threshold operation". We derive the frequency achievable
//! at a given voltage from the **alpha-power law** delay model,
//! `f(V) ∝ (V − V_th)^α / V` with `α ≈ 1.3`, and quantise the voltage range
//! `[v_min, v_nominal]` into a ladder of discrete levels.

use crate::tech::TechNode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a level in a [`VfLadder`] (0 = lowest = near-threshold).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VfLevel(pub u8);

impl VfLevel {
    /// Telemetry index meaning "no operating point: the core is
    /// power-gated". Keeps DVFS-transition events one-dimensional —
    /// a transition is `from: i16, to: i16` where either end may be off.
    pub const GATED: i16 = -1;

    /// This level as a telemetry index (always non-negative; compare
    /// with [`VfLevel::GATED`]).
    pub fn telemetry_index(self) -> i16 {
        i16::from(self.0)
    }
}

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage, volts.
    pub voltage: f64,
    /// Clock frequency, hertz.
    pub frequency: f64,
    /// Position of this point in its ladder.
    pub level: VfLevel,
}

/// A discrete, monotone ladder of operating points for one technology node.
///
/// # Examples
///
/// ```
/// use manytest_power::dvfs::VfLadder;
/// use manytest_power::tech::TechNode;
///
/// let ladder = VfLadder::for_node(TechNode::N16, 5);
/// assert_eq!(ladder.len(), 5);
/// assert!(ladder.min().frequency < ladder.max().frequency);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfLadder {
    points: Vec<OperatingPoint>,
}

/// Exponent of the alpha-power-law delay model.
const ALPHA: f64 = 1.3;

fn alpha_power_speed(v: f64, v_th: f64) -> f64 {
    if v <= v_th {
        0.0
    } else {
        (v - v_th).powf(ALPHA) / v
    }
}

impl VfLadder {
    /// Builds a ladder of `levels` points for `node`, spanning
    /// `[v_min, v_nominal]` with alpha-power-law frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn for_node(node: TechNode, levels: usize) -> Self {
        assert!(levels >= 2, "a ladder needs at least two levels");
        let p = node.params();
        let speed_nom = alpha_power_speed(p.v_nominal, p.v_threshold);
        let points = (0..levels)
            .map(|i| {
                let t = i as f64 / (levels - 1) as f64;
                let voltage = p.v_min + t * (p.v_nominal - p.v_min);
                let frequency = p.f_max * alpha_power_speed(voltage, p.v_threshold) / speed_nom;
                OperatingPoint {
                    voltage,
                    frequency,
                    level: VfLevel(i as u8),
                }
            })
            .collect();
        VfLadder { points }
    }

    /// Builds a ladder from explicit `(voltage, frequency)` pairs, lowest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or the points are not
    /// strictly increasing in both voltage and frequency.
    pub fn from_points(pairs: &[(f64, f64)]) -> Self {
        assert!(pairs.len() >= 2, "a ladder needs at least two levels");
        assert!(
            pairs
                .windows(2)
                .all(|w| w[1].0 > w[0].0 && w[1].1 > w[0].1),
            "ladder points must be strictly increasing"
        );
        let points = pairs
            .iter()
            .enumerate()
            .map(|(i, &(voltage, frequency))| OperatingPoint {
                voltage,
                frequency,
                level: VfLevel(i as u8),
            })
            .collect();
        VfLadder { points }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A ladder is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operating point at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn point(&self, level: VfLevel) -> OperatingPoint {
        self.points[level.0 as usize]
    }

    /// The lowest (near-threshold) point.
    pub fn min(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The highest (nominal) point.
    pub fn max(&self) -> OperatingPoint {
        // lint:allow(hot-path-purity, reason = "ladder is validated non-empty at construction")
        *self.points.last().expect("ladder is never empty")
    }

    /// All points, lowest first.
    pub fn iter(&self) -> impl Iterator<Item = OperatingPoint> + '_ {
        self.points.iter().copied()
    }

    /// The next level down, if any.
    pub fn step_down(&self, level: VfLevel) -> Option<VfLevel> {
        level.0.checked_sub(1).map(VfLevel)
    }

    /// The next level up, if any.
    pub fn step_up(&self, level: VfLevel) -> Option<VfLevel> {
        let up = level.0 + 1;
        ((up as usize) < self.points.len()).then_some(VfLevel(up))
    }

    /// The highest level whose point's dynamic+static power estimate (per
    /// the closure) does not exceed `cap`, if any.
    pub fn highest_under<P>(&self, cap: f64, power_of: P) -> Option<OperatingPoint>
    where
        P: Fn(OperatingPoint) -> f64,
    {
        self.points
            .iter()
            .rev()
            .copied()
            .find(|&op| power_of(op) <= cap)
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L{} ({:.2} V, {:.0} MHz)",
            self.level.0,
            self.voltage,
            self.frequency / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_for_all_nodes() {
        for node in TechNode::ALL {
            let ladder = VfLadder::for_node(node, 5);
            let pts: Vec<OperatingPoint> = ladder.iter().collect();
            assert!(pts.windows(2).all(|w| w[1].voltage > w[0].voltage));
            assert!(pts.windows(2).all(|w| w[1].frequency > w[0].frequency));
        }
    }

    #[test]
    fn top_level_is_nominal() {
        for node in TechNode::ALL {
            let p = node.params();
            let ladder = VfLadder::for_node(node, 4);
            let top = ladder.max();
            assert!((top.voltage - p.v_nominal).abs() < 1e-12);
            assert!((top.frequency - p.f_max).abs() < 1.0);
        }
    }

    #[test]
    fn bottom_level_is_near_threshold() {
        let node = TechNode::N16;
        let p = node.params();
        let ladder = VfLadder::for_node(node, 5);
        let bottom = ladder.min();
        assert!((bottom.voltage - p.v_min).abs() < 1e-12);
        assert!(bottom.frequency > 0.0);
        assert!(bottom.frequency < 0.5 * p.f_max, "near-threshold is slow");
    }

    #[test]
    fn levels_are_indexed_in_order() {
        let ladder = VfLadder::for_node(TechNode::N22, 6);
        for (i, op) in ladder.iter().enumerate() {
            assert_eq!(op.level, VfLevel(i as u8));
            assert_eq!(ladder.point(VfLevel(i as u8)), op);
        }
    }

    #[test]
    fn step_up_and_down_are_bounded() {
        let ladder = VfLadder::for_node(TechNode::N16, 3);
        assert_eq!(ladder.step_down(VfLevel(0)), None);
        assert_eq!(ladder.step_down(VfLevel(2)), Some(VfLevel(1)));
        assert_eq!(ladder.step_up(VfLevel(2)), None);
        assert_eq!(ladder.step_up(VfLevel(0)), Some(VfLevel(1)));
    }

    #[test]
    fn highest_under_selects_correct_level() {
        let ladder = VfLadder::for_node(TechNode::N16, 5);
        // Power proxy: V² f.
        let power = |op: OperatingPoint| op.voltage * op.voltage * op.frequency;
        let p_mid = power(ladder.point(VfLevel(2)));
        let chosen = ladder.highest_under(p_mid, power).unwrap();
        assert_eq!(chosen.level, VfLevel(2));
        assert!(ladder.highest_under(0.0, power).is_none());
        assert_eq!(
            ladder.highest_under(f64::INFINITY, power).unwrap().level,
            VfLevel(4)
        );
    }

    #[test]
    fn from_points_validates_monotonicity() {
        let ladder = VfLadder::from_points(&[(0.6, 0.5e9), (0.8, 1.0e9), (1.0, 2.0e9)]);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder.max().frequency, 2.0e9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_points_rejects_non_monotone() {
        VfLadder::from_points(&[(0.8, 1.0e9), (0.6, 2.0e9)]);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn tiny_ladder_panics() {
        VfLadder::for_node(TechNode::N16, 1);
    }

    #[test]
    fn display_is_informative() {
        let ladder = VfLadder::for_node(TechNode::N16, 2);
        let s = ladder.max().to_string();
        assert!(s.contains("V"));
        assert!(s.contains("MHz"));
    }

    #[test]
    fn alpha_power_speed_is_zero_below_threshold() {
        assert_eq!(alpha_power_speed(0.2, 0.3), 0.0);
        assert!(alpha_power_speed(0.5, 0.3) > 0.0);
    }
}
