//! Perfetto/Chrome-trace export of a probe's decision telemetry.
//!
//! `repro trace <id> [--out DIR]` renders the probe's event stream as a
//! Chrome trace-event JSON array (the format Perfetto's UI and
//! `chrome://tracing` both load): one thread track per core, one per
//! control-loop phase, SBST sessions as duration slices, everything else
//! as instants, and a flow arrow along every cause link so the
//! detect→respond chains read as connected arrows instead of scattered
//! dots.
//!
//! The export is derived *purely* from the captured [`EventRecord`]
//! stream — no wall-clock, no worker-count-dependent state — so the file
//! is byte-identical across `--jobs` values and reruns (CI diffs it).
//!
//! Schema (checked by `manytest-lint`'s golden-schema rule):
//! * every entry has `name`, `ph`, `ts`, `pid`, `tid`;
//! * `ph` is one of `M` (metadata), `X` (duration, with `dur`), `i`
//!   (instant, with `s`), `s`/`f` (flow start/finish, with `id`);
//! * timestamps are microseconds with fixed 3-decimal formatting;
//! * flow ids equal the *effect* record's [`EventId`], which is unique
//!   per run, so arrow count == resolvable cause-link count.

use crate::events::run_probe;
use crate::Scale;
use manytest_core::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The synthetic process id every track lives under.
const PID: u32 = 1;

/// Thread-track ids: control-loop phase tracks sit below 100, core
/// tracks at `CORE_TID_BASE + core`.
const TID_PHASE_PID: u32 = 1;
const TID_PHASE_MAP: u32 = 2;
const TID_PHASE_SCHEDULE: u32 = 3;
const TID_PHASE_EVENTS: u32 = 4;
/// First core track id.
pub const CORE_TID_BASE: u32 = 100;

/// The thread track a record renders on.
fn track_of(ev: &SimEvent) -> u32 {
    match *ev {
        SimEvent::CapAdjusted { .. } => TID_PHASE_PID,
        SimEvent::AppArrived { .. } | SimEvent::AppMapped { .. } | SimEvent::AppRejected { .. } => {
            TID_PHASE_MAP
        }
        SimEvent::TestDeniedPower { .. } => TID_PHASE_SCHEDULE,
        SimEvent::AppCompleted { .. } | SimEvent::AppCheckpointed { .. } => TID_PHASE_EVENTS,
        SimEvent::TestLaunched { core, .. }
        | SimEvent::TestAborted { core, .. }
        | SimEvent::TestCompleted { core, .. }
        | SimEvent::DvfsTransition { core, .. }
        | SimEvent::FaultActivated { core }
        | SimEvent::FaultDetected { core, .. }
        | SimEvent::CoreSuspected { core, .. }
        | SimEvent::CoreQuarantined { core, .. }
        | SimEvent::CoreProbeLaunched { core, .. }
        | SimEvent::CoreReadmitted { core, .. }
        | SimEvent::CoreRequarantined { core, .. }
        | SimEvent::CoreCleared { core, .. }
        | SimEvent::AppAborted { core, .. }
        | SimEvent::AppRestarted { core, .. }
        | SimEvent::AppMigrated { core, .. } => CORE_TID_BASE + core,
    }
}

/// Human label for a track id (thread_name metadata).
fn track_name(tid: u32) -> String {
    match tid {
        TID_PHASE_PID => "phase: pid".to_owned(),
        TID_PHASE_MAP => "phase: map".to_owned(),
        TID_PHASE_SCHEDULE => "phase: schedule".to_owned(),
        TID_PHASE_EVENTS => "phase: events".to_owned(),
        t => format!("core {}", t - CORE_TID_BASE),
    }
}

/// Deterministic microsecond timestamp (fixed 3-decimal formatting).
fn ts_us(t: f64) -> String {
    format!("{:.3}", t * 1e6)
}

/// Renders the captured event stream as a Chrome trace-event JSON array.
///
/// Pure function of the record slice: byte-identical for byte-identical
/// logs, regardless of worker count.
pub fn trace_json(id: &str, report: &Report) -> String {
    let records = report.events.events();
    let graph = ProvenanceGraph::build(records);
    // SBST sessions become duration slices: map each TestLaunched id to
    // the end of its session via the Session cause link on the
    // completion/abort record. Sessions on one core never overlap, so
    // the slices nest trivially.
    let mut session_end: std::collections::BTreeMap<u64, (f64, &'static str)> =
        std::collections::BTreeMap::new();
    for rec in records {
        if let Some(link) = rec.cause {
            if link.kind == CauseKind::Session {
                let outcome = match rec.ev {
                    SimEvent::TestCompleted { .. } => "completed",
                    SimEvent::TestAborted { .. } => "aborted",
                    // lint:allow(event-match-exhaustiveness, reason = "subset contract: session spans end only at the two test-terminal events; others cannot close a session")
                    _ => continue,
                };
                session_end.insert(link.id.0, (rec.t, outcome));
            }
        }
    }
    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };
    // Metadata: process name plus one thread_name per used track, in
    // ascending tid order (deterministic).
    let mut tids: std::collections::BTreeSet<u32> =
        records.iter().map(|r| track_of(&r.ev)).collect();
    tids.insert(TID_PHASE_PID);
    push(
        &mut out,
        &format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"manytest probe {id}\"}}}}"
        ),
    );
    for &tid in &tids {
        push(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track_name(tid)
            ),
        );
    }
    for rec in records {
        let tid = track_of(&rec.ev);
        let kind = rec.ev.kind();
        let ts = ts_us(rec.t);
        // Args: the record's own JSON fields, reused verbatim so the
        // trace stays in lockstep with the JSONL schema. The writer
        // prefixes every field with a comma; drop the leading one.
        let mut raw = String::new();
        rec.ev.write_json_fields(&mut raw);
        let args = raw.strip_prefix(',').unwrap_or(&raw);
        let mut line = String::new();
        match session_end.get(&rec.id.0) {
            // A launch with a known end: a duration slice.
            Some(&(end_t, outcome)) if matches!(rec.ev, SimEvent::TestLaunched { .. }) => {
                let dur = format!("{:.3}", (end_t - rec.t).max(0.0) * 1e6);
                let _ = write!(
                    line,
                    "{{\"name\":\"{kind}\",\"cat\":\"session\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":{PID},\"tid\":{tid},\
                     \"args\":{{{args},\"outcome\":\"{outcome}\"}}}}"
                );
            }
            // lint:allow(event-match-exhaustiveness, reason = "total fallback, not a drop: every unmatched variant still renders as a Perfetto instant event")
            _ => {
                let _ = write!(
                    line,
                    "{{\"name\":\"{kind}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{PID},\"tid\":{tid},\"args\":{{{args}}}}}"
                );
            }
        }
        push(&mut out, &line);
        // Flow arrow along the cause link (resolvable links only; a
        // dangling link has no source coordinates to anchor to). The
        // flow id is the effect's event id — unique per run.
        if let Some(link) = rec.cause {
            if let Some(parent) = graph.record(link.id) {
                let ptid = track_of(&parent.ev);
                let pts = ts_us(parent.t);
                push(
                    &mut out,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"cause\",\"ph\":\"s\",\"id\":{},\
                         \"ts\":{pts},\"pid\":{PID},\"tid\":{ptid}}}",
                        link.kind.as_str(),
                        rec.id.0
                    ),
                );
                push(
                    &mut out,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"cause\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{},\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}}}",
                        link.kind.as_str(),
                        rec.id.0
                    ),
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Runs the probe for `id` and returns its report plus the rendered
/// trace JSON. `None` for unknown ids.
pub fn run_trace(id: &str, scale: Scale) -> Option<(Report, String)> {
    let report = run_probe(id, scale)?;
    let json = trace_json(id, &report);
    Some((report, json))
}

/// Validates the probe's telemetry and writes `DIR/<id>.trace.json`
/// (creating `DIR` if missing). Returns the path and the number of flow
/// arrows written.
///
/// # Errors
///
/// I/O errors, plus a synthesized [`io::ErrorKind::InvalidData`] error
/// when the probe's events fail [`validate_events`] (which now includes
/// the provenance-DAG checks the flows are drawn from).
pub fn write_trace_file(dir: &Path, id: &str, report: &Report) -> io::Result<(PathBuf, usize)> {
    validate_events(report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("probe {id}: {e}")))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.trace.json"));
    fs::write(&path, trace_json(id, report))?;
    let flows = ProvenanceGraph::build(report.events.events()).edge_count();
    Ok((path, flows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::default();
        r.fault_activations = 1;
        r.fault_detections = 1;
        r.tests_completed = 1;
        r.cores_suspected = 1;
        let fault = r.events.push(0.10, SimEvent::FaultActivated { core: 3 });
        let launch = r.events.push(
            0.15,
            SimEvent::TestLaunched {
                core: 3,
                routine: 0,
                level: 2,
                power: 0.4,
                headroom: 4.0,
            },
        );
        let detect = r.events.push_caused(
            0.30,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::FaultDetected { core: 3, latency: 0.20 },
        );
        let completed = r.events.push_caused(
            0.30,
            Some(CauseLink::new(CauseKind::Session, launch)),
            SimEvent::TestCompleted {
                core: 3,
                routine: 0,
                level: 2,
                covered_levels: 1,
                interval: -1.0,
            },
        );
        let _ = (detect, completed);
        r.events.push_caused(
            0.30,
            Some(CauseLink::new(CauseKind::Detection, detect)),
            SimEvent::CoreSuspected { core: 3, level: 2 },
        );
        r
    }

    #[test]
    fn trace_is_valid_json_shape_with_flows() {
        let r = sample_report();
        let json = trace_json("t1", &r);
        assert!(json.starts_with("[\n"), "array open");
        assert!(json.ends_with("\n]\n"), "array close");
        // 3 resolvable links -> 3 flow starts and 3 finishes.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 3);
        // The session became one duration slice with its outcome.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(json.contains("\"outcome\":\"completed\""));
        assert!(json.contains("\"dur\":150000.000"));
        // Track metadata names the core and phase tracks.
        assert!(json.contains("\"name\":\"core 3\""));
        assert!(json.contains("\"name\":\"phase: pid\""));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn trace_is_a_pure_function_of_the_log() {
        let a = trace_json("t1", &sample_report());
        let b = trace_json("t1", &sample_report());
        assert_eq!(a, b);
    }
}
