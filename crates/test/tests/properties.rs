//! Property tests of the SBST scheduler and its bookkeeping.

use manytest_power::{TechNode, VfLevel};
use manytest_sbst::health::{CoreHealth, HealthBoard};
use manytest_sbst::prelude::*;
use manytest_sim::SimRng;
use proptest::prelude::*;

/// One randomized call against the [`HealthBoard`] API.
#[derive(Debug, Clone, Copy)]
enum LifecycleOp {
    MarkSuspect { level: u8, retests: u8 },
    NoteRetest,
    Clear,
    Quarantine,
    BeginProbation,
    ProbePass,
    Readmit,
    FailProbation,
}

/// Executable spec of the lifecycle contract (module docs of
/// `health.rs`): the state an op must leave a core in, given where it
/// was. Everything not listed is a no-op — in particular there is no
/// edge out of `Quarantined` except `BeginProbation`, and none into
/// `Healthy` except `Clear` (from suspicion) and `Readmit` (from
/// probation).
fn lifecycle_spec(prev: CoreHealth, op: LifecycleOp) -> CoreHealth {
    use CoreHealth::*;
    match (op, prev) {
        (LifecycleOp::MarkSuspect { level, retests }, Healthy) => Suspect {
            level: VfLevel(level),
            remaining: retests,
            used: 0,
        },
        (LifecycleOp::NoteRetest, Suspect { level, remaining, used }) => Suspect {
            level,
            remaining: remaining.saturating_sub(1),
            used: used.saturating_add(1),
        },
        (LifecycleOp::Clear, Suspect { .. }) => Healthy,
        // A confirmed detection quarantines from any state and restarts
        // the backoff ladder.
        (LifecycleOp::Quarantine, _) => Quarantined { backoff: 0 },
        (LifecycleOp::BeginProbation, Quarantined { backoff }) => {
            Probation { streak: 0, backoff }
        }
        (LifecycleOp::ProbePass, Probation { streak, backoff }) => Probation {
            streak: streak.saturating_add(1),
            backoff,
        },
        (LifecycleOp::Readmit, Probation { .. }) => Healthy,
        (LifecycleOp::FailProbation, Probation { backoff, .. }) => Quarantined {
            backoff: backoff.saturating_add(1),
        },
        (_, state) => state,
    }
}

fn apply(board: &mut HealthBoard, core: usize, op: LifecycleOp) {
    match op {
        LifecycleOp::MarkSuspect { level, retests } => {
            board.mark_suspect(core, VfLevel(level), retests)
        }
        LifecycleOp::NoteRetest => {
            board.note_retest_complete(core);
        }
        LifecycleOp::Clear => {
            board.clear(core);
        }
        LifecycleOp::Quarantine => {
            board.quarantine(core);
        }
        LifecycleOp::BeginProbation => {
            board.begin_probation(core);
        }
        LifecycleOp::ProbePass => {
            board.note_probe_pass(core);
        }
        LifecycleOp::Readmit => {
            board.readmit(core);
        }
        LifecycleOp::FailProbation => {
            board.fail_probation(core);
        }
    }
}

/// Decodes a generated `(opcode, level, retests)` triple into an op.
fn decode_op(opcode: u8, level: u8, retests: u8) -> LifecycleOp {
    match opcode {
        0 => LifecycleOp::MarkSuspect { level, retests },
        1 => LifecycleOp::NoteRetest,
        2 => LifecycleOp::Clear,
        3 => LifecycleOp::Quarantine,
        4 => LifecycleOp::BeginProbation,
        5 => LifecycleOp::ProbePass,
        6 => LifecycleOp::Readmit,
        _ => LifecycleOp::FailProbation,
    }
}

fn scheduler(cores: usize, threshold: f64) -> TestScheduler {
    TestScheduler::with_library(
        TestSchedulerConfig {
            criticality_threshold: threshold,
            ..TestSchedulerConfig::default()
        },
        TechNode::N16,
        RoutineLibrary::standard(),
        cores,
    )
}

proptest! {
    #[test]
    fn plan_never_exceeds_headroom(
        headroom in 0.0f64..50.0,
        crits in prop::collection::vec(0.0f64..5.0, 1..64),
    ) {
        let mut s = scheduler(crits.len(), 0.0);
        let candidates: Vec<TestCandidate> = crits
            .iter()
            .enumerate()
            .map(|(core, &criticality)| TestCandidate { core, criticality })
            .collect();
        let launches = s.plan(&candidates, headroom);
        let total: f64 = launches.iter().map(|l| l.power).sum();
        prop_assert!(total <= headroom + 1e-9);
        // No core is launched twice in one plan.
        let mut cores: Vec<usize> = launches.iter().map(|l| l.core).collect();
        cores.sort_unstable();
        let before = cores.len();
        cores.dedup();
        prop_assert_eq!(before, cores.len());
    }

    #[test]
    fn plan_serves_descending_criticality(
        crits in prop::collection::vec(0.5f64..5.0, 2..32),
    ) {
        let mut s = scheduler(crits.len(), 0.0);
        let candidates: Vec<TestCandidate> = crits
            .iter()
            .enumerate()
            .map(|(core, &criticality)| TestCandidate { core, criticality })
            .collect();
        let launches = s.plan(&candidates, f64::INFINITY);
        let served: Vec<f64> = launches.iter().map(|l| crits[l.core]).collect();
        for w in served.windows(2) {
            prop_assert!(w[0] >= w[1], "service order must be descending");
        }
    }

    #[test]
    fn threshold_filters_exactly(
        threshold in 0.0f64..3.0,
        crits in prop::collection::vec(0.0f64..5.0, 1..40),
    ) {
        let mut s = scheduler(crits.len(), threshold);
        let candidates: Vec<TestCandidate> = crits
            .iter()
            .enumerate()
            .map(|(core, &criticality)| TestCandidate { core, criticality })
            .collect();
        let launches = s.plan(&candidates, f64::INFINITY);
        let eligible = crits.iter().filter(|&&c| c >= threshold).count();
        prop_assert_eq!(launches.len(), eligible.min(s.config().max_launches_per_epoch));
        for l in &launches {
            prop_assert!(crits[l.core] >= threshold);
        }
    }

    #[test]
    fn rotation_reaches_full_coverage(
        core in 0usize..16,
        extra_rounds in 0usize..3,
    ) {
        let mut s = scheduler(16, 0.0);
        let rounds = s.library().len() * s.ladder().len() + extra_rounds;
        for _ in 0..rounds {
            let launches = s.plan(
                &[TestCandidate { core, criticality: 1.0 }],
                f64::INFINITY,
            );
            let l = launches[0];
            s.on_session_complete(l.core, l.routine, l.level);
        }
        prop_assert!(s.ledger().core_fully_covered(core));
    }

    #[test]
    fn ledger_counts_are_conserved(
        records in prop::collection::vec((0usize..8, 0u8..5), 0..200),
    ) {
        let mut ledger = VfCoverageLedger::new(8, 5);
        for &(core, level) in &records {
            ledger.record(core, VfLevel(level));
        }
        let per_core: u64 = (0..8).map(|c| ledger.tests_on_core(c)).sum();
        let per_level: u64 = ledger.tests_per_level().iter().sum();
        prop_assert_eq!(per_core, records.len() as u64);
        prop_assert_eq!(per_level, records.len() as u64);
    }

    #[test]
    fn next_level_is_always_least_tested(
        records in prop::collection::vec(0u8..4, 0..60),
    ) {
        let mut ledger = VfCoverageLedger::new(1, 4);
        for &level in &records {
            ledger.record(0, VfLevel(level));
        }
        let chosen = ledger.next_level(0);
        let min = (0..4)
            .map(|l| ledger.tests_at(0, VfLevel(l)))
            .min()
            .unwrap();
        prop_assert_eq!(ledger.tests_at(0, chosen), min);
    }

    #[test]
    fn detection_latency_is_nonnegative(
        inject_at in 0.0f64..5.0,
        test_at in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let mut log = FaultLog::new();
        log.inject(0, inject_at);
        log.activate_due(test_at);
        let routine = TestRoutine::new("perfect", 1_000, 0.8, 1.0);
        let mut rng = SimRng::seed_from(seed);
        log.on_test_complete(0, &routine, VfLevel(0), test_at, &mut rng);
        if let Some(latency) = log.faults()[0].detection_latency() {
            prop_assert!(latency >= 0.0);
            prop_assert!(test_at >= inject_at, "detected ⇒ fault was active");
        }
    }

    #[test]
    fn health_board_never_leaves_the_lifecycle_graph(
        ops in prop::collection::vec((0usize..6, 0u8..8, 0u8..5, 1u8..4), 0..300),
    ) {
        let cores = 6;
        let mut board = HealthBoard::new(cores);
        for &(core, opcode, level, retests) in &ops {
            let op = decode_op(opcode, level, retests);
            let prev = board.state(core);
            apply(&mut board, core, op);
            let next = board.state(core);
            // Every call lands exactly where the lifecycle spec says —
            // no illegal transition (Quarantined→Healthy, withdrawn→
            // Suspect, …) is reachable by any call sequence.
            prop_assert_eq!(next, lifecycle_spec(prev, op), "op {:?} on {:?}", op, prev);
            if board.is_withdrawn(core) {
                prop_assert!(!board.is_healthy(core));
                prop_assert!(!board.is_suspect(core));
            }
            // The four disjoint states partition the board, and the
            // derived counts reconcile with the per-core predicates.
            let healthy = board.healthy_count();
            let suspect = board.suspect_count();
            let quarantined = board.quarantined_count();
            let probation = board.probation_count();
            prop_assert_eq!(healthy + suspect + quarantined + probation, cores);
            prop_assert_eq!(board.withdrawn_count(), quarantined + probation);
            prop_assert_eq!(
                (0..cores).filter(|&c| board.is_withdrawn(c)).count(),
                board.withdrawn_count()
            );
        }
    }

    #[test]
    fn session_progress_is_monotone(
        steps in prop::collection::vec(0.0f64..1e-3, 1..50),
    ) {
        let mut session = TestSession::new(0, RoutineId(0), VfLevel(0), 1_000_000, 1e9, 0.0);
        let mut last = 0.0;
        for &dt in &steps {
            session.advance(dt);
            let p = session.progress();
            prop_assert!(p >= last);
            prop_assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }
}
