//! Power-trace and fault-detection demo: run a bursty 16 nm workload with
//! five latent faults planted, dump the chip power trace (workload power,
//! test power, PID cap, TDP) as CSV, and report fault detection latencies.
//!
//! ```sh
//! cargo run --example test_trace --release > trace.csv
//! ```
//!
//! The CSV on stdout has one block per series; diagnostics go to stderr.

use manytest::prelude::*;

fn main() -> Result<(), BuildError> {
    let report = SystemBuilder::new(TechNode::N16)
        .seed(5)
        .arrival_rate(800.0)
        .sim_time_ms(300)
        .injected_faults(5)
        .build()?
        .run();

    // Machine-readable trace on stdout.
    print!("{}", report.trace.to_csv());

    // Human-readable digest on stderr.
    eprintln!("{}", report.summary());
    eprintln!(
        "faults: {} injected, {} detected, mean detection latency {:.1} ms",
        report.faults_injected,
        report.faults_detected,
        report.mean_detection_latency * 1e3
    );
    let power = report.trace.series("power_w").expect("power series");
    let cap = report.trace.series("cap_w").expect("cap series");
    let above_tdp = power
        .points()
        .iter()
        .filter(|&&(_, p)| p > report.tdp)
        .count();
    eprintln!(
        "trace: {} epochs, peak {:.1} W, {} epochs above the {:.0} W TDP, cap ranged {:.1}..{:.1} W",
        power.len(),
        power.max_value().unwrap_or(0.0),
        above_tdp,
        report.tdp,
        cap.points().iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min),
        cap.max_value().unwrap_or(0.0),
    );
    Ok(())
}
