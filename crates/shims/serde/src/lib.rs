//! Offline stand-in for the `serde` facade.
//!
//! The workspace builds in an environment with no crates.io access, so the
//! real `serde` cannot be fetched. The simulator only ever uses serde as
//! an *annotation* — `#[derive(Serialize, Deserialize)]` on model types —
//! and never serializes anything at runtime (reports are printed as text
//! and JSON is written by hand). This crate supplies just enough surface
//! for those annotations to compile: two empty marker traits and, behind
//! the `derive` feature, no-op derive macros of the same names.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! manifest; no source file needs to change.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize`. Carries no behaviour.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Carries no behaviour.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
