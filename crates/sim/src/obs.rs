//! Structured decision telemetry: observer hooks, typed events, sinks.
//!
//! End-of-run aggregates tell you *what* a run produced; they cannot tell
//! you *why* — which epoch denied a test for power, what the headroom was
//! at that instant, which application displaced a session. This module is
//! the telemetry backbone: the control loop emits one [`SimEvent`] per
//! decision through an [`Observer`], and sinks turn the stream into
//! whatever a consumer needs:
//!
//! * [`NullObserver`] — the default; every hook compiles to a no-op so
//!   the hot path stays allocation-free.
//! * [`EventLog`] — a bounded in-memory sink returned on the report.
//!   Per-kind counts stay **exact** even when the sample buffer is full,
//!   so aggregate invariants can always be checked against the report.
//! * [`JsonlWriter`] — streams one JSON object per event to any
//!   [`std::io::Write`] (files, pipes, test buffers).
//! * [`CounterRegistry`] — named counters plus fixed-bucket
//!   [`Histogram`]s with deterministic iteration order, for summaries.
//!
//! Events are plain `Copy` data: emitting one never touches the heap, and
//! JSON is rendered only inside sinks that asked for it.

use crate::stats::Histogram;
use crate::wire::{Wire, WireError, WireReader, WireWriter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why an SBST session was torn down before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The mapper claimed the core for an arriving application.
    MappedOver,
    /// A task of the core's owning application became ready mid-session.
    TaskPreempted,
}

impl AbortReason {
    /// Stable lower-snake name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::MappedOver => "mapped_over",
            AbortReason::TaskPreempted => "task_preempted",
        }
    }
}

/// One structured decision made by the epoch control loop or resolved in
/// the event plane. Stack-only (`Copy`): constructing and emitting an
/// event allocates nothing.
///
/// Times are *not* part of the payload — every observer hook receives the
/// event's timestamp separately, so sinks that do not need it pay nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// An application entered the pending queue.
    AppArrived {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
    },
    /// An application can never fit the platform and was dropped.
    AppRejected {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
    },
    /// An application was admitted and placed.
    AppMapped {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
        /// Dense node index of task 0's core.
        first_node: u32,
        /// Bounding-box width of the mapping, in mesh columns.
        region_w: u16,
        /// Bounding-box height of the mapping, in mesh rows.
        region_h: u16,
        /// DVFS level the app was admitted at.
        level: u8,
        /// Communication-weighted hop cost of the placement.
        hop_cost: f64,
        /// Seconds the app waited in the pending queue.
        queue_wait: f64,
        /// Power headroom left *after* the app's reservation, watts.
        headroom: f64,
    },
    /// An admitted application finished its last task.
    AppCompleted {
        /// Application id.
        app: u64,
        /// Arrival-to-completion latency, seconds.
        latency: f64,
    },
    /// An SBST session started.
    TestLaunched {
        /// Core under test.
        core: u32,
        /// Routine id.
        routine: u16,
        /// DVFS level tested at.
        level: u8,
        /// Reserved session power, watts.
        power: f64,
        /// Headroom left after the reservation, watts.
        headroom: f64,
    },
    /// The scheduler wanted to test a core but the headroom was exhausted.
    TestDeniedPower {
        /// Core that was denied.
        core: u32,
        /// Watts the session would have needed.
        needed: f64,
        /// Watts that were actually left at the denial.
        headroom: f64,
    },
    /// A session was torn down before completing.
    TestAborted {
        /// Core whose session died.
        core: u32,
        /// What displaced it.
        reason: AbortReason,
    },
    /// A session ran to completion.
    TestCompleted {
        /// Core that was tested.
        core: u32,
        /// Routine that completed.
        routine: u16,
        /// DVFS level tested at.
        level: u8,
        /// DVFS levels on this core with ≥ 1 completed test afterwards.
        covered_levels: u8,
        /// Seconds since this core's previous completion (< 0 = first).
        interval: f64,
    },
    /// The governor moved the admission cap.
    CapAdjusted {
        /// New cap, watts.
        cap: f64,
        /// Last epoch's measured power, watts.
        measured: f64,
        /// Headroom under the new cap, watts.
        headroom: f64,
        /// Live power reservations at that instant.
        reservations: u32,
    },
    /// A core's operating level changed (−1 = power-gated).
    DvfsTransition {
        /// The core.
        core: u32,
        /// Previous ladder index, −1 when the core was off.
        from: i16,
        /// New ladder index, −1 when the core turns off.
        to: i16,
    },
    /// An injected fault became present (latent) on a core.
    FaultActivated {
        /// The faulty core.
        core: u32,
    },
    /// A completed test routine caught a latent fault.
    FaultDetected {
        /// The faulty core.
        core: u32,
        /// Injection-to-detection latency, seconds.
        latency: f64,
    },
    /// A detection moved a core into the `Suspect` health state; K
    /// confirmation retests were queued at the detecting V/f level.
    CoreSuspected {
        /// The suspect core.
        core: u32,
        /// DVFS ladder index the detection happened at.
        level: u8,
    },
    /// Confirmation retests upheld the detection: the core is withdrawn
    /// from mapping and power-gated for the rest of the run.
    CoreQuarantined {
        /// The quarantined core.
        core: u32,
        /// Confirmation retests that completed before the verdict.
        retests: u32,
    },
    /// Confirmation retests failed to reproduce the detection; the core
    /// returns to `Healthy`.
    CoreCleared {
        /// The cleared core.
        core: u32,
        /// Confirmation retests that completed before the verdict.
        retests: u32,
    },
    /// A quarantine killed an application outright (`Abort` policy).
    AppAborted {
        /// Application id.
        app: u64,
        /// The quarantined core that carried it.
        core: u32,
    },
    /// A quarantine sent an application back to the pending queue for a
    /// fresh placement (`RestartElsewhere` policy).
    AppRestarted {
        /// Application id.
        app: u64,
        /// The quarantined core that carried it.
        core: u32,
    },
    /// A quarantine remapped an application in place onto healthy nodes
    /// (`MigrateRegion` policy).
    AppMigrated {
        /// Application id.
        app: u64,
        /// The quarantined core it was moved off.
        core: u32,
        /// Tasks whose placement changed.
        moved_tasks: u32,
        /// State-transfer delay charged to the app, seconds.
        delay: f64,
    },
    /// The background re-admission lane launched a low-V/f probe routine
    /// on a withdrawn core (probation).
    CoreProbeLaunched {
        /// The core under probation.
        core: u32,
        /// Clean probes already banked this probation round.
        streak: u32,
        /// Probe sessions in flight after this launch (≤ lane budget).
        inflight: u32,
    },
    /// Probation succeeded: the core's refire streak cooled and it
    /// rejoins the mappable pool.
    CoreReadmitted {
        /// The re-admitted core.
        core: u32,
        /// Clean probes that earned the re-admission.
        probes: u32,
    },
    /// A probation probe reproduced the fault: the core returns to
    /// quarantine and the retry cadence backs off exponentially.
    CoreRequarantined {
        /// The re-quarantined core.
        core: u32,
        /// Failed probation rounds so far (backoff exponent).
        backoff: u32,
    },
    /// A periodic checkpoint captured an application's task state,
    /// resetting the dirty span a later migration must transfer.
    AppCheckpointed {
        /// Application id.
        app: u64,
        /// Tasks whose state was captured.
        tasks: u32,
        /// Checkpoint image size, bytes.
        bytes: u64,
    },
}

impl SimEvent {
    /// Number of event kinds (array size for exact per-kind counters).
    pub const KIND_COUNT: usize = 22;

    /// All kind names, in [`SimEvent::kind_index`] order.
    pub const KINDS: [&'static str; Self::KIND_COUNT] = [
        "AppArrived",
        "AppRejected",
        "AppMapped",
        "AppCompleted",
        "TestLaunched",
        "TestDeniedPower",
        "TestAborted",
        "TestCompleted",
        "CapAdjusted",
        "DvfsTransition",
        "FaultActivated",
        "FaultDetected",
        "CoreSuspected",
        "CoreQuarantined",
        "CoreCleared",
        "AppAborted",
        "AppRestarted",
        "AppMigrated",
        "CoreProbeLaunched",
        "CoreReadmitted",
        "CoreRequarantined",
        "AppCheckpointed",
    ];

    /// Dense index of this event's kind, for fixed-size counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            SimEvent::AppArrived { .. } => 0,
            SimEvent::AppRejected { .. } => 1,
            SimEvent::AppMapped { .. } => 2,
            SimEvent::AppCompleted { .. } => 3,
            SimEvent::TestLaunched { .. } => 4,
            SimEvent::TestDeniedPower { .. } => 5,
            SimEvent::TestAborted { .. } => 6,
            SimEvent::TestCompleted { .. } => 7,
            SimEvent::CapAdjusted { .. } => 8,
            SimEvent::DvfsTransition { .. } => 9,
            SimEvent::FaultActivated { .. } => 10,
            SimEvent::FaultDetected { .. } => 11,
            SimEvent::CoreSuspected { .. } => 12,
            SimEvent::CoreQuarantined { .. } => 13,
            SimEvent::CoreCleared { .. } => 14,
            SimEvent::AppAborted { .. } => 15,
            SimEvent::AppRestarted { .. } => 16,
            SimEvent::AppMigrated { .. } => 17,
            SimEvent::CoreProbeLaunched { .. } => 18,
            SimEvent::CoreReadmitted { .. } => 19,
            SimEvent::CoreRequarantined { .. } => 20,
            SimEvent::AppCheckpointed { .. } => 21,
        }
    }

    /// The event's kind name (stable, used as the JSON `kind` field).
    pub fn kind(&self) -> &'static str {
        Self::KINDS[self.kind_index()]
    }

    /// True when the provenance contract requires every emission of this
    /// kind to carry a cause link. The complement — kinds that may be
    /// emitted as roots — is exactly [`SimEvent::ROOT_KINDS`] plus
    /// `TestLaunched` (ranked-lane launches are roots, retest-lane
    /// launches are caused).
    pub fn cause_required(kind_index: usize) -> bool {
        !matches!(kind_index, 0 | 4 | 8 | 9 | 10)
    }

    /// Kind names that may legitimately appear as provenance-DAG roots
    /// (no cause link). Everything else must be caused — enforced by
    /// `validate_events` on every captured run.
    pub const ROOT_KINDS: [&'static str; 5] = [
        "AppArrived",
        "TestLaunched",
        "CapAdjusted",
        "DvfsTransition",
        "FaultActivated",
    ];

    /// Appends this event as one JSON object (no trailing newline) to
    /// `out`. Floats use Rust's shortest-round-trip `Display`, which is
    /// deterministic, so identical runs render byte-identical JSON.
    // lint:effect(alloc, reason = "renders into the caller's String buffer — write! to String is an append, not I/O; callers reuse the buffer across epochs")
    pub fn write_json(&self, t: f64, out: &mut String) {
        let kind = self.kind();
        let _ = write!(out, "{{\"t\":{t},\"kind\":\"{kind}\"");
        self.write_json_fields(out);
        out.push('}');
    }

    /// Appends the per-variant payload fields (each preceded by a comma,
    /// no braces) to `out` — the shared tail of [`SimEvent::write_json`]
    /// and [`EventRecord::write_json`].
    pub fn write_json_fields(&self, out: &mut String) {
        match *self {
            SimEvent::AppArrived { app, tasks } | SimEvent::AppRejected { app, tasks } => {
                let _ = write!(out, ",\"app\":{app},\"tasks\":{tasks}");
            }
            SimEvent::AppMapped {
                app,
                tasks,
                first_node,
                region_w,
                region_h,
                level,
                hop_cost,
                queue_wait,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"tasks\":{tasks},\"first_node\":{first_node},\
                     \"region_w\":{region_w},\"region_h\":{region_h},\"level\":{level},\
                     \"hop_cost\":{hop_cost},\"queue_wait\":{queue_wait},\"headroom\":{headroom}"
                );
            }
            SimEvent::AppCompleted { app, latency } => {
                let _ = write!(out, ",\"app\":{app},\"latency\":{latency}");
            }
            SimEvent::TestLaunched {
                core,
                routine,
                level,
                power,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"routine\":{routine},\"level\":{level},\
                     \"power\":{power},\"headroom\":{headroom}"
                );
            }
            SimEvent::TestDeniedPower {
                core,
                needed,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"needed\":{needed},\"headroom\":{headroom}"
                );
            }
            SimEvent::TestAborted { core, reason } => {
                let _ = write!(out, ",\"core\":{core},\"reason\":\"{}\"", reason.as_str());
            }
            SimEvent::TestCompleted {
                core,
                routine,
                level,
                covered_levels,
                interval,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"routine\":{routine},\"level\":{level},\
                     \"covered_levels\":{covered_levels},\"interval\":{interval}"
                );
            }
            SimEvent::CapAdjusted {
                cap,
                measured,
                headroom,
                reservations,
            } => {
                let _ = write!(
                    out,
                    ",\"cap\":{cap},\"measured\":{measured},\"headroom\":{headroom},\
                     \"reservations\":{reservations}"
                );
            }
            SimEvent::DvfsTransition { core, from, to } => {
                let _ = write!(out, ",\"core\":{core},\"from\":{from},\"to\":{to}");
            }
            SimEvent::FaultActivated { core } => {
                let _ = write!(out, ",\"core\":{core}");
            }
            SimEvent::FaultDetected { core, latency } => {
                let _ = write!(out, ",\"core\":{core},\"latency\":{latency}");
            }
            SimEvent::CoreSuspected { core, level } => {
                let _ = write!(out, ",\"core\":{core},\"level\":{level}");
            }
            SimEvent::CoreQuarantined { core, retests }
            | SimEvent::CoreCleared { core, retests } => {
                let _ = write!(out, ",\"core\":{core},\"retests\":{retests}");
            }
            SimEvent::AppAborted { app, core } | SimEvent::AppRestarted { app, core } => {
                let _ = write!(out, ",\"app\":{app},\"core\":{core}");
            }
            SimEvent::AppMigrated {
                app,
                core,
                moved_tasks,
                delay,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"core\":{core},\"moved_tasks\":{moved_tasks},\
                     \"delay\":{delay}"
                );
            }
            SimEvent::CoreProbeLaunched {
                core,
                streak,
                inflight,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"streak\":{streak},\"inflight\":{inflight}"
                );
            }
            SimEvent::CoreReadmitted { core, probes } => {
                let _ = write!(out, ",\"core\":{core},\"probes\":{probes}");
            }
            SimEvent::CoreRequarantined { core, backoff } => {
                let _ = write!(out, ",\"core\":{core},\"backoff\":{backoff}");
            }
            SimEvent::AppCheckpointed { app, tasks, bytes } => {
                let _ = write!(out, ",\"app\":{app},\"tasks\":{tasks},\"bytes\":{bytes}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Causal provenance: event ids, cause links, records.
// ---------------------------------------------------------------------------

/// Deterministic identity of one emitted event: its position in the
/// run's emission sequence (0-based). Ids are assigned by the emitter in
/// emission order, so they are byte-identical across worker counts and
/// `id_a < id_b` implies event `a` was emitted no later than event `b` —
/// which makes acyclicity and time-ordering of the provenance DAG a
/// single comparison per link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u64);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why one event caused another: the typed edge label of the provenance
/// DAG. Each kind admits a fixed `(cause kinds, effect kinds)` pair —
/// see [`CauseKind::expected`] — and `validate_events` rejects any link
/// outside that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CauseKind {
    /// `AppArrived` → `AppMapped` / `AppRejected`: the admission verdict
    /// on a fresh arrival.
    Arrival,
    /// `AppRestarted` → `AppMapped` / `AppRejected`: the re-admission
    /// verdict on a quarantine-displaced app.
    Restart,
    /// `AppMapped` → `AppCompleted`: the placement that ran to the end.
    Mapping,
    /// `CapAdjusted` → `TestDeniedPower`: the governor's cap move that
    /// left too little headroom for the session.
    CapMove,
    /// `CoreSuspected` → `TestLaunched`: a confirmation retest planned
    /// by the priority lane (ranked-lane launches are roots instead).
    RetestLane,
    /// `TestLaunched` → `TestCompleted` / `TestAborted`: the session's
    /// own lifecycle.
    Session,
    /// `FaultActivated` → `FaultDetected`: the latent fault the routine
    /// caught.
    Activation,
    /// `FaultDetected` → `CoreSuspected`: a detection opening the
    /// suspicion window.
    Detection,
    /// `TestCompleted` → `CoreSuspected`: a false-positive routine
    /// verdict opening the suspicion window with no underlying fault.
    FalseAlarm,
    /// `TestCompleted` → `CoreQuarantined`: the confirming retest that
    /// upheld the detection.
    RetestFailed,
    /// `TestCompleted` → `CoreCleared`: the last retest of a streak that
    /// failed to reproduce the detection.
    RetestPassed,
    /// `CoreSuspected` → `CoreQuarantined`: immediate quarantine when
    /// zero confirmation retests are configured.
    Suspicion,
    /// `CoreQuarantined` → `AppAborted` / `AppRestarted` / `AppMigrated`:
    /// the victim-handling policy acting on the quarantine.
    Quarantine,
    /// `CoreQuarantined` / `CoreRequarantined` → `CoreProbeLaunched`:
    /// the background re-admission lane probing a withdrawn core.
    ProbeLane,
    /// `CoreProbeLaunched` → `CoreReadmitted`: the clean probe that
    /// completed the cool-down streak.
    ProbePassed,
    /// `CoreProbeLaunched` → `CoreRequarantined`: the probe that
    /// reproduced the fault and failed probation.
    ProbeFailed,
    /// `AppMapped` → `AppCheckpointed`: the placement whose task state
    /// the checkpoint captured.
    Checkpoint,
}

impl CauseKind {
    /// Number of link kinds (array size for per-kind counters).
    pub const COUNT: usize = 17;

    /// All link kinds, in [`CauseKind::index`] order.
    pub const ALL: [CauseKind; Self::COUNT] = [
        CauseKind::Arrival,
        CauseKind::Restart,
        CauseKind::Mapping,
        CauseKind::CapMove,
        CauseKind::RetestLane,
        CauseKind::Session,
        CauseKind::Activation,
        CauseKind::Detection,
        CauseKind::FalseAlarm,
        CauseKind::RetestFailed,
        CauseKind::RetestPassed,
        CauseKind::Suspicion,
        CauseKind::Quarantine,
        CauseKind::ProbeLane,
        CauseKind::ProbePassed,
        CauseKind::ProbeFailed,
        CauseKind::Checkpoint,
    ];

    /// Dense index of this link kind.
    pub fn index(self) -> usize {
        match self {
            CauseKind::Arrival => 0,
            CauseKind::Restart => 1,
            CauseKind::Mapping => 2,
            CauseKind::CapMove => 3,
            CauseKind::RetestLane => 4,
            CauseKind::Session => 5,
            CauseKind::Activation => 6,
            CauseKind::Detection => 7,
            CauseKind::FalseAlarm => 8,
            CauseKind::RetestFailed => 9,
            CauseKind::RetestPassed => 10,
            CauseKind::Suspicion => 11,
            CauseKind::Quarantine => 12,
            CauseKind::ProbeLane => 13,
            CauseKind::ProbePassed => 14,
            CauseKind::ProbeFailed => 15,
            CauseKind::Checkpoint => 16,
        }
    }

    /// Stable lower-snake name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            CauseKind::Arrival => "arrival",
            CauseKind::Restart => "restart",
            CauseKind::Mapping => "mapping",
            CauseKind::CapMove => "cap_move",
            CauseKind::RetestLane => "retest_lane",
            CauseKind::Session => "session",
            CauseKind::Activation => "activation",
            CauseKind::Detection => "detection",
            CauseKind::FalseAlarm => "false_alarm",
            CauseKind::RetestFailed => "retest_failed",
            CauseKind::RetestPassed => "retest_passed",
            CauseKind::Suspicion => "suspicion",
            CauseKind::Quarantine => "quarantine",
            CauseKind::ProbeLane => "probe_lane",
            CauseKind::ProbePassed => "probe_passed",
            CauseKind::ProbeFailed => "probe_failed",
            CauseKind::Checkpoint => "checkpoint",
        }
    }

    /// The allowed-link table: `(cause kinds, effect kinds)` this edge
    /// label may connect, as [`SimEvent::KINDS`] names. A link whose
    /// endpoint kinds fall outside its row is a wiring bug and fails
    /// `validate_events`.
    pub fn expected(self) -> (&'static [&'static str], &'static [&'static str]) {
        match self {
            CauseKind::Arrival => (&["AppArrived"], &["AppMapped", "AppRejected"]),
            CauseKind::Restart => (&["AppRestarted"], &["AppMapped", "AppRejected"]),
            CauseKind::Mapping => (&["AppMapped"], &["AppCompleted"]),
            CauseKind::CapMove => (&["CapAdjusted"], &["TestDeniedPower"]),
            CauseKind::RetestLane => (&["CoreSuspected"], &["TestLaunched"]),
            CauseKind::Session => (&["TestLaunched"], &["TestCompleted", "TestAborted"]),
            CauseKind::Activation => (&["FaultActivated"], &["FaultDetected"]),
            CauseKind::Detection => (&["FaultDetected"], &["CoreSuspected"]),
            CauseKind::FalseAlarm => (&["TestCompleted"], &["CoreSuspected"]),
            CauseKind::RetestFailed => (&["TestCompleted"], &["CoreQuarantined"]),
            CauseKind::RetestPassed => (&["TestCompleted"], &["CoreCleared"]),
            CauseKind::Suspicion => (&["CoreSuspected"], &["CoreQuarantined"]),
            CauseKind::Quarantine => {
                (&["CoreQuarantined"], &["AppAborted", "AppRestarted", "AppMigrated"])
            }
            CauseKind::ProbeLane => {
                (&["CoreQuarantined", "CoreRequarantined"], &["CoreProbeLaunched"])
            }
            CauseKind::ProbePassed => (&["CoreProbeLaunched"], &["CoreReadmitted"]),
            CauseKind::ProbeFailed => (&["CoreProbeLaunched"], &["CoreRequarantined"]),
            CauseKind::Checkpoint => (&["AppMapped"], &["AppCheckpointed"]),
        }
    }
}

/// A typed edge of the provenance DAG: *this event happened because of
/// event `id`, via mechanism `kind`*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CauseLink {
    /// Edge label (mechanism).
    pub kind: CauseKind,
    /// The causing event.
    pub id: EventId,
}

impl CauseLink {
    /// Convenience constructor.
    pub fn new(kind: CauseKind, id: EventId) -> Self {
        CauseLink { kind, id }
    }
}

/// One emitted event with its full provenance envelope: identity,
/// timestamp, optional cause link, payload. This is what observers
/// receive and what the [`EventLog`] stores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Emission-order identity (unique within a run).
    pub id: EventId,
    /// Emission time, seconds.
    pub t: f64,
    /// The event that caused this one, if it is not a root.
    pub cause: Option<CauseLink>,
    /// The decision payload.
    pub ev: SimEvent,
}

impl EventRecord {
    /// Appends this record as one JSON object (no trailing newline):
    /// `{"t":…,"id":…[,"cause":…,"link":"…"],"kind":"…",fields}`.
    /// Deterministic byte-for-byte, like [`SimEvent::write_json`].
    // lint:effect(alloc, reason = "renders into the caller's String buffer — write! to String is an append, not I/O; callers reuse the buffer across epochs")
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"t\":{},\"id\":{}", self.t, self.id.0);
        if let Some(link) = self.cause {
            let _ = write!(out, ",\"cause\":{},\"link\":\"{}\"", link.id.0, link.kind.as_str());
        }
        let _ = write!(out, ",\"kind\":\"{}\"", self.ev.kind());
        self.ev.write_json_fields(out);
        out.push('}');
    }
}

/// Emits one event through an observer, assigning the next sequential
/// [`EventId`] from `next_id`. This is the one place records are minted:
/// the control loop (and its borrow-split closures) routes every
/// emission through here so ids stay gapless and monotonic.
#[inline]
pub fn emit_record(
    obs: &mut dyn Observer,
    next_id: &mut u64,
    t: f64,
    cause: Option<CauseLink>,
    ev: SimEvent,
) -> EventId {
    let id = EventId(*next_id);
    *next_id += 1;
    obs.on_event(&EventRecord { id, t, cause, ev });
    id
}

/// A decision-event sink. The control loop calls [`Observer::on_event`]
/// once per decision with the full provenance envelope (id, time, cause
/// link, payload); the default implementation of every other method is
/// a no-op so trivial sinks stay trivial.
pub trait Observer {
    /// Receives one emitted event record.
    fn on_event(&mut self, rec: &EventRecord);

    /// Hands over an [`EventLog`] if this observer accumulated one
    /// (called once, when a run finalizes its report).
    fn take_log(&mut self) -> Option<EventLog> {
        None
    }

    /// Records dropped so far by a saturated bounded sink (0 for
    /// unbounded or non-accumulating observers). Polled once per epoch
    /// to feed live [`ProgressCounters`] saturation telemetry.
    fn dropped_records(&self) -> u64 {
        0
    }
}

/// The default observer: drops every event. Keeps the epoch control loop
/// free of observer overhead — the counting-allocator test in
/// `crates/bench/tests/map_context_allocs.rs` holds the emission path to
/// zero heap allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_event(&mut self, _rec: &EventRecord) {}
}

/// A bounded in-memory event sink.
///
/// Stores up to `capacity` timestamped events; further events are counted
/// but not stored (`dropped`). Per-kind counts are maintained for **all**
/// events, stored or dropped, so count-based invariants (`TestLaunched ==
/// TestCompleted + TestAborted + in-flight`, …) reconcile exactly with
/// the report even when the sample buffer saturates.
///
/// # Examples
///
/// ```
/// use manytest_sim::obs::{EventLog, SimEvent};
///
/// let mut log = EventLog::bounded(16);
/// log.push(0.5, SimEvent::FaultActivated { core: 3 });
/// assert_eq!(log.count("FaultActivated"), 1);
/// assert!(log.to_jsonl().contains("\"kind\":\"FaultActivated\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<EventRecord>,
    capacity: usize,
    dropped: u64,
    kind_counts: [u64; SimEvent::KIND_COUNT],
    next_id: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            events: Vec::new(),
            capacity: usize::MAX,
            dropped: 0,
            kind_counts: [0; SimEvent::KIND_COUNT],
            next_id: 0,
        }
    }
}

impl EventLog {
    /// An unbounded log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that stores at most `capacity` events (but counts them all).
    pub fn bounded(capacity: usize) -> Self {
        EventLog {
            capacity,
            ..Self::default()
        }
    }

    /// Records one root event (no cause), assigning the next sequential
    /// id, and returns that id.
    pub fn push(&mut self, t: f64, ev: SimEvent) -> EventId {
        self.push_caused(t, None, ev)
    }

    /// Records one event with an optional cause link, assigning the next
    /// sequential id, and returns that id.
    pub fn push_caused(&mut self, t: f64, cause: Option<CauseLink>, ev: SimEvent) -> EventId {
        let id = EventId(self.next_id);
        self.push_record(EventRecord { id, t, cause, ev });
        id
    }

    /// Records one fully-formed record (as received from an emitter).
    /// The log's id counter is advanced past the record's id so manual
    /// pushes and observed records can interleave without collisions.
    pub fn push_record(&mut self, rec: EventRecord) {
        self.next_id = self.next_id.max(rec.id.0 + 1);
        self.kind_counts[rec.ev.kind_index()] += 1;
        if self.events.len() < self.capacity {
            self.events.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// The stored records, in emission order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events observed but not stored because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-kind counts of events that were observed but *not* stored
    /// (the difference between the exact per-kind tallies and the kinds
    /// actually present in the sample buffer), in [`SimEvent::KINDS`]
    /// order. All zero unless the log saturated.
    pub fn dropped_kind_counts(&self) -> [u64; SimEvent::KIND_COUNT] {
        let mut stored = [0u64; SimEvent::KIND_COUNT];
        for rec in &self.events {
            stored[rec.ev.kind_index()] += 1;
        }
        let mut out = [0u64; SimEvent::KIND_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.kind_counts[i] - stored[i];
        }
        out
    }

    /// A one-line human-readable warning when the sample buffer hit its
    /// capacity, naming the most-dropped kinds; `None` when nothing was
    /// dropped. Deterministic (ties broken by kind order).
    pub fn saturation_warning(&self) -> Option<String> {
        if self.dropped == 0 {
            return None;
        }
        let drops = self.dropped_kind_counts();
        let mut ranked: Vec<(usize, u64)> = drops
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut detail = String::new();
        for (i, &(kind, count)) in ranked.iter().take(3).enumerate() {
            if i > 0 {
                detail.push_str(", ");
            }
            let _ = write!(detail, "{} {count}", SimEvent::KINDS[kind]);
        }
        if ranked.len() > 3 {
            detail.push_str(", ...");
        }
        Some(format!(
            "warning: event log saturated at capacity {}; {} events dropped ({detail}); \
             per-kind counts remain exact",
            self.capacity, self.dropped
        ))
    }

    /// The configured sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact count of events of the named kind (stored *and* dropped).
    /// Unknown names count zero.
    pub fn count(&self, kind: &str) -> u64 {
        SimEvent::KINDS
            .iter()
            .position(|&k| k == kind)
            .map_or(0, |i| self.kind_counts[i])
    }

    /// `(kind, exact count)` pairs for every kind, in stable order.
    pub fn kind_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        SimEvent::KINDS.iter().zip(self.kind_counts).map(|(&k, c)| (k, c))
    }

    /// Total events observed (stored and dropped).
    pub fn total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Renders the stored samples as JSON Lines (one object per line),
    /// carrying each record's id and cause link.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for rec in &self.events {
            rec.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Streams the stored samples as JSON Lines to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the writer.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        for rec in &self.events {
            line.clear();
            rec.write_json(&mut line);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Renders the stored samples as a two-column CSV (`t,kind`), a
    /// compact form for spreadsheet-side counting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,kind\n");
        for rec in &self.events {
            let _ = writeln!(out, "{},{}", rec.t, rec.ev.kind());
        }
        out
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, rec: &EventRecord) {
        self.push_record(*rec);
    }

    fn take_log(&mut self) -> Option<EventLog> {
        Some(std::mem::take(self))
    }

    fn dropped_records(&self) -> u64 {
        self.dropped
    }
}

/// Streams each event as one JSON line into any writer the moment it is
/// emitted (no buffering of the run in memory). The first I/O error is
/// latched: later events are dropped silently and the error surfaces
/// exactly once — through [`JsonlWriter::flush`] or
/// [`JsonlWriter::finish`], or as a single stderr line on drop if
/// neither was called. Writes themselves never panic mid-run.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write> {
    inner: Option<W>,
    line: String,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        JsonlWriter {
            inner: Some(inner),
            line: String::with_capacity(128),
            error: None,
        }
    }

    /// Flushes the inner writer.
    ///
    /// # Errors
    ///
    /// Returns the latched streaming error if one is pending (clearing
    /// the latch — it surfaces once), otherwise any flush error.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.inner.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    /// Unwraps the inner writer, reporting any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered while streaming.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.inner.take() {
            Some(w) => Ok(w),
            None => Err(io::Error::other("inner writer already taken")),
        }
    }
}

impl<W: io::Write> Drop for JsonlWriter<W> {
    /// Last-chance surfacing: a latched error nobody collected (or a
    /// flush failure on the way out) is reported once to stderr rather
    /// than vanishing with the buffered tail of the stream.
    fn drop(&mut self) {
        if self.error.is_none() {
            if let Some(w) = self.inner.as_mut() {
                if let Err(e) = w.flush() {
                    self.error = Some(e);
                }
            }
        }
        if let Some(e) = self.error.take() {
            eprintln!("manytest: event stream truncated by I/O error: {e}");
        }
    }
}

impl<W: io::Write> JsonlWriter<W> {
    /// Writes one out-of-band annotation line (`{"t":…,"note":"…"}`).
    ///
    /// Unlike event kinds, a note is free-form text and is escaped with
    /// [`write_json_str`], so control characters, quotes and backslashes
    /// survive the round trip. Lines without a `"kind"` field are ignored
    /// by [`jsonl_kind_counts`], so notes never perturb count validation.
    pub fn note(&mut self, t: f64, text: &str) {
        let Some(w) = self.inner.as_mut() else { return };
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{t},\"note\":");
        write_json_str(&mut self.line, text);
        self.line.push_str("}\n");
        if let Err(e) = w.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: io::Write> Observer for JsonlWriter<W> {
    fn on_event(&mut self, rec: &EventRecord) {
        let Some(w) = self.inner.as_mut() else { return };
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        rec.write_json(&mut self.line);
        self.line.push('\n');
        if let Err(e) = w.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Named counters plus named fixed-bucket histograms with deterministic
/// (sorted) iteration order. As an [`Observer`] it counts events by kind;
/// richer consumers record derived quantities through
/// [`CounterRegistry::record`].
///
/// # Examples
///
/// ```
/// use manytest_sim::obs::CounterRegistry;
///
/// let mut reg = CounterRegistry::new();
/// reg.declare_histogram("queue_wait_ms", 0.0, 10.0, 5);
/// reg.record("queue_wait_ms", 2.5);
/// reg.incr("launches");
/// assert_eq!(reg.counter("launches"), 1);
/// assert_eq!(reg.histogram("queue_wait_ms").unwrap().total(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to the named counter (creating it at 0).
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter (creating it at 0).
    // lint:effect(warmup, reason = "first touch of a counter name allocates its key once; every later add is an in-place increment")
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Declares (or replaces) a histogram spanning `[lo, hi)` with `bins`
    /// equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` (see [`Histogram::new`]).
    pub fn declare_histogram(&mut self, name: &str, lo: f64, hi: f64, bins: usize) {
        self.histograms
            .insert(name.to_owned(), Histogram::new(lo, hi, bins));
    }

    /// Records one sample into a declared histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram was never declared — an undeclared record
    /// is a telemetry wiring bug, not a runtime condition.
    // lint:effect(panic, reason = "documented # Panics contract: an undeclared histogram is a telemetry wiring bug, not a runtime condition")
    pub fn record(&mut self, name: &str, x: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram '{name}' was never declared"))
            .push(x);
    }

    /// The named histogram, if declared.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Plain-text summary: one `name = value` line per counter, then one
    /// block per histogram with quantile estimates and per-bucket bars.
    /// Deterministic order.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{name}: {} samples ({} under, {} over)",
                h.total(),
                h.underflow(),
                h.overflow()
            );
            if let (Some(p50), Some(p95), Some(p99)) = (h.p50(), h.p95(), h.p99()) {
                let _ = writeln!(out, "  p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}");
            }
            let peak = h.bins().iter().copied().max().unwrap_or(0).max(1);
            for (center, count) in h.centers() {
                let bar = "#".repeat((count * 40 / peak) as usize);
                let _ = writeln!(out, "  {center:>10.3} | {count:>6} {bar}");
            }
        }
        out
    }
}

impl Observer for CounterRegistry {
    fn on_event(&mut self, rec: &EventRecord) {
        self.incr(rec.ev.kind());
    }
}

/// Counts `"kind"` occurrences per line of a JSON-Lines event stream
/// (the inverse of [`EventLog::to_jsonl`], good enough for validation
/// without a JSON parser — the workspace deliberately has none).
pub fn jsonl_kind_counts(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for line in text.lines() {
        let Some(pos) = line.find("\"kind\":\"") else {
            continue;
        };
        let rest = &line[pos + 8..];
        let Some(end) = rest.find('"') else { continue };
        *counts.entry(rest[..end].to_owned()).or_insert(0) += 1;
    }
    counts
}

/// Appends `s` as a JSON string literal (with surrounding quotes),
/// escaping quotes, backslashes and control characters per RFC 8259.
/// Non-ASCII characters pass through as raw UTF-8, which JSON permits.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Flight recorder: per-epoch state snapshots.
// ---------------------------------------------------------------------------

/// Health lifecycle state of a core, as seen by a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthCode {
    /// No open suspicion.
    Healthy,
    /// A detection is being confirmed by retests.
    Suspect,
    /// Withdrawn from mapping and power-gated; the re-admission lane may
    /// later probe it back to health.
    Quarantined,
    /// Withdrawn from mapping but under active re-admission probing.
    Probation,
}

impl HealthCode {
    /// Stable lower-snake name used in report output.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthCode::Healthy => "healthy",
            HealthCode::Suspect => "suspect",
            HealthCode::Quarantined => "quarantined",
            HealthCode::Probation => "probation",
        }
    }
}

/// The state of one core captured at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreState {
    /// Mean power drawn over the closing epoch, watts.
    pub power_w: f64,
    /// Temperature at epoch close, kelvin (0 when no transient model).
    pub temp_k: f64,
    /// V/f ladder index the core runs at; −1 = power-gated/off.
    pub vf_level: i16,
    /// Health lifecycle state.
    pub health: HealthCode,
    /// True when an application occupies the core (mapping occupancy).
    pub occupied: bool,
    /// True when an SBST session is active on the core.
    pub testing: bool,
}

/// The full system state captured at one epoch boundary: everything the
/// mapper, scheduler and governor saw when they made their decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// Epoch-close time, seconds.
    pub t: f64,
    /// PID admission cap at that instant, watts.
    pub cap_w: f64,
    /// Headroom under the effective cap after reservations, watts.
    pub headroom_w: f64,
    /// Measured chip power over the closing epoch, watts.
    pub power_w: f64,
    /// Power drawn by test sessions over the closing epoch, watts.
    pub test_power_w: f64,
    /// Live session power reservations.
    pub reservations: u32,
    /// Applications waiting in the pending queue.
    pub pending_apps: u32,
    /// Admitted applications still running.
    pub running_apps: u32,
    /// SBST sessions in flight.
    pub active_tests: u32,
    /// Per-core state, indexed by dense node id.
    pub cores: Vec<CoreState>,
}

/// Bounded flight-recorder ring for [`StateSnapshot`]s.
///
/// Uses the same stride-doubling decimation as
/// [`TraceSeries`](crate::trace::TraceSeries): when the ring fills it
/// halves itself (keeping every second snapshot) and doubles the sampling
/// stride, so an arbitrarily long run keeps a uniform thinning of its
/// state history in bounded memory. The thinning is a function of the
/// push count alone — never of time or memory — so recordings are
/// byte-identical across worker counts. The most recent snapshot is
/// additionally retained verbatim for end-of-run reconciliation.
#[derive(Debug, Clone, PartialEq)]
pub struct StateRecorder {
    snapshots: Vec<StateSnapshot>,
    bound: usize,
    /// Keep one snapshot out of every `stride` offered (power of two).
    stride: u64,
    /// Snapshots offered via `push` over the recorder's lifetime.
    seen: u64,
    last: Option<StateSnapshot>,
}

impl StateRecorder {
    /// A recorder that retains at most `capacity` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` — a bounded ring must at least retain a
    /// first and a latest snapshot.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity >= 2,
            "state recorder capacity must be at least 2, got {capacity}"
        );
        StateRecorder {
            snapshots: Vec::new(),
            bound: capacity,
            stride: 0,
            seen: 0,
            last: None,
        }
    }

    /// Offers one snapshot; it may be decimated away (the latest snapshot
    /// is always retained separately, see [`StateRecorder::last`]).
    pub fn push(&mut self, snap: StateSnapshot) {
        let stride = self.stride.max(1);
        let keep = self.seen % stride == 0;
        self.seen += 1;
        if !keep {
            self.last = Some(snap);
            return;
        }
        if self.snapshots.len() >= self.bound {
            // Halve: keep even indices, then record every second snapshot.
            let mut i = 0;
            self.snapshots.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride = stride * 2;
            if (self.seen - 1) % self.stride != 0 {
                self.last = Some(snap);
                return; // falls off the coarser grid
            }
        }
        self.last = Some(snap.clone());
        self.snapshots.push(snap);
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> &[StateSnapshot] {
        &self.snapshots
    }

    /// Snapshots offered over the recorder's lifetime.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The most recent snapshot, exact (never decimated).
    pub fn last(&self) -> Option<&StateSnapshot> {
        self.last.as_ref()
    }

    /// Finishes recording, yielding the timeline carried on the report.
    pub fn into_timeline(self) -> StateTimeline {
        StateTimeline {
            snapshots: self.snapshots,
            last: self.last,
            seen: self.seen,
            stride: self.stride.max(1),
            capacity: self.bound,
        }
    }
}

/// A finished flight recording: the decimated snapshot ring plus the
/// exact final snapshot, as returned on a run report. An empty timeline
/// (the default) means recording was not enabled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StateTimeline {
    snapshots: Vec<StateSnapshot>,
    last: Option<StateSnapshot>,
    seen: u64,
    stride: u64,
    capacity: usize,
}

impl StateTimeline {
    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> &[StateSnapshot] {
        &self.snapshots
    }

    /// The exact final snapshot (never decimated), if anything was recorded.
    pub fn last(&self) -> Option<&StateSnapshot> {
        self.last.as_ref()
    }

    /// Snapshots offered over the run (≥ retained count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Final sampling stride (1 = nothing was decimated).
    pub fn stride(&self) -> u64 {
        self.stride.max(1)
    }

    /// The configured ring capacity (0 when recording was disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when recording was disabled or the run closed no epochs.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Cores per snapshot (0 for an empty timeline).
    pub fn core_count(&self) -> usize {
        self.snapshots.first().map_or(0, |s| s.cores.len())
    }
}

// ---------------------------------------------------------------------------
// Phase profiler: deterministic self-profiling of the control loop.
// ---------------------------------------------------------------------------

/// One instrumented phase of the epoch control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// PID governor: cap move + budget resize.
    Pid,
    /// Fault-injection activation sweep.
    Fault,
    /// Pending-queue admission and mapping.
    Map,
    /// SBST session scheduling (retest lane + opportunity scan).
    Schedule,
    /// Event-plane drain (task/test completions).
    Events,
    /// Epoch close: power accounting, tracing, thermal step, snapshot.
    Thermal,
}

impl Phase {
    /// Number of phases (array size for per-phase accumulators).
    pub const COUNT: usize = 6;

    /// All phases, in [`Phase::index`] order.
    pub const ALL: [Phase; Self::COUNT] = [
        Phase::Pid,
        Phase::Fault,
        Phase::Map,
        Phase::Schedule,
        Phase::Events,
        Phase::Thermal,
    ];

    /// Dense index of this phase.
    pub fn index(self) -> usize {
        match self {
            Phase::Pid => 0,
            Phase::Fault => 1,
            Phase::Map => 2,
            Phase::Schedule => 3,
            Phase::Events => 4,
            Phase::Thermal => 5,
        }
    }

    /// Stable lower-snake name used in report output.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Pid => "pid",
            Phase::Fault => "fault",
            Phase::Map => "map",
            Phase::Schedule => "schedule",
            Phase::Events => "events",
            Phase::Thermal => "thermal",
        }
    }
}

/// Phase-boundary hook: the control loop brackets each phase with
/// `enter`/`exit` calls. The simulator itself only ever installs the
/// no-op [`NullPhaseObserver`] — wall-clock time is lint-banned outside
/// `crates/bench`, where a real timer implements this trait to attach
/// per-phase wall time to a job.
pub trait PhaseObserver {
    /// A phase begins.
    fn enter(&mut self, phase: Phase);
    /// The matching phase ends.
    fn exit(&mut self, phase: Phase);
}

/// The default phase observer: both hooks are no-ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPhaseObserver;

impl PhaseObserver for NullPhaseObserver {
    #[inline]
    fn enter(&mut self, _phase: Phase) {}
    #[inline]
    fn exit(&mut self, _phase: Phase) {}
}

/// Deterministic self-profile of one run: per-phase work counters and
/// scratch-buffer high-water marks, maintained by the epoch control loop.
///
/// Everything here counts *events processed*, never wall-clock time —
/// the profile is part of the report and must be byte-identical across
/// worker counts (wall time stays in `crates/bench`, attached per job by
/// the batch runner through [`PhaseObserver`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Control epochs executed.
    pub epochs: u64,
    /// PID governor cap moves (one per epoch).
    pub pid_updates: u64,
    /// Fault activation sweep passes.
    pub fault_sweeps: u64,
    /// Injected faults that became active during sweeps.
    pub fault_activations: u64,
    /// Pending-queue admission scans.
    pub admit_scans: u64,
    /// Applications admitted and mapped.
    pub apps_admitted: u64,
    /// Test-scheduler planning passes.
    pub sched_calls: u64,
    /// Confirmation retests planned by the priority lane.
    pub retests_planned: u64,
    /// Sessions launched (reservation succeeded).
    pub sched_launches: u64,
    /// Sessions denied for lack of power headroom.
    pub sched_denials: u64,
    /// Non-empty event batches drained from the calendar.
    pub queue_batches: u64,
    /// Events handled in the event plane.
    pub events_processed: u64,
    /// Transient thermal-grid steps.
    pub thermal_steps: u64,
    /// Flight-recorder snapshots offered.
    pub snapshots: u64,
    /// Largest single drained batch (scratch high-water mark).
    pub batch_high_water: u64,
    /// Deepest pending-application queue.
    pub pending_high_water: u64,
    /// Largest running-application table.
    pub running_high_water: u64,
    /// Largest scheduler candidate scratch.
    pub candidates_high_water: u64,
    /// Largest per-epoch launch plan.
    pub launches_high_water: u64,
    /// O(1) maintained free-set reads by the admission loop (one per
    /// pending-application check that used to be a full-core filter).
    pub free_set_queries: u64,
    /// Full mapper-snapshot rebuilds (at most one per admission tick,
    /// plus one per migration remap).
    pub ctx_rebuilds: u64,
    /// In-place mapper-snapshot patches applied between admissions of
    /// one tick instead of full rebuilds.
    pub ctx_delta_updates: u64,
    /// Test-candidate bitset bits visited by scheduling passes (the
    /// replacement for the two full-array candidate/retest scans).
    pub candidates_scanned: u64,
    /// Scheduler ranked-lane heap pops (lazy partial selection; the
    /// replacement for the full criticality sort).
    pub heap_pops: u64,
    /// Cores newly marked dirty across all generations (re-marks within
    /// a generation do not count).
    pub dirty_marks: u64,
}

impl PhaseProfile {
    /// Number of profile counters (see [`PhaseProfile::entries`]).
    pub const COUNT: usize = 25;

    /// `(name, value)` pairs for every counter, in a stable order — the
    /// single source of truth for rendering (prom exposition, report
    /// tables) and for audit reconciliation.
    pub fn entries(&self) -> [(&'static str, u64); Self::COUNT] {
        [
            ("epochs", self.epochs),
            ("pid_updates", self.pid_updates),
            ("fault_sweeps", self.fault_sweeps),
            ("fault_activations", self.fault_activations),
            ("admit_scans", self.admit_scans),
            ("apps_admitted", self.apps_admitted),
            ("sched_calls", self.sched_calls),
            ("retests_planned", self.retests_planned),
            ("sched_launches", self.sched_launches),
            ("sched_denials", self.sched_denials),
            ("queue_batches", self.queue_batches),
            ("events_processed", self.events_processed),
            ("thermal_steps", self.thermal_steps),
            ("snapshots", self.snapshots),
            ("batch_high_water", self.batch_high_water),
            ("pending_high_water", self.pending_high_water),
            ("running_high_water", self.running_high_water),
            ("candidates_high_water", self.candidates_high_water),
            ("launches_high_water", self.launches_high_water),
            ("free_set_queries", self.free_set_queries),
            ("ctx_rebuilds", self.ctx_rebuilds),
            ("ctx_delta_updates", self.ctx_delta_updates),
            ("candidates_scanned", self.candidates_scanned),
            ("heap_pops", self.heap_pops),
            ("dirty_marks", self.dirty_marks),
        ]
    }

    /// Raises a high-water slot to `depth` if it is deeper than the mark.
    #[inline]
    pub fn raise(slot: &mut u64, depth: usize) {
        *slot = (*slot).max(depth as u64);
    }
}

// ---------------------------------------------------------------------------
// Live progress counters: deterministic epoch/event counters a running
// simulation publishes for out-of-band heartbeat rendering.
// ---------------------------------------------------------------------------

/// Lock-free progress counters a running [`System`] publishes once per
/// control epoch (installed via `System::set_progress`). The counters
/// carry only *deterministic* quantities — epoch and event counts, never
/// wall-clock — so attaching them cannot perturb a run; the bench-side
/// heartbeat renderer pairs them with its own wall clock to compute
/// percent/ETA and to flag stalls. All accesses are `Relaxed`: the
/// reader only ever renders a recent-enough snapshot.
///
/// [`System`]: https://docs.rs/ — `manytest_core::System`
#[derive(Debug, Default)]
pub struct ProgressCounters {
    /// Control epochs the run will execute (0 until the run starts).
    pub epochs_total: AtomicU64,
    /// Control epochs closed so far.
    pub epochs_done: AtomicU64,
    /// Telemetry events emitted so far (ids minted, stored or not).
    pub events_emitted: AtomicU64,
    /// Event records dropped so far by a saturated bounded [`EventLog`].
    pub events_dropped: AtomicU64,
    /// 1 once the run finalized its report.
    pub finished: AtomicU64,
}

/// One coherent-enough reading of a [`ProgressCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Control epochs the run will execute.
    pub epochs_total: u64,
    /// Control epochs closed so far.
    pub epochs_done: u64,
    /// Telemetry events emitted so far.
    pub events_emitted: u64,
    /// Event records dropped by a saturated bounded log.
    pub events_dropped: u64,
    /// Whether the run finalized.
    pub finished: bool,
}

impl ProgressCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the run as started with `total` control epochs ahead.
    pub fn begin(&self, total: u64) {
        self.epochs_total.store(total, Ordering::Relaxed);
    }

    /// Publishes one epoch close: epochs done, events emitted and events
    /// dropped so far.
    pub fn tick(&self, done: u64, emitted: u64, dropped: u64) {
        self.epochs_done.store(done, Ordering::Relaxed);
        self.events_emitted.store(emitted, Ordering::Relaxed);
        self.events_dropped.store(dropped, Ordering::Relaxed);
    }

    /// Marks the run finished, recording the final dropped-record count.
    pub fn finish(&self, dropped: u64) {
        self.events_dropped.store(dropped, Ordering::Relaxed);
        self.finished.store(1, Ordering::Relaxed);
    }

    /// Reads all counters (each individually `Relaxed`; the combination
    /// may mix adjacent epochs, which heartbeat rendering tolerates).
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            epochs_total: self.epochs_total.load(Ordering::Relaxed),
            epochs_done: self.epochs_done.load(Ordering::Relaxed),
            events_emitted: self.events_emitted.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed) != 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec impls: exact round-trips for everything a Report carries.
// Implemented here (not in `wire.rs`) because encoding needs the private
// fields, and because an exhaustive destructuring next to the type
// definition turns "field added but codec not updated" into a compile
// error.
// ---------------------------------------------------------------------------

impl Wire for AbortReason {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(match self {
            AbortReason::MappedOver => 0,
            AbortReason::TaskPreempted => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u64()? {
            0 => Ok(AbortReason::MappedOver),
            1 => Ok(AbortReason::TaskPreempted),
            _ => r.err("AbortReason index"),
        }
    }
}

impl Wire for SimEvent {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.kind_index() as u64);
        // Exhaustive: a new variant (or field) without codec coverage
        // fails to compile.
        match *self {
            SimEvent::AppArrived { app, tasks } | SimEvent::AppRejected { app, tasks } => {
                w.u64(app);
                tasks.encode(w);
            }
            SimEvent::AppMapped {
                app,
                tasks,
                first_node,
                region_w,
                region_h,
                level,
                hop_cost,
                queue_wait,
                headroom,
            } => {
                w.u64(app);
                tasks.encode(w);
                first_node.encode(w);
                region_w.encode(w);
                region_h.encode(w);
                level.encode(w);
                w.f64(hop_cost);
                w.f64(queue_wait);
                w.f64(headroom);
            }
            SimEvent::AppCompleted { app, latency } => {
                w.u64(app);
                w.f64(latency);
            }
            SimEvent::TestLaunched { core, routine, level, power, headroom } => {
                core.encode(w);
                routine.encode(w);
                level.encode(w);
                w.f64(power);
                w.f64(headroom);
            }
            SimEvent::TestDeniedPower { core, needed, headroom } => {
                core.encode(w);
                w.f64(needed);
                w.f64(headroom);
            }
            SimEvent::TestAborted { core, reason } => {
                core.encode(w);
                reason.encode(w);
            }
            SimEvent::TestCompleted { core, routine, level, covered_levels, interval } => {
                core.encode(w);
                routine.encode(w);
                level.encode(w);
                covered_levels.encode(w);
                w.f64(interval);
            }
            SimEvent::CapAdjusted { cap, measured, headroom, reservations } => {
                w.f64(cap);
                w.f64(measured);
                w.f64(headroom);
                reservations.encode(w);
            }
            SimEvent::DvfsTransition { core, from, to } => {
                core.encode(w);
                from.encode(w);
                to.encode(w);
            }
            SimEvent::FaultActivated { core } => core.encode(w),
            SimEvent::FaultDetected { core, latency } => {
                core.encode(w);
                w.f64(latency);
            }
            SimEvent::CoreSuspected { core, level } => {
                core.encode(w);
                level.encode(w);
            }
            SimEvent::CoreQuarantined { core, retests }
            | SimEvent::CoreCleared { core, retests } => {
                core.encode(w);
                retests.encode(w);
            }
            SimEvent::AppAborted { app, core } | SimEvent::AppRestarted { app, core } => {
                w.u64(app);
                core.encode(w);
            }
            SimEvent::AppMigrated { app, core, moved_tasks, delay } => {
                w.u64(app);
                core.encode(w);
                moved_tasks.encode(w);
                w.f64(delay);
            }
            SimEvent::CoreProbeLaunched { core, streak, inflight } => {
                core.encode(w);
                streak.encode(w);
                inflight.encode(w);
            }
            SimEvent::CoreReadmitted { core, probes } => {
                core.encode(w);
                probes.encode(w);
            }
            SimEvent::CoreRequarantined { core, backoff } => {
                core.encode(w);
                backoff.encode(w);
            }
            SimEvent::AppCheckpointed { app, tasks, bytes } => {
                w.u64(app);
                tasks.encode(w);
                w.u64(bytes);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u64()? {
            0 => SimEvent::AppArrived { app: r.u64()?, tasks: u32::decode(r)? },
            1 => SimEvent::AppRejected { app: r.u64()?, tasks: u32::decode(r)? },
            2 => SimEvent::AppMapped {
                app: r.u64()?,
                tasks: u32::decode(r)?,
                first_node: u32::decode(r)?,
                region_w: u16::decode(r)?,
                region_h: u16::decode(r)?,
                level: u8::decode(r)?,
                hop_cost: r.f64()?,
                queue_wait: r.f64()?,
                headroom: r.f64()?,
            },
            3 => SimEvent::AppCompleted { app: r.u64()?, latency: r.f64()? },
            4 => SimEvent::TestLaunched {
                core: u32::decode(r)?,
                routine: u16::decode(r)?,
                level: u8::decode(r)?,
                power: r.f64()?,
                headroom: r.f64()?,
            },
            5 => SimEvent::TestDeniedPower {
                core: u32::decode(r)?,
                needed: r.f64()?,
                headroom: r.f64()?,
            },
            6 => SimEvent::TestAborted { core: u32::decode(r)?, reason: AbortReason::decode(r)? },
            7 => SimEvent::TestCompleted {
                core: u32::decode(r)?,
                routine: u16::decode(r)?,
                level: u8::decode(r)?,
                covered_levels: u8::decode(r)?,
                interval: r.f64()?,
            },
            8 => SimEvent::CapAdjusted {
                cap: r.f64()?,
                measured: r.f64()?,
                headroom: r.f64()?,
                reservations: u32::decode(r)?,
            },
            9 => SimEvent::DvfsTransition {
                core: u32::decode(r)?,
                from: i16::decode(r)?,
                to: i16::decode(r)?,
            },
            10 => SimEvent::FaultActivated { core: u32::decode(r)? },
            11 => SimEvent::FaultDetected { core: u32::decode(r)?, latency: r.f64()? },
            12 => SimEvent::CoreSuspected { core: u32::decode(r)?, level: u8::decode(r)? },
            13 => SimEvent::CoreQuarantined { core: u32::decode(r)?, retests: u32::decode(r)? },
            14 => SimEvent::CoreCleared { core: u32::decode(r)?, retests: u32::decode(r)? },
            15 => SimEvent::AppAborted { app: r.u64()?, core: u32::decode(r)? },
            16 => SimEvent::AppRestarted { app: r.u64()?, core: u32::decode(r)? },
            17 => SimEvent::AppMigrated {
                app: r.u64()?,
                core: u32::decode(r)?,
                moved_tasks: u32::decode(r)?,
                delay: r.f64()?,
            },
            18 => SimEvent::CoreProbeLaunched {
                core: u32::decode(r)?,
                streak: u32::decode(r)?,
                inflight: u32::decode(r)?,
            },
            19 => SimEvent::CoreReadmitted { core: u32::decode(r)?, probes: u32::decode(r)? },
            20 => SimEvent::CoreRequarantined { core: u32::decode(r)?, backoff: u32::decode(r)? },
            21 => SimEvent::AppCheckpointed {
                app: r.u64()?,
                tasks: u32::decode(r)?,
                bytes: r.u64()?,
            },
            _ => return r.err("SimEvent kind index"),
        })
    }
}

impl Wire for CauseKind {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.index() as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let i = r.u64()?;
        match usize::try_from(i) {
            Ok(i) if i < Self::COUNT => Ok(Self::ALL[i]),
            _ => r.err("CauseKind index"),
        }
    }
}

impl Wire for CauseLink {
    fn encode(&self, w: &mut WireWriter) {
        let CauseLink { kind, id } = self;
        kind.encode(w);
        w.u64(id.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CauseLink { kind: CauseKind::decode(r)?, id: EventId(r.u64()?) })
    }
}

impl Wire for EventRecord {
    fn encode(&self, w: &mut WireWriter) {
        let EventRecord { id, t, cause, ev } = self;
        w.u64(id.0);
        w.f64(*t);
        cause.encode(w);
        ev.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EventRecord {
            id: EventId(r.u64()?),
            t: r.f64()?,
            cause: Option::<CauseLink>::decode(r)?,
            ev: SimEvent::decode(r)?,
        })
    }
}

impl Wire for EventLog {
    fn encode(&self, w: &mut WireWriter) {
        let EventLog { events, capacity, dropped, kind_counts, next_id } = self;
        events.encode(w);
        capacity.encode(w);
        w.u64(*dropped);
        for &c in kind_counts {
            w.u64(c);
        }
        w.u64(*next_id);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let events = Vec::<EventRecord>::decode(r)?;
        let capacity = usize::decode(r)?;
        let dropped = r.u64()?;
        let mut kind_counts = [0u64; SimEvent::KIND_COUNT];
        for slot in &mut kind_counts {
            *slot = r.u64()?;
        }
        let next_id = r.u64()?;
        Ok(EventLog { events, capacity, dropped, kind_counts, next_id })
    }
}

impl Wire for HealthCode {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(match self {
            HealthCode::Healthy => 0,
            HealthCode::Suspect => 1,
            HealthCode::Quarantined => 2,
            HealthCode::Probation => 3,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u64()? {
            0 => Ok(HealthCode::Healthy),
            1 => Ok(HealthCode::Suspect),
            2 => Ok(HealthCode::Quarantined),
            3 => Ok(HealthCode::Probation),
            _ => r.err("HealthCode index"),
        }
    }
}

impl Wire for CoreState {
    fn encode(&self, w: &mut WireWriter) {
        let CoreState { power_w, temp_k, vf_level, health, occupied, testing } = self;
        w.f64(*power_w);
        w.f64(*temp_k);
        vf_level.encode(w);
        health.encode(w);
        w.bool(*occupied);
        w.bool(*testing);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CoreState {
            power_w: r.f64()?,
            temp_k: r.f64()?,
            vf_level: i16::decode(r)?,
            health: HealthCode::decode(r)?,
            occupied: r.bool()?,
            testing: r.bool()?,
        })
    }
}

impl Wire for StateSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        let StateSnapshot {
            t,
            cap_w,
            headroom_w,
            power_w,
            test_power_w,
            reservations,
            pending_apps,
            running_apps,
            active_tests,
            cores,
        } = self;
        w.f64(*t);
        w.f64(*cap_w);
        w.f64(*headroom_w);
        w.f64(*power_w);
        w.f64(*test_power_w);
        reservations.encode(w);
        pending_apps.encode(w);
        running_apps.encode(w);
        active_tests.encode(w);
        cores.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StateSnapshot {
            t: r.f64()?,
            cap_w: r.f64()?,
            headroom_w: r.f64()?,
            power_w: r.f64()?,
            test_power_w: r.f64()?,
            reservations: u32::decode(r)?,
            pending_apps: u32::decode(r)?,
            running_apps: u32::decode(r)?,
            active_tests: u32::decode(r)?,
            cores: Vec::<CoreState>::decode(r)?,
        })
    }
}

impl Wire for StateTimeline {
    fn encode(&self, w: &mut WireWriter) {
        let StateTimeline { snapshots, last, seen, stride, capacity } = self;
        snapshots.encode(w);
        last.encode(w);
        w.u64(*seen);
        w.u64(*stride);
        capacity.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StateTimeline {
            snapshots: Vec::<StateSnapshot>::decode(r)?,
            last: Option::<StateSnapshot>::decode(r)?,
            seen: r.u64()?,
            stride: r.u64()?,
            capacity: usize::decode(r)?,
        })
    }
}

impl Wire for PhaseProfile {
    fn encode(&self, w: &mut WireWriter) {
        // Exhaustive destructuring: adding a counter without extending
        // the codec is a compile error.
        let PhaseProfile {
            epochs,
            pid_updates,
            fault_sweeps,
            fault_activations,
            admit_scans,
            apps_admitted,
            sched_calls,
            retests_planned,
            sched_launches,
            sched_denials,
            queue_batches,
            events_processed,
            thermal_steps,
            snapshots,
            batch_high_water,
            pending_high_water,
            running_high_water,
            candidates_high_water,
            launches_high_water,
            free_set_queries,
            ctx_rebuilds,
            ctx_delta_updates,
            candidates_scanned,
            heap_pops,
            dirty_marks,
        } = self;
        for v in [
            epochs,
            pid_updates,
            fault_sweeps,
            fault_activations,
            admit_scans,
            apps_admitted,
            sched_calls,
            retests_planned,
            sched_launches,
            sched_denials,
            queue_batches,
            events_processed,
            thermal_steps,
            snapshots,
            batch_high_water,
            pending_high_water,
            running_high_water,
            candidates_high_water,
            launches_high_water,
            free_set_queries,
            ctx_rebuilds,
            ctx_delta_updates,
            candidates_scanned,
            heap_pops,
            dirty_marks,
        ] {
            w.u64(*v);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PhaseProfile {
            epochs: r.u64()?,
            pid_updates: r.u64()?,
            fault_sweeps: r.u64()?,
            fault_activations: r.u64()?,
            admit_scans: r.u64()?,
            apps_admitted: r.u64()?,
            sched_calls: r.u64()?,
            retests_planned: r.u64()?,
            sched_launches: r.u64()?,
            sched_denials: r.u64()?,
            queue_batches: r.u64()?,
            events_processed: r.u64()?,
            thermal_steps: r.u64()?,
            snapshots: r.u64()?,
            batch_high_water: r.u64()?,
            pending_high_water: r.u64()?,
            running_high_water: r.u64()?,
            candidates_high_water: r.u64()?,
            launches_high_water: r.u64()?,
            free_set_queries: r.u64()?,
            ctx_rebuilds: r.u64()?,
            ctx_delta_updates: r.u64()?,
            candidates_scanned: r.u64()?,
            heap_pops: r.u64()?,
            dirty_marks: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(f64, SimEvent)> {
        vec![
            (0.001, SimEvent::AppArrived { app: 0, tasks: 4 }),
            (
                0.002,
                SimEvent::AppMapped {
                    app: 0,
                    tasks: 4,
                    first_node: 17,
                    region_w: 2,
                    region_h: 2,
                    level: 4,
                    hop_cost: 6.0,
                    queue_wait: 0.001,
                    headroom: 12.5,
                },
            ),
            (
                0.003,
                SimEvent::TestLaunched {
                    core: 3,
                    routine: 1,
                    level: 0,
                    power: 0.25,
                    headroom: 3.5,
                },
            ),
            (
                0.004,
                SimEvent::TestAborted {
                    core: 3,
                    reason: AbortReason::MappedOver,
                },
            ),
            (0.005, SimEvent::FaultDetected { core: 3, latency: 0.004 }),
            (0.006, SimEvent::CoreSuspected { core: 3, level: 2 }),
            (0.007, SimEvent::CoreQuarantined { core: 3, retests: 3 }),
            (0.008, SimEvent::CoreCleared { core: 5, retests: 3 }),
            (0.009, SimEvent::AppAborted { app: 1, core: 3 }),
            (0.010, SimEvent::AppRestarted { app: 2, core: 3 }),
            (
                0.011,
                SimEvent::AppMigrated {
                    app: 3,
                    core: 3,
                    moved_tasks: 4,
                    delay: 0.0002,
                },
            ),
        ]
    }

    #[test]
    fn kind_index_matches_kind_table() {
        for (t, ev) in sample_events() {
            assert_eq!(SimEvent::KINDS[ev.kind_index()], ev.kind(), "at t={t}");
        }
    }

    #[test]
    fn json_lines_carry_kind_and_fields() {
        let mut log = EventLog::new();
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 11);
        assert!(jsonl.contains("\"kind\":\"AppMapped\""));
        assert!(jsonl.contains("\"region_w\":2"));
        assert!(jsonl.contains("\"reason\":\"mapped_over\""));
        assert!(jsonl.contains("\"kind\":\"CoreQuarantined\""));
        assert!(jsonl.contains("\"retests\":3"));
        assert!(jsonl.contains("\"moved_tasks\":4"));
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"t\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn bounded_log_keeps_exact_counts_while_dropping_samples() {
        let mut log = EventLog::bounded(2);
        for _ in 0..10 {
            log.push(1.0, SimEvent::FaultActivated { core: 0 });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 8);
        assert_eq!(log.count("FaultActivated"), 10);
        assert_eq!(log.total(), 10);
    }

    #[test]
    fn jsonl_and_csv_round_trip_the_kind_counts() {
        let mut log = EventLog::new();
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        let from_jsonl = jsonl_kind_counts(&log.to_jsonl());
        // CSV rows carry the same kinds; count them independently.
        let csv = log.to_csv();
        let mut from_csv: BTreeMap<String, u64> = BTreeMap::new();
        for line in csv.lines().skip(1) {
            let kind = line.split(',').nth(1).expect("t,kind row");
            *from_csv.entry(kind.to_owned()).or_insert(0) += 1;
        }
        assert_eq!(from_jsonl, from_csv);
        for (kind, n) in log.kind_counts() {
            assert_eq!(from_jsonl.get(kind).copied().unwrap_or(0), n, "kind {kind}");
        }
    }

    #[test]
    fn jsonl_writer_streams_identical_bytes() {
        let mut log = EventLog::new();
        let mut sink = JsonlWriter::new(Vec::new());
        for (i, (t, ev)) in sample_events().into_iter().enumerate() {
            log.push(t, ev);
            sink.on_event(&EventRecord {
                id: EventId(i as u64),
                t,
                cause: None,
                ev,
            });
        }
        let streamed = sink.finish().expect("vec never fails");
        assert_eq!(String::from_utf8(streamed).unwrap(), log.to_jsonl());
    }

    /// Writer that accepts `ok_writes` writes, then fails every write
    /// with `BrokenPipe`.
    #[derive(Debug)]
    struct FailAfter(usize);

    impl io::Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.0 == 0 {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            self.0 -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_latches_the_first_io_error_and_surfaces_it_once() {
        let mut sink = JsonlWriter::new(FailAfter(1));
        sink.note(0.0, "written");
        sink.note(1.0, "latches the error");
        sink.note(2.0, "dropped silently, no panic");
        let err = sink.flush().expect_err("latched error surfaces on flush");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The latch surfaces exactly once: a second flush is clean.
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn jsonl_writer_finish_reports_the_latched_error() {
        let mut sink = JsonlWriter::new(FailAfter(0));
        sink.on_event(&EventRecord {
            id: EventId(0),
            t: 0.0,
            cause: None,
            ev: SimEvent::FaultActivated { core: 1 },
        });
        let err = sink.finish().expect_err("streaming error reaches finish");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn take_log_drains_the_observer() {
        let mut log = EventLog::new();
        log.push(1.0, SimEvent::FaultActivated { core: 1 });
        let taken = log.take_log().expect("event log yields itself");
        assert_eq!(taken.len(), 1);
        assert_eq!(log.len(), 0, "taking must leave an empty log behind");
    }

    #[test]
    fn registry_counts_events_and_renders_summary() {
        let mut reg = CounterRegistry::new();
        for (i, (t, ev)) in sample_events().into_iter().enumerate() {
            reg.on_event(&EventRecord {
                id: EventId(i as u64),
                t,
                cause: None,
                ev,
            });
        }
        assert_eq!(reg.counter("AppArrived"), 1);
        assert_eq!(reg.counter("nonexistent"), 0);
        reg.declare_histogram("wait_ms", 0.0, 4.0, 4);
        reg.record("wait_ms", 1.0);
        reg.record("wait_ms", 9.0); // overflow
        let s = reg.summary();
        assert!(s.contains("AppArrived = 1"));
        assert!(s.contains("wait_ms: 2 samples (0 under, 1 over)"));
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn recording_into_undeclared_histogram_panics() {
        CounterRegistry::new().record("missing", 1.0);
    }

    #[test]
    fn null_observer_is_a_noop() {
        let mut obs = NullObserver;
        obs.on_event(&EventRecord {
            id: EventId(0),
            t: 0.0,
            cause: None,
            ev: SimEvent::FaultActivated { core: 0 },
        });
        assert!(obs.take_log().is_none());
    }

    #[test]
    fn push_assigns_sequential_ids_and_records_causes() {
        let mut log = EventLog::new();
        let root = log.push(1.0, SimEvent::FaultActivated { core: 2 });
        assert_eq!(root, EventId(0));
        let detect = log.push_caused(
            2.0,
            Some(CauseLink::new(CauseKind::Activation, root)),
            SimEvent::FaultDetected { core: 2, latency: 1.0 },
        );
        assert_eq!(detect, EventId(1));
        let recs = log.events();
        assert_eq!(recs[0].cause, None);
        assert_eq!(recs[1].cause, Some(CauseLink::new(CauseKind::Activation, root)));
        assert_eq!(recs[1].id, detect);
    }

    #[test]
    fn record_json_carries_id_and_cause_link() {
        let rec = EventRecord {
            id: EventId(7),
            t: 0.25,
            cause: Some(CauseLink::new(CauseKind::Detection, EventId(3))),
            ev: SimEvent::CoreSuspected { core: 4, level: 2 },
        };
        let mut out = String::new();
        rec.write_json(&mut out);
        assert_eq!(
            out,
            "{\"t\":0.25,\"id\":7,\"cause\":3,\"link\":\"detection\",\
             \"kind\":\"CoreSuspected\",\"core\":4,\"level\":2}"
        );
        // A root renders without cause fields and still parses for kind
        // counting.
        let root = EventRecord {
            id: EventId(0),
            t: 0.5,
            cause: None,
            ev: SimEvent::FaultActivated { core: 1 },
        };
        let mut out = String::new();
        root.write_json(&mut out);
        assert_eq!(out, "{\"t\":0.5,\"id\":0,\"kind\":\"FaultActivated\",\"core\":1}");
        let counts = jsonl_kind_counts(&out);
        assert_eq!(counts.get("FaultActivated"), Some(&1));
    }

    #[test]
    fn cause_kind_table_round_trips_and_names_real_kinds() {
        for (i, k) in CauseKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            let (causes, effects) = k.expected();
            assert!(!causes.is_empty() && !effects.is_empty());
            for name in causes.iter().chain(effects) {
                assert!(
                    SimEvent::KINDS.contains(name),
                    "{} names unknown kind {name}",
                    k.as_str()
                );
            }
            // Every effect kind in the table is one the audit requires a
            // cause for — except TestLaunched, whose ranked-lane
            // launches are roots.
            for name in effects.iter().filter(|&&n| n != "TestLaunched") {
                let idx = SimEvent::KINDS.iter().position(|k| k == name).unwrap();
                assert!(SimEvent::cause_required(idx), "{name} must require a cause");
            }
        }
        // Root kinds are exactly the kinds exempt from the requirement.
        for (i, name) in SimEvent::KINDS.iter().enumerate() {
            let is_root = SimEvent::ROOT_KINDS.contains(name);
            assert_eq!(!SimEvent::cause_required(i), is_root, "kind {name}");
        }
    }

    #[test]
    fn emit_record_mints_gapless_ids() {
        let mut log = EventLog::new();
        let mut next_id = 0u64;
        let a = emit_record(&mut log, &mut next_id, 1.0, None, SimEvent::FaultActivated {
            core: 0,
        });
        let b = emit_record(
            &mut log,
            &mut next_id,
            2.0,
            Some(CauseLink::new(CauseKind::Activation, a)),
            SimEvent::FaultDetected { core: 0, latency: 1.0 },
        );
        assert_eq!((a, b), (EventId(0), EventId(1)));
        assert_eq!(next_id, 2);
        assert_eq!(log.events()[1].cause.unwrap().id, a);
    }

    #[test]
    fn kind_counts_survive_when_only_counts_remain() {
        // A log with capacity 0 stores nothing but still reconciles.
        let mut log = EventLog::bounded(0);
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        assert!(log.is_empty());
        assert_eq!(log.total(), 11);
        assert_eq!(log.count("TestLaunched"), 1);
        assert_eq!(log.count("CoreSuspected"), 1);
    }

    #[test]
    fn json_str_escapes_quotes_backslashes_and_control_chars() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\te\r\x01f");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\r\\u0001f\"");
    }

    #[test]
    fn json_str_passes_non_ascii_through() {
        let mut out = String::new();
        write_json_str(&mut out, "温度 π ≈ 3.14");
        assert_eq!(out, "\"温度 π ≈ 3.14\"");
    }

    #[test]
    fn jsonl_writer_note_escapes_and_skips_kind_counting() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.note(0.5, "header \"v1\"\npath=C:\\tmp");
        sink.on_event(&EventRecord {
            id: EventId(0),
            t: 1.0,
            cause: None,
            ev: SimEvent::FaultActivated { core: 2 },
        });
        sink.note(2.0, "done 完了");
        let bytes = sink.finish().expect("vec never fails");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("\"note\":\"header \\\"v1\\\"\\npath=C:\\\\tmp\""));
        assert!(text.contains("完了"));
        // Notes carry no "kind": count validation must ignore them.
        let counts = jsonl_kind_counts(&text);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts.get("FaultActivated"), Some(&1));
        // Every line is still a well-formed single JSON object.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn saturation_warning_names_dropped_kinds() {
        let mut log = EventLog::bounded(2);
        for _ in 0..5 {
            log.push(1.0, SimEvent::FaultActivated { core: 0 });
        }
        for _ in 0..2 {
            log.push(2.0, SimEvent::FaultDetected { core: 0, latency: 1.0 });
        }
        let drops = log.dropped_kind_counts();
        assert_eq!(drops.iter().sum::<u64>(), log.dropped());
        assert_eq!(log.dropped(), 5);
        let warn = log.saturation_warning().expect("log saturated");
        assert!(warn.contains("capacity 2"), "{warn}");
        assert!(warn.contains("5 events dropped"), "{warn}");
        assert!(warn.contains("FaultActivated 3"), "{warn}");
        assert!(warn.contains("FaultDetected 2"), "{warn}");
        assert_eq!(warn.lines().count(), 1, "must be a one-line warning");
    }

    #[test]
    fn unsaturated_log_has_no_warning() {
        let mut log = EventLog::bounded(16);
        log.push(1.0, SimEvent::FaultActivated { core: 0 });
        assert!(log.saturation_warning().is_none());
        assert_eq!(log.dropped_kind_counts(), [0; SimEvent::KIND_COUNT]);
    }

    fn snap(t: f64) -> StateSnapshot {
        StateSnapshot {
            t,
            cap_w: 50.0,
            headroom_w: 5.0,
            power_w: 45.0,
            test_power_w: 1.0,
            reservations: 2,
            pending_apps: 1,
            running_apps: 3,
            active_tests: 2,
            cores: vec![CoreState {
                power_w: 0.7,
                temp_k: 330.0,
                vf_level: 2,
                health: HealthCode::Healthy,
                occupied: true,
                testing: false,
            }],
        }
    }

    #[test]
    fn state_recorder_decimation_matches_trace_series() {
        // The recorder must thin exactly like TraceSeries with the same
        // bound: identical retained offer-indices for any push count.
        for pushes in [1usize, 7, 8, 9, 16, 33, 100, 257] {
            let mut rec = StateRecorder::with_capacity(8);
            let mut series = crate::trace::TraceSeries::with_bound(8);
            for i in 0..pushes {
                rec.push(snap(i as f64));
                series.push(i as f64, i as f64);
            }
            let rec_times: Vec<f64> = rec.snapshots().iter().map(|s| s.t).collect();
            let series_times: Vec<f64> = series.points().iter().map(|&(t, _)| t).collect();
            assert_eq!(rec_times, series_times, "pushes = {pushes}");
            assert_eq!(rec.seen(), pushes as u64);
        }
    }

    #[test]
    fn state_recorder_always_keeps_exact_last_snapshot() {
        let mut rec = StateRecorder::with_capacity(4);
        for i in 0..100 {
            rec.push(snap(i as f64));
        }
        assert_eq!(rec.last().map(|s| s.t), Some(99.0));
        assert!(rec.snapshots().len() <= 4);
        let tl = rec.into_timeline();
        assert_eq!(tl.last().map(|s| s.t), Some(99.0));
        assert_eq!(tl.seen(), 100);
        assert!(tl.stride() > 1);
        assert_eq!(tl.core_count(), 1);
        assert!(!tl.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn state_recorder_capacity_below_two_panics() {
        let _ = StateRecorder::with_capacity(1);
    }

    #[test]
    fn empty_timeline_is_default() {
        let tl = StateTimeline::default();
        assert!(tl.is_empty());
        assert_eq!(tl.last(), None);
        assert_eq!(tl.stride(), 1);
        assert_eq!(tl.core_count(), 0);
    }

    #[test]
    fn phase_table_round_trips_indices() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(names, ["pid", "fault", "map", "schedule", "events", "thermal"]);
    }

    #[test]
    fn phase_profile_entries_cover_every_counter() {
        let mut p = PhaseProfile::default();
        p.epochs = 1;
        p.launches_high_water = 7;
        let entries = p.entries();
        assert_eq!(entries.len(), PhaseProfile::COUNT);
        // Names must be unique (they become prom metric labels).
        let mut names: Vec<&str> = entries.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PhaseProfile::COUNT);
        assert!(entries.contains(&("epochs", 1)));
        assert!(entries.contains(&("launches_high_water", 7)));
        p.free_set_queries = 11;
        p.heap_pops = 3;
        let entries = p.entries();
        assert!(entries.contains(&("free_set_queries", 11)));
        assert!(entries.contains(&("heap_pops", 3)));
        assert!(entries.contains(&("dirty_marks", 0)));
        PhaseProfile::raise(&mut p.batch_high_water, 5);
        PhaseProfile::raise(&mut p.batch_high_water, 3);
        assert_eq!(p.batch_high_water, 5);
    }

    #[test]
    fn null_phase_observer_is_a_noop() {
        let mut obs = NullPhaseObserver;
        obs.enter(Phase::Pid);
        obs.exit(Phase::Pid);
    }
}
