//! The per-core power model.
//!
//! `P_core = α · C_eff · V² · f  +  V · I_leak(V)` — the standard CMOS
//! decomposition into switching (dynamic) and leakage (static) power.
//! Activity `α ∈ [0, 1]` captures what the core is doing: idle-clocked cores
//! sit near `α ≈ 0.05`, typical workload around `α ≈ 0.4–0.6`, and SBST
//! routines — which are built to toggle as much logic as possible — run
//! hotter, `α ≈ 0.7–0.9`. Power-gated (dark) cores consume nothing.

use crate::dvfs::OperatingPoint;
use crate::tech::{TechNode, TechParams};
use serde::{Deserialize, Serialize};

/// Per-core power calculator for one technology node.
///
/// # Examples
///
/// ```
/// use manytest_power::prelude::*;
///
/// let model = PowerModel::for_node(TechNode::N16);
/// let ladder = VfLadder::for_node(TechNode::N16, 5);
/// let p_busy = model.core_power(ladder.max(), 0.5);
/// let p_idle = model.core_power(ladder.max(), PowerModel::IDLE_ACTIVITY);
/// assert!(p_idle < p_busy);
/// assert_eq!(model.gated_power(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: TechParams,
}

impl PowerModel {
    /// Activity factor of an idle but clocked core.
    pub const IDLE_ACTIVITY: f64 = 0.05;
    /// Typical activity factor of application workload.
    pub const WORKLOAD_ACTIVITY: f64 = 0.5;
    /// Activity factor of an SBST test routine (high toggle rate by design).
    pub const TEST_ACTIVITY: f64 = 0.8;

    /// Creates the model for a technology node.
    pub fn for_node(node: TechNode) -> Self {
        PowerModel {
            params: node.params(),
        }
    }

    /// The underlying technology parameters.
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// Dynamic (switching) power at `op` with activity `activity`, watts.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn dynamic_power(&self, op: OperatingPoint, activity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0,1], got {activity}"
        );
        activity * self.params.c_eff * op.voltage * op.voltage * op.frequency
    }

    /// Leakage (static) power of a powered-on core at `op`, watts.
    ///
    /// Leakage current scales with voltage (a linearised DIBL term):
    /// `I_leak(V) = I_leak,nom · (V / V_nom)`.
    pub fn leakage_power(&self, op: OperatingPoint) -> f64 {
        let i = self.params.i_leak * (op.voltage / self.params.v_nominal);
        op.voltage * i
    }

    /// Total power of a powered-on core at `op` with activity `activity`.
    pub fn core_power(&self, op: OperatingPoint, activity: f64) -> f64 {
        self.dynamic_power(op, activity) + self.leakage_power(op)
    }

    /// Power of a power-gated (dark) core: zero by definition.
    pub fn gated_power(&self) -> f64 {
        0.0
    }

    /// Power of an idle-but-clocked core at `op`.
    pub fn idle_power(&self, op: OperatingPoint) -> f64 {
        self.core_power(op, Self::IDLE_ACTIVITY)
    }

    /// Power of a core executing an SBST routine at `op`.
    pub fn test_power(&self, op: OperatingPoint) -> f64 {
        self.core_power(op, Self::TEST_ACTIVITY)
    }

    /// Energy of running at `op`/`activity` for `seconds`, joules.
    pub fn energy(&self, op: OperatingPoint, activity: f64, seconds: f64) -> f64 {
        self.core_power(op, activity) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::VfLadder;

    fn model_and_ladder() -> (PowerModel, VfLadder) {
        (
            PowerModel::for_node(TechNode::N16),
            VfLadder::for_node(TechNode::N16, 5),
        )
    }

    #[test]
    fn power_monotone_in_activity() {
        let (m, l) = model_and_ladder();
        let op = l.max();
        let mut last = -1.0;
        for a in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let p = m.core_power(op, a);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn power_monotone_in_vf_level() {
        let (m, l) = model_and_ladder();
        let powers: Vec<f64> = l.iter().map(|op| m.core_power(op, 0.5)).collect();
        assert!(powers.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn test_routines_burn_more_than_workload() {
        let (m, l) = model_and_ladder();
        let op = l.max();
        assert!(m.test_power(op) > m.core_power(op, PowerModel::WORKLOAD_ACTIVITY));
        assert!(m.core_power(op, PowerModel::WORKLOAD_ACTIVITY) > m.idle_power(op));
    }

    #[test]
    fn gated_core_consumes_nothing() {
        let (m, _) = model_and_ladder();
        assert_eq!(m.gated_power(), 0.0);
    }

    #[test]
    fn zero_activity_is_pure_leakage() {
        let (m, l) = model_and_ladder();
        let op = l.min();
        assert_eq!(m.core_power(op, 0.0), m.leakage_power(op));
        assert!(m.leakage_power(op) > 0.0);
    }

    #[test]
    fn leakage_shrinks_with_voltage() {
        let (m, l) = model_and_ladder();
        assert!(m.leakage_power(l.min()) < m.leakage_power(l.max()));
    }

    #[test]
    fn energy_scales_with_time() {
        let (m, l) = model_and_ladder();
        let op = l.max();
        let e1 = m.energy(op, 0.5, 1.0);
        let e2 = m.energy(op, 0.5, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0,1]")]
    fn invalid_activity_panics() {
        let (m, l) = model_and_ladder();
        m.core_power(l.max(), 1.5);
    }

    #[test]
    fn nominal_power_matches_tech_peak() {
        // Consistency between PowerModel and TechNode::peak_power_all_cores.
        for node in TechNode::ALL {
            let m = PowerModel::for_node(node);
            let l = VfLadder::for_node(node, 5);
            let per_core = m.core_power(l.max(), 1.0);
            let expected = node.peak_power_all_cores() / node.core_count() as f64;
            assert!(
                (per_core - expected).abs() < 1e-9,
                "{node}: {per_core} vs {expected}"
            );
        }
    }

    #[test]
    fn near_threshold_saves_substantial_power() {
        let (m, l) = model_and_ladder();
        let p_min = m.core_power(l.min(), 0.5);
        let p_max = m.core_power(l.max(), 0.5);
        assert!(
            p_min < 0.3 * p_max,
            "near-threshold should cut power >3x: {p_min} vs {p_max}"
        );
    }
}
