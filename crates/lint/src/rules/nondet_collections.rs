//! `nondet-collections`: no `HashMap`/`HashSet` in the simulation
//! crates.
//!
//! `std`'s hash containers seed their hasher from process entropy, so
//! iteration order — and therefore any event stream, JSON dump or golden
//! count derived from it — varies run to run. Every keyed container in
//! the simulation crates (and in `bench`, whose test fixtures and
//! `BENCH_repro.json` writer feed the golden gates) must be a `BTreeMap`
//! / `BTreeSet` or an index-keyed `Vec`. The rule deliberately covers
//! test code too: golden regeneration runs through it.

use super::{Rule, SIM_CRATES};
use crate::diag::Finding;
use crate::source::SourceFile;

pub struct NondetCollections;

const BANNED: [&str; 2] = ["HashMap", "HashSet"];

impl Rule for NondetCollections {
    fn id(&self) -> &'static str {
        "nondet-collections"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet are banned in simulation crates: iteration order is nondeterministic"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SIM_CRATES.contains(&file.crate_name()) {
            return;
        }
        for tok in file.code_tokens() {
            if BANNED.iter().any(|b| tok.is_ident(b)) {
                out.push(Finding {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{}` in simulation crate `{}`: iteration order is seeded per process",
                        tok.text,
                        file.crate_name()
                    ),
                    rationale: "use BTreeMap/BTreeSet (ordered) or a Vec keyed by dense index \
                                so replay and golden files stay bit-identical",
                });
            }
        }
    }
}
