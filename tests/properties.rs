//! Property-based tests over the core data structures and invariants,
//! spanning crates through the facade.

use manytest::noc::{xy_route, Coord, Mesh2D, Region, RegionSearch};
use manytest::power::{PowerBudget, PowerModel, TechNode, VfLadder, VfLevel};
use manytest::sim::{Duration, OnlineStats, SimRng, SimTime};
use manytest::workload::TaskGraphGenerator;
use proptest::prelude::*;

fn arb_coord(max: u16) -> impl Strategy<Value = Coord> {
    (0..max, 0..max).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    // ---- NoC routing -----------------------------------------------------

    #[test]
    fn xy_routes_are_minimal_connected_and_inside(
        (w, h) in (1u16..20, 1u16..20),
        sx in 0u16..20, sy in 0u16..20, dx in 0u16..20, dy in 0u16..20,
    ) {
        let mesh = Mesh2D::new(w, h);
        let src = Coord::new(sx % w, sy % h);
        let dst = Coord::new(dx % w, dy % h);
        let mut at = src;
        let mut hops = 0;
        for hop in xy_route(src, dst) {
            prop_assert_eq!(hop.from, at);
            at = hop.to();
            prop_assert!(mesh.contains(at));
            hops += 1;
        }
        prop_assert_eq!(at, dst);
        prop_assert_eq!(hops, src.manhattan(dst));
    }

    #[test]
    fn manhattan_is_a_metric(a in arb_coord(32), b in arb_coord(32), c in arb_coord(32)) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    // ---- Region search ---------------------------------------------------

    #[test]
    fn region_search_finds_enough_free_nodes(
        (w, h) in (2u16..10, 2u16..10),
        required in 1usize..20,
        mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mesh = Mesh2D::new(w, h);
        let is_free = |c: Coord| mask[mesh.node_id(c).index() % mask.len()];
        let total_free = mesh.coords().filter(|&c| is_free(c)).count();
        let search = RegionSearch::new(mesh);
        match search.find(required, is_free, |_| 0.0) {
            Some(choice) => {
                prop_assert!(total_free >= required);
                let in_region = choice.region.iter(mesh).filter(|&c| is_free(c)).count();
                prop_assert!(in_region >= required);
                prop_assert_eq!(in_region, choice.available);
            }
            None => prop_assert!(total_free < required),
        }
    }

    #[test]
    fn regions_clip_to_mesh((w, h) in (1u16..12, 1u16..12), cx in 0u16..12, cy in 0u16..12, r in 0u16..12) {
        let mesh = Mesh2D::new(w, h);
        let region = Region::new(Coord::new(cx % w, cy % h), r);
        for c in region.iter(mesh) {
            prop_assert!(mesh.contains(c));
        }
        prop_assert!(region.len(mesh) <= mesh.node_count());
    }

    // ---- Power budget ----------------------------------------------------

    #[test]
    fn budget_never_exceeds_cap_under_arbitrary_ops(
        cap in 0.0f64..200.0,
        ops in prop::collection::vec((any::<bool>(), 0.0f64..50.0), 1..60),
    ) {
        let mut budget = PowerBudget::new(cap);
        let mut live = Vec::new();
        for (release, watts) in ops {
            if release && !live.is_empty() {
                let r = live.remove(0);
                budget.release(r);
            } else if let Ok(r) = budget.reserve(watts) {
                live.push(r);
            }
            prop_assert!(budget.reserved() <= budget.cap() + 1e-9);
            let manual: f64 = live.iter().map(|r: &manytest::power::Reservation| r.watts()).sum();
            prop_assert!((budget.reserved() - manual).abs() < 1e-6);
        }
    }

    // ---- Power model -----------------------------------------------------

    #[test]
    fn power_is_monotone_in_level_and_activity(
        level_a in 0u8..5, level_b in 0u8..5,
        act_a in 0.0f64..1.0, act_b in 0.0f64..1.0,
    ) {
        let model = PowerModel::for_node(TechNode::N16);
        let ladder = VfLadder::for_node(TechNode::N16, 5);
        let (lo, hi) = if level_a <= level_b { (level_a, level_b) } else { (level_b, level_a) };
        let p_lo = model.core_power(ladder.point(VfLevel(lo)), 0.5);
        let p_hi = model.core_power(ladder.point(VfLevel(hi)), 0.5);
        prop_assert!(p_lo <= p_hi);
        let (alo, ahi) = if act_a <= act_b { (act_a, act_b) } else { (act_b, act_a) };
        let q_lo = model.core_power(ladder.max(), alo);
        let q_hi = model.core_power(ladder.max(), ahi);
        prop_assert!(q_lo <= q_hi);
    }

    // ---- Task graph generator ---------------------------------------------

    #[test]
    fn generated_graphs_always_validate(seed in any::<u64>()) {
        let generator = TaskGraphGenerator::default();
        let mut rng = SimRng::seed_from(seed);
        let g = generator.generate(&mut rng, "prop");
        prop_assert!(g.validate().is_ok());
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.task_count());
    }

    // ---- RNG --------------------------------------------------------------

    #[test]
    fn rng_ranges_are_respected(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(bound) < bound);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rng_derive_is_pure(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::seed_from(seed);
        let mut a = root.derive(&label);
        let mut b = root.derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---- Time arithmetic ---------------------------------------------------

    #[test]
    fn time_addition_is_consistent(base in 0u64..1u64 << 40, d1 in 0u64..1u64 << 20, d2 in 0u64..1u64 << 20) {
        let t = SimTime::from_ns(base);
        let a = Duration::from_ns(d1);
        let b = Duration::from_ns(d2);
        prop_assert_eq!((t + a) + b, (t + b) + a);
        prop_assert_eq!((t + a) - t, a + Duration::ZERO);
        prop_assert!((t + a).since(t) == a);
    }

    // ---- Statistics ---------------------------------------------------------

    #[test]
    fn online_stats_match_naive_computation(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut stats = OnlineStats::new();
        for &x in &xs {
            stats.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(stats.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(stats.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
}
