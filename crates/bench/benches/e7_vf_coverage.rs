//! Criterion bench regenerating E7 (DVFS-level coverage) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e7_vf_coverage, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_vf_coverage");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e7_vf_coverage(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
