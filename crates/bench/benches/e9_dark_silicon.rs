//! Criterion bench regenerating E9 (dark-silicon premise) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e9_dark_silicon, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_dark_silicon");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e9_dark_silicon(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
