//! The integrated system: builder, epoch loop and event handlers.

use crate::config::{FaultResponsePolicy, GovernorKind, MapperKind, SystemConfig};
use crate::error::BuildError;
use crate::exec::{CoreMode, RunningApp, TaskState};
use crate::metrics::{MetricsCollector, Report};
use crate::store::CoreStore;
use manytest_aging::{AgingModel, CriticalityModel, StressTracker, ThermalGrid, ThermalParams};
use manytest_map::{ConaMapper, FirstFitMapper, MapContext, Mapper, TestAwareMapper};
use manytest_noc::{ContentionModel, LinkEnergyModel, LinkLoads, Mesh2D, TrafficMatrix};
use manytest_power::{
    NaiveTdpPolicy, OperatingPoint, PidController, PowerBudget, PowerCategory, PowerGovernor,
    PowerMeter, PowerModel, VfLadder, VfLevel,
};
use manytest_sbst::{
    Fault, FaultLog, HealthBoard, RetestRequest, RoutineId, TestCandidate, TestDenial,
    TestLaunch, TestScheduler, TestSession,
};
use manytest_sim::{
    emit_record, AbortReason, CauseKind, CauseLink, CoreState, Epoch, EventId, EventLog,
    EventQueue, HealthCode, NullObserver, NullPhaseObserver, Observer, Phase, PhaseObserver,
    PhaseProfile, ProgressCounters, SimEvent, SimRng, SimTime, StateRecorder, StateSnapshot,
    Trace,
};
use manytest_workload::{AppId, Application, ArrivalProcess, TaskId, WorkloadMix};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Manifestation probability of an intermittent fault on any single
/// observation (solid faults re-fire with probability 1).
const INTERMITTENT_REFIRE: f64 = 0.35;

/// Architectural-state payload a migrated task ships across the NoC,
/// per checkpoint image (the dirty span scales the actual charge).
const MIGRATION_STATE_BITS: f64 = 65_536.0;

/// Reference dirty span for the migration charge: each moved task pays
/// `migration_delay × (1 + dirty / REF)` in transfer delay and
/// `MIGRATION_STATE_BITS × (1 + dirty / REF)` in NoC traffic, where
/// `dirty` is the time since the owning app's last checkpoint. With
/// checkpointing disabled the dirty span runs back to admission, so the
/// charge grows with everything the app ever computed.
const DIRTY_SPAN_REF_SECS: f64 = 0.010;

/// Fraction of the migration delay a checkpoint pause costs each live
/// task (the image write is local, so it is much cheaper than a
/// cross-mesh transfer of the same state).
const CHECKPOINT_PAUSE_FRACTION: f64 = 0.25;

/// Structural coverage of the re-admission lane's probe routine: a
/// short pattern replaying the confirmed failure signature, so its
/// per-pass coverage stays high despite the reduced instruction count.
const PROBE_COVERAGE: f64 = 0.9;

/// Fraction of the baseline SBST routine's instruction count a probe
/// executes (it targets one known signature, not the whole block).
const PROBE_INSTRUCTION_FRACTION: f64 = 0.25;

/// A cap that never moves: the raw TDP (used as a governor baseline).
#[derive(Debug, Clone, Copy, Default)]
struct FixedCap;

impl PowerGovernor for FixedCap {
    fn next_cap(&mut self, target: f64, _measured: f64) -> f64 {
        target
    }
    fn reset(&mut self) {}
}

/// Events resolved at exact sub-epoch times.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// The arrival process fires: enqueue an application, rearm.
    Arrival,
    /// All inputs of a task have arrived; it may start. `inc` is the
    /// app's admission-instance counter at scheduling time (restarts and
    /// migrations bump it, orphaning earlier events).
    TaskReady { app: u64, task: TaskId, inc: u64 },
    /// A running task completes (same `inc` staleness rule).
    TaskFinish { app: u64, task: TaskId, inc: u64 },
    /// An SBST session completes (if `gen` still matches the core's
    /// session generation — aborted sessions leave stale events behind).
    SessionFinish { core: usize, gen: u64 },
    /// A re-admission-lane probe completes on a probation core (if `gen`
    /// still matches the core's probe generation). Probes live outside
    /// the store's session machinery: a withdrawn core has no owner and
    /// no scheduler interaction, so nothing can abort one.
    ProbeFinish { core: usize, gen: u64 },
}

/// Fluent constructor for [`System`].
///
/// # Examples
///
/// ```
/// use manytest_core::prelude::*;
///
/// let system = SystemBuilder::new(TechNode::N22)
///     .seed(7)
///     .arrival_rate(150.0)
///     .sim_time_ms(20)
///     .testing(false)
///     .build()?;
/// let report = system.run();
/// assert_eq!(report.tests_completed, 0);
/// # Ok::<(), manytest_core::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    mix: WorkloadMix,
}

impl SystemBuilder {
    /// Starts from the default configuration for `node` with the standard
    /// workload mix.
    pub fn new(node: manytest_power::TechNode) -> Self {
        SystemBuilder {
            config: SystemConfig::for_node(node),
            mix: WorkloadMix::standard(),
        }
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: SystemConfig) -> Self {
        SystemBuilder {
            config,
            mix: WorkloadMix::standard(),
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the mean application arrival rate, apps/second.
    pub fn arrival_rate(mut self, rate: f64) -> Self {
        self.config.arrival_rate = rate;
        self
    }

    /// Sets the simulated horizon in milliseconds.
    pub fn sim_time_ms(mut self, ms: u64) -> Self {
        self.config.horizon = manytest_sim::Duration::from_ms(ms);
        self
    }

    /// Enables or disables online testing.
    pub fn testing(mut self, enabled: bool) -> Self {
        self.config.testing_enabled = enabled;
        self
    }

    /// Selects the power governor.
    pub fn governor(mut self, kind: GovernorKind) -> Self {
        self.config.governor = kind;
        self
    }

    /// Selects the runtime mapper.
    pub fn mapper(mut self, kind: MapperKind) -> Self {
        self.config.mapper = kind;
        self
    }

    /// Replaces the workload mix.
    pub fn workload(mut self, mix: WorkloadMix) -> Self {
        self.mix = mix;
        self
    }

    /// Injects `count` latent faults spread over the first half of the run.
    pub fn injected_faults(mut self, count: usize) -> Self {
        self.config.injected_faults = count;
        self
    }

    /// Makes `fraction` of injected faults voltage dependent (visible at
    /// exactly one DVFS level).
    pub fn vf_windowed_faults(mut self, fraction: f64) -> Self {
        self.config.vf_windowed_fault_fraction = fraction;
        self
    }

    /// Selects what happens to applications on a quarantined core.
    pub fn fault_response(mut self, policy: FaultResponsePolicy) -> Self {
        self.config.fault_response = policy;
        self
    }

    /// Sets K, the confirmation retests a detection must survive before
    /// the core is quarantined (0 = quarantine on first detection).
    pub fn confirmation_retests(mut self, k: u8) -> Self {
        self.config.confirmation_retests = k;
        self
    }

    /// Makes `fraction` of injected faults intermittent: they manifest on
    /// any single observation with reduced probability, so confirmation
    /// retests may clear them.
    pub fn intermittent_faults(mut self, fraction: f64) -> Self {
        self.config.intermittent_fault_fraction = fraction;
        self
    }

    /// Per-completed-test probability of a spurious fault report on a
    /// healthy core (exercises the suspect→cleared path).
    pub fn test_false_positives(mut self, rate: f64) -> Self {
        self.config.test_false_positive_rate = rate;
        self
    }

    /// Per-moved-task state-transfer delay charged under
    /// [`FaultResponsePolicy::MigrateRegion`], microseconds, per
    /// checkpoint image (the dirty span since the app's last checkpoint
    /// scales the actual charge).
    pub fn migration_delay_us(mut self, us: u64) -> Self {
        self.config.migration_delay = manytest_sim::Duration::from_us(us);
        self
    }

    /// Cadence at which running applications checkpoint their task state
    /// under [`FaultResponsePolicy::MigrateRegion`], microseconds
    /// (0 disables checkpointing: migrations then transfer the full
    /// state accumulated since mapping).
    pub fn checkpoint_interval_us(mut self, us: u64) -> Self {
        self.config.checkpoint_interval = manytest_sim::Duration::from_us(us);
        self
    }

    /// Enables the background re-admission lane: quarantined cores are
    /// probed with a cheap low-V/f routine every `us` microseconds
    /// (backed off exponentially after failed probation rounds). Without
    /// this call quarantine stays terminal — the historical behaviour.
    pub fn probe_cadence_us(mut self, us: u64) -> Self {
        self.config.probe_cadence = Some(manytest_sim::Duration::from_us(us));
        self
    }

    /// Clean probes in a row required to re-admit a quarantined core.
    pub fn probe_passes(mut self, passes: u8) -> Self {
        self.config.probe_passes = passes;
        self
    }

    /// Maximum probe sessions in flight at once (the lane budget).
    pub fn probe_budget(mut self, budget: u32) -> Self {
        self.config.probe_budget = budget;
        self
    }

    /// Caps the probation-retry backoff exponent (the cadence multiplier
    /// saturates at `2^cap`).
    pub fn probe_backoff_cap(mut self, cap: u8) -> Self {
        self.config.probe_backoff_cap = cap;
        self
    }

    /// Makes intermittent faults *cool* this fraction of the horizon
    /// after injection: a cooled fault stops refiring (and corrupting),
    /// so the re-admission lane can recover its core. Zero (the default)
    /// means intermittents never cool.
    pub fn intermittent_cooldown(mut self, fraction: f64) -> Self {
        self.config.intermittent_cooldown_fraction = fraction;
        self
    }

    /// Uses deterministic, evenly-spaced arrivals instead of Poisson
    /// (removes arrival jitter from controlled experiments).
    pub fn periodic_arrivals(mut self, periodic: bool) -> Self {
        self.config.periodic_arrivals = periodic;
        self
    }

    /// Enables the NoC link-contention model: message latencies inflate
    /// with the previous epoch's link loads.
    pub fn model_contention(mut self, enabled: bool) -> Self {
        self.config.model_contention = enabled;
        self
    }

    /// Drives aging from the transient RC thermal grid instead of the
    /// steady-state proxy.
    pub fn transient_thermal(mut self, enabled: bool) -> Self {
        self.config.transient_thermal = enabled;
        self
    }

    /// Switches to intrusive testing (ablation): ready tasks wait for the
    /// session on their core instead of aborting it.
    pub fn intrusive_testing(mut self, intrusive: bool) -> Self {
        self.config.intrusive_testing = intrusive;
        self
    }

    /// Overrides the test-scheduler tuning.
    pub fn test_scheduler(mut self, cfg: manytest_sbst::TestSchedulerConfig) -> Self {
        self.config.test_scheduler = cfg;
        self
    }

    /// Overrides the criticality metric.
    pub fn criticality(mut self, model: CriticalityModel) -> Self {
        self.config.criticality = model;
        self
    }

    /// Overrides the aging model (e.g. to enable NBTI recovery).
    pub fn aging(mut self, model: AgingModel) -> Self {
        self.config.aging = model;
        self
    }

    /// Overrides the mesh edge length (default: the technology node's
    /// edge at the reference die area). Lets scalability studies grow the
    /// mesh while keeping one node's electrical parameters.
    pub fn mesh_edge(mut self, edge: u16) -> Self {
        self.config.mesh_edge_override = Some(edge);
        self
    }

    /// Captures structured decision telemetry: the control loop records
    /// up to `capacity` events into an in-memory log returned on
    /// [`Report::events`] (per-kind counts stay exact past the cap).
    /// Without this call the run uses the zero-cost null observer.
    pub fn capture_events(mut self, capacity: usize) -> Self {
        self.config.event_capacity = Some(capacity);
        self
    }

    /// Bounds every trace series to at most `max_samples` stored points,
    /// decimating on insert (values below 2 are raised to 2). Default:
    /// keep every epoch sample.
    pub fn trace_bound(mut self, max_samples: usize) -> Self {
        self.config.trace_max_samples = Some(max_samples);
        self
    }

    /// Enables the flight recorder: every epoch close snapshots the full
    /// system state (per-core power, temperature, V/f level, health,
    /// mapping occupancy, budget headroom, session activity) into a
    /// bounded ring of at most `capacity` snapshots, decimated with the
    /// same stride-doubling scheme as bounded traces (values below 2 are
    /// raised to 2). The recording comes back on [`Report::state`].
    pub fn record_state(mut self, capacity: usize) -> Self {
        self.config.state_snapshot_max = Some(capacity);
        self
    }

    /// The configuration this builder would construct with — the full
    /// deterministic identity of the run (the run ledger fingerprints
    /// it, together with [`SystemBuilder::mix`], to key its cache).
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The workload mix this builder would construct with.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// Validates the configuration and constructs the system.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the first inconsistent setting.
    pub fn build(self) -> Result<System, BuildError> {
        System::new(self.config, self.mix)
    }
}

/// The integrated manycore platform (see crate docs for the model).
pub struct System {
    config: SystemConfig,
    mesh: Mesh2D,
    model: PowerModel,
    ladder: VfLadder,
    link_model: LinkEnergyModel,
    budget: PowerBudget,
    governor: Box<dyn PowerGovernor>,
    meter: PowerMeter,
    aging: AgingModel,
    criticality: CriticalityModel,
    stress: StressTracker,
    thermal: Option<ThermalGrid>,
    scheduler: TestScheduler,
    mapper: Box<dyn Mapper>,
    mix: WorkloadMix,
    arrivals: ArrivalProcess,
    pending: VecDeque<Application>,
    running: BTreeMap<u64, RunningApp>,
    store: CoreStore,
    epoch_busy: Vec<f64>,
    epoch_energy: Vec<f64>,
    traffic: TrafficMatrix,
    epoch_traffic: TrafficMatrix,
    link_loads: Option<LinkLoads>,
    contention: ContentionModel,
    queue: EventQueue<Ev>,
    rng_workload: SimRng,
    rng_faults: SimRng,
    faults: FaultLog,
    health: HealthBoard,
    metrics: MetricsCollector,
    trace: Trace,
    next_app_id: u64,
    next_inc: u64,
    apps_rejected: u64,
    measured_last: f64,
    tdp: f64,
    observer: Box<dyn Observer>,
    /// Next [`EventId`] to mint: a per-run emission sequence number, so
    /// ids are strictly increasing and `cause.id < id` holds by
    /// construction (which is what makes the provenance graph a DAG).
    next_event_id: u64,
    /// Provenance state: the pending cause for each queued application
    /// (its `AppArrived` or `AppRestarted` event), consumed when the app
    /// is mapped or rejected.
    pending_cause: BTreeMap<u64, CauseLink>,
    /// Per-core id of the most recent `FaultActivated` (detections on
    /// the core link back to it).
    fault_cause: Vec<Option<EventId>>,
    /// Per-core id of the open `CoreSuspected` (retest-lane launches
    /// link back to it; cleared on quarantine or clearance).
    suspect_cause: Vec<Option<EventId>>,
    /// Per-core id of the live session's `TestLaunched` (completion and
    /// abort link back to it).
    session_cause: Vec<Option<EventId>>,
    /// Id of this epoch's `CapAdjusted` (power denials link back to it).
    last_cap_event: Option<EventId>,
    /// Per-core id of the latest `CoreQuarantined`/`CoreRequarantined`
    /// (re-admission-lane probes link back to it; cleared on readmit).
    quarantine_event: Vec<Option<EventId>>,
    /// Per-core id of the live probe's `CoreProbeLaunched` (the
    /// probation verdict links back to it).
    probe_event: Vec<Option<EventId>>,
    /// Per-core earliest next probe time (quarantine time + cadence,
    /// backed off exponentially after failed probation rounds).
    probe_next_at: Vec<f64>,
    /// Per-core probe staleness counter (mirrors the session-generation
    /// scheme; probes are never aborted today, but the guard keeps the
    /// event-queue contract uniform).
    probe_gen: Vec<u64>,
    /// Probation rounds currently holding a lane-budget slot.
    probes_inflight: u32,
    phase_obs: Box<dyn PhaseObserver>,
    /// Live progress counters published once per control epoch (never
    /// read by the simulation — pure telemetry out).
    progress: Option<Arc<ProgressCounters>>,
    profile: PhaseProfile,
    recorder: Option<StateRecorder>,
    // Scratch buffers for the epoch control loop: rebuilt in place every
    // tick so the steady-state hot path never touches the heap.
    ctx_scratch: MapContext,
    candidates_scratch: Vec<TestCandidate>,
    retests_scratch: Vec<RetestRequest>,
    powers_scratch: Vec<f64>,
    launches_scratch: Vec<TestLaunch>,
    denials_scratch: Vec<TestDenial>,
    checkpoint_scratch: Vec<u64>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("node", &self.config.node)
            .field("mesh", &self.mesh)
            .field("pending", &self.pending.len())
            .field("running", &self.running.len())
            .finish()
    }
}

impl System {
    fn new(config: SystemConfig, mix: WorkloadMix) -> Result<Self, BuildError> {
        for (field, value) in [
            ("vf_windowed_fault_fraction", config.vf_windowed_fault_fraction),
            ("intermittent_fault_fraction", config.intermittent_fault_fraction),
            ("intermittent_cooldown_fraction", config.intermittent_cooldown_fraction),
            ("test_false_positive_rate", config.test_false_positive_rate),
        ] {
            // `contains` is false for NaN, so NaN is rejected here too.
            if !(0.0..=1.0).contains(&value) {
                return Err(BuildError::InvalidFaultFraction { field, value });
            }
        }
        if config.injected_faults > 0 && config.horizon.is_zero() {
            return Err(BuildError::FaultsNeedHorizon);
        }
        if config.epoch.is_zero() {
            return Err(BuildError::ZeroEpoch);
        }
        if config.horizon < config.epoch {
            return Err(BuildError::HorizonTooShort);
        }
        if !(config.arrival_rate > 0.0 && config.arrival_rate.is_finite()) {
            return Err(BuildError::InvalidArrivalRate);
        }
        if config.dvfs_levels < 2 {
            return Err(BuildError::TooFewDvfsLevels);
        }
        if mix.is_empty() {
            return Err(BuildError::EmptyWorkloadMix);
        }
        let params = config.node.params();
        let edge = config.mesh_edge_override.unwrap_or(params.mesh_edge);
        if edge == 0 {
            return Err(BuildError::ZeroMesh);
        }
        let mesh = Mesh2D::new(edge, edge);
        let n = mesh.node_count();
        let root = SimRng::seed_from(config.seed);
        let governor: Box<dyn PowerGovernor> = match config.governor {
            GovernorKind::Pid => Box::new(PidController::default_tuning()),
            GovernorKind::Naive => Box::new(NaiveTdpPolicy::new()),
            GovernorKind::FixedTdp => Box::new(FixedCap),
        };
        let mapper: Box<dyn Mapper> = match config.mapper {
            MapperKind::Baseline => Box::new(ConaMapper::new()),
            MapperKind::TestAware => Box::new(TestAwareMapper::default()),
            MapperKind::FirstFit => Box::new(FirstFitMapper::new()),
        };
        let mut scheduler_cfg = config.test_scheduler;
        scheduler_cfg.ladder_levels = config.dvfs_levels;
        let scheduler = TestScheduler::with_library(
            scheduler_cfg,
            config.node,
            manytest_sbst::RoutineLibrary::standard()
                .with_false_positive_rate(config.test_false_positive_rate),
            n,
        );
        let mut rng_faults = root.derive("faults");
        let mut faults = FaultLog::new();
        for _ in 0..config.injected_faults {
            let core = rng_faults.gen_range(n as u64) as usize;
            let at = rng_faults.next_f64() * config.horizon.as_secs_f64() * 0.5;
            let mut fault = if rng_faults.gen_bool(config.vf_windowed_fault_fraction) {
                // Voltage-dependent: observable at exactly one level.
                let level =
                    manytest_power::VfLevel(rng_faults.gen_range(config.dvfs_levels as u64) as u8);
                Fault::with_level_window(core, at, level, level)
            } else {
                Fault::new(core, at)
            };
            // Guarded draw: the default (0.0) consumes no randomness, so
            // pre-existing seeds reproduce their historical fault sets.
            if config.intermittent_fault_fraction > 0.0
                && rng_faults.gen_bool(config.intermittent_fault_fraction)
            {
                fault = fault.with_refire(INTERMITTENT_REFIRE);
                if config.intermittent_cooldown_fraction > 0.0 {
                    let span =
                        config.intermittent_cooldown_fraction * config.horizon.as_secs_f64();
                    fault = fault.with_refire_until(at + span);
                }
            }
            faults.inject_fault(fault);
        }
        Ok(System {
            mesh,
            model: PowerModel::for_node(config.node),
            ladder: VfLadder::for_node(config.node, config.dvfs_levels),
            link_model: LinkEnergyModel::nominal_16nm()
                .scaled_energy(params.feature_nm as f64 / 16.0),
            budget: PowerBudget::new(params.tdp),
            governor,
            meter: PowerMeter::new(),
            aging: config.aging,
            criticality: config.criticality,
            stress: StressTracker::new(n, 0.1),
            thermal: config.transient_thermal.then(|| {
                ThermalGrid::new(edge as usize, edge as usize, ThermalParams::default())
            }),
            scheduler,
            mapper,
            mix,
            arrivals: if config.periodic_arrivals {
                ArrivalProcess::periodic(config.arrival_rate)
            } else {
                ArrivalProcess::poisson(config.arrival_rate)
            },
            pending: VecDeque::new(),
            running: BTreeMap::new(),
            store: CoreStore::new(n),
            epoch_busy: vec![0.0; n],
            epoch_energy: vec![0.0; n],
            traffic: TrafficMatrix::new(mesh),
            epoch_traffic: TrafficMatrix::new(mesh),
            link_loads: None,
            contention: ContentionModel::new(),
            queue: EventQueue::with_capacity(1024),
            rng_workload: root.derive("workload"),
            rng_faults,
            faults,
            health: HealthBoard::new(n),
            metrics: MetricsCollector::default(),
            trace: match config.trace_max_samples {
                Some(max) => Trace::bounded(max.max(2)),
                None => Trace::new(),
            },
            next_app_id: 0,
            next_inc: 0,
            apps_rejected: 0,
            measured_last: 0.0,
            tdp: params.tdp,
            observer: match config.event_capacity {
                Some(cap) => Box::new(EventLog::bounded(cap)),
                None => Box::new(NullObserver),
            },
            next_event_id: 0,
            pending_cause: BTreeMap::new(),
            fault_cause: vec![None; n],
            suspect_cause: vec![None; n],
            session_cause: vec![None; n],
            last_cap_event: None,
            quarantine_event: vec![None; n],
            probe_event: vec![None; n],
            probe_next_at: vec![f64::INFINITY; n],
            probe_gen: vec![0; n],
            probes_inflight: 0,
            phase_obs: Box::new(NullPhaseObserver),
            progress: None,
            profile: PhaseProfile::default(),
            recorder: config
                .state_snapshot_max
                .map(|cap| StateRecorder::with_capacity(cap.max(2))),
            ctx_scratch: MapContext::all_free(mesh),
            candidates_scratch: Vec::with_capacity(n),
            retests_scratch: Vec::with_capacity(n),
            powers_scratch: Vec::with_capacity(n),
            launches_scratch: Vec::new(),
            denials_scratch: Vec::new(),
            checkpoint_scratch: Vec::new(),
            config,
        })
    }

    /// The configuration the system runs under.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Replaces the decision-telemetry observer (e.g. with a streaming
    /// JSONL writer). Call before [`System::run`]; the observer installed
    /// at finalize time supplies [`Report::events`] via
    /// [`Observer::take_log`].
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = observer;
    }

    /// Replaces the phase-boundary observer. The control loop brackets
    /// every phase (PID, fault sweep, mapping, test scheduling, event
    /// drain, epoch close) with `enter`/`exit` calls; the simulator
    /// itself never measures time across them — the bench batch runner
    /// installs a wall-clock timer here to attach real per-phase time to
    /// a job, which stays off the (deterministic) report.
    pub fn set_phase_observer(&mut self, observer: Box<dyn PhaseObserver>) {
        self.phase_obs = observer;
    }

    /// Installs shared live-progress counters. [`System::run`] publishes
    /// deterministic epoch/event counts into them once per control epoch
    /// (and a final update at finalize); the simulation never reads them
    /// back, so attaching counters cannot change any result. The bench
    /// harness pairs the counters with its own wall clock to render
    /// heartbeat frames and detect stalls.
    pub fn set_progress(&mut self, progress: Arc<ProgressCounters>) {
        self.progress = Some(progress);
    }

    /// Emits one *root* telemetry event (no cause link) through the
    /// installed observer, minting the run's next sequential [`EventId`].
    /// Root emissions are audited sites: the emission-coverage lint
    /// requires a `lint:allow` naming why the event has no cause.
    /// With the default [`NullObserver`] this is a no-op apart from the
    /// id increment, and the `map_context_allocs` counting-allocator
    /// test holds it to zero heap allocations.
    #[inline]
    pub fn observe(&mut self, now: f64, ev: SimEvent) -> EventId {
        self.observe_linked(now, None, ev)
    }

    /// Emits one telemetry event with an optional provenance link. This
    /// is the single choke point every control-loop emission funnels
    /// through (the emission-coverage lint bans direct `on_event` calls
    /// in this file), so every event gets a deterministic id.
    #[inline]
    pub fn observe_linked(
        &mut self,
        now: f64,
        cause: Option<CauseLink>,
        ev: SimEvent,
    ) -> EventId {
        // lint:allow(event-emission-coverage, reason = "the id-minting funnel itself: this is the one audited raw emit_record every helper routes through")
        emit_record(self.observer.as_mut(), &mut self.next_event_id, now, cause, ev)
    }

    /// Emits one telemetry event caused by `cause` via a `kind` link.
    #[inline]
    fn emit_caused(&mut self, now: f64, kind: CauseKind, cause: EventId, ev: SimEvent) -> EventId {
        self.observe_linked(now, Some(CauseLink::new(kind, cause)), ev)
    }

    /// The platform mesh.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Runs the full horizon and produces the report.
    pub fn run(mut self) -> Report {
        let first_gap = self.arrivals.next_interarrival(&mut self.rng_workload);
        self.queue.schedule(SimTime::ZERO + first_gap, Ev::Arrival);
        let epochs = self.config.epoch_count();
        if let Some(p) = &self.progress {
            p.begin(epochs);
        }
        // Completions cluster at shared timestamps (synchronised task
        // graphs, epoch-aligned launches); draining each cluster in one
        // heap pass skips the per-event sift-down of the old
        // one-at-a-time loop. Handler-scheduled same-time events sort
        // after the batch, so the handling order is unchanged.
        let mut batch = Vec::with_capacity(64);
        for e in 0..epochs {
            let epoch = Epoch(e);
            let t0 = epoch.start(self.config.epoch);
            let t1 = epoch.end(self.config.epoch);
            self.control(t0.as_secs_f64());
            self.phase_obs.enter(Phase::Events);
            while self.queue.pop_batch_before(t1, &mut batch) > 0 {
                self.profile.queue_batches += 1;
                PhaseProfile::raise(&mut self.profile.batch_high_water, batch.len());
                for ev in batch.drain(..) {
                    self.profile.events_processed += 1;
                    self.handle(ev.payload, ev.time.as_secs_f64());
                }
            }
            self.phase_obs.exit(Phase::Events);
            self.phase_obs.enter(Phase::Thermal);
            self.close_epoch(t1.as_secs_f64());
            self.phase_obs.exit(Phase::Thermal);
            if let Some(p) = &self.progress {
                p.tick(e + 1, self.next_event_id, self.observer.dropped_records());
            }
        }
        self.finalize()
    }

    // ----- accounting ---------------------------------------------------

    fn mode_power(&self, mode: CoreMode) -> (PowerCategory, f64) {
        match mode {
            CoreMode::Off => (PowerCategory::Idle, 0.0),
            CoreMode::Idle(op) => (
                PowerCategory::Idle,
                self.model.core_power(op, PowerModel::IDLE_ACTIVITY),
            ),
            CoreMode::Busy(op) => (
                PowerCategory::Workload,
                self.model.core_power(op, PowerModel::WORKLOAD_ACTIVITY),
            ),
            CoreMode::Testing(op, activity) => {
                (PowerCategory::Test, self.model.core_power(op, activity))
            }
        }
    }

    /// Charges the core's current mode for `[accrued_since, now)`.
    fn charge_core(&mut self, core: usize, now: f64) {
        let since = self.store.accrued_since(core);
        let dt = now - since;
        if dt <= 0.0 {
            self.store.set_accrued_since(core, now);
            return;
        }
        let mode = self.store.mode(core);
        let (cat, watts) = self.mode_power(mode);
        self.meter.add(cat, watts, dt);
        self.epoch_energy[core] += watts * dt;
        if matches!(mode, CoreMode::Busy(_)) {
            self.epoch_busy[core] += dt;
            // Corruption exposure: app work executed on this core while a
            // fault was actively corrupting — from injection until the
            // fault cools (never, for solid faults) or the response
            // pipeline withdraws the core. A withdrawn core is never
            // Busy, so this stops accruing exactly at quarantine and can
            // only resume if a *re-admitted* core still hosts a live
            // (uncooled) fault.
            let overlap = self.faults.corrupting_overlap(core, since, now);
            if overlap > 0.0 {
                self.metrics.corruption_exposure += overlap;
            }
        }
        self.store.set_accrued_since(core, now);
    }

    /// The telemetry ladder index a mode runs at ([`VfLevel::GATED`] = off).
    fn mode_level(mode: CoreMode) -> i16 {
        match mode {
            CoreMode::Off => VfLevel::GATED,
            CoreMode::Idle(op) | CoreMode::Busy(op) => op.level.telemetry_index(),
            CoreMode::Testing(op, _) => op.level.telemetry_index(),
        }
    }

    fn set_mode(&mut self, core: usize, now: f64, mode: CoreMode) {
        self.charge_core(core, now);
        let from = Self::mode_level(self.store.mode(core));
        let to = Self::mode_level(mode);
        if from != to {
            // lint:allow(event-emission-coverage, reason = "genuine root: V/f moves happen on every mode change (admission, completion, gating); attributing one upstream decision would be arbitrary")
            self.observe(
                now,
                SimEvent::DvfsTransition {
                    core: core as u32,
                    from,
                    to,
                },
            );
        }
        self.store.set_mode(core, mode);
    }

    // ----- control plane (epoch boundaries) ------------------------------

    fn control(&mut self, now: f64) {
        self.profile.epochs += 1;
        self.phase_obs.enter(Phase::Pid);
        let cap = self.governor.next_cap(self.tdp, self.measured_last);
        self.budget.set_cap(cap);
        self.metrics.cap_adjustments += 1;
        self.profile.pid_updates += 1;
        // lint:allow(event-emission-coverage, reason = "genuine root: the PID cap move starts each epoch's causal chains")
        let cap_id = self.observe(
            now,
            SimEvent::CapAdjusted {
                cap,
                measured: self.measured_last,
                headroom: self.budget.headroom(),
                reservations: self.budget.active_reservations() as u32,
            },
        );
        self.last_cap_event = Some(cap_id);
        self.phase_obs.exit(Phase::Pid);
        self.phase_obs.enter(Phase::Fault);
        self.profile.fault_sweeps += 1;
        {
            let obs = self.observer.as_mut();
            let next_id = &mut self.next_event_id;
            let fault_cause = &mut self.fault_cause;
            let activations = &mut self.metrics.fault_activations;
            let profiled = &mut self.profile.fault_activations;
            self.faults.activate_due_with(now, |core| {
                *activations += 1;
                *profiled += 1;
                // lint:allow(event-emission-coverage, reason = "genuine root: fault injection is exogenous; raw emit_record because the fault-log callback borrow-splits the observer")
                let id = emit_record(
                    &mut *obs,
                    next_id,
                    now,
                    None,
                    SimEvent::FaultActivated { core: core as u32 },
                );
                fault_cause[core] = Some(id);
            });
        }
        self.phase_obs.exit(Phase::Fault);
        // Lifecycle lane: probe withdrawn cores (so a core re-admitted
        // this tick is mappable below) and checkpoint running apps.
        // Neither is a profiled phase: both are no-ops unless the run
        // opted into the lane / MigrateRegion checkpointing.
        self.probe_lane(now);
        self.checkpoint_apps(now);
        self.phase_obs.enter(Phase::Map);
        self.admit_pending(now);
        self.phase_obs.exit(Phase::Map);
        if self.config.testing_enabled {
            self.phase_obs.enter(Phase::Schedule);
            self.schedule_tests(now);
            self.phase_obs.exit(Phase::Schedule);
        }
    }

    /// Rebuilds the mapper's platform snapshot for time `now` and returns
    /// it. The snapshot lives in a scratch buffer owned by the system, so
    /// after the first control tick this performs **zero heap
    /// allocations** — `crates/bench/benches/kernels.rs` and the
    /// `map_context_allocs` integration test hold it to that.
    pub fn map_context(&mut self, now: f64) -> &MapContext {
        let n = self.mesh.node_count();
        self.profile.ctx_rebuilds += 1;
        let ctx = &mut self.ctx_scratch;
        ctx.reset(self.mesh);
        for i in 0..n {
            let s = self.stress.core(i);
            // A core with a session in flight is about to *complete* a
            // test: mapping onto it wastes the invested test energy, so it
            // is maximally undesirable to a test-aware mapper.
            let in_test = if self.store.has_session(i) { 5.0 } else { 0.0 };
            // Withdrawn = quarantined *or* on probation: no app may be
            // mapped onto a core between quarantine and `CoreReadmitted`
            // (the audit's lifecycle sequence invariant).
            ctx.push_node_health(
                self.store.is_free_for_mapping(i),
                !self.health.is_withdrawn(i),
                s.utilization.clamp(0.0, 1.0),
                self.criticality.criticality(s, now).max(0.0) + in_test,
            );
        }
        debug_assert!(ctx.is_complete());
        &self.ctx_scratch
    }

    fn admit_pending(&mut self, now: f64) {
        self.profile.admit_scans += 1;
        PhaseProfile::raise(&mut self.profile.pending_high_water, self.pending.len());
        // The mapper snapshot is rebuilt at most once per control tick:
        // after each admission the claimed nodes are patched in place
        // (occupancy and the in-test criticality bias are the only inputs
        // that can change between admissions of the same tick), which is
        // bit-identical to a full rebuild because stress, health and `now`
        // are constant until the event phase runs.
        let mut ctx_fresh = false;
        loop {
            let Some(task_count) = self.pending.front().map(|f| f.graph.task_count()) else {
                break;
            };
            if task_count > self.mesh.node_count() {
                // Can never fit on this platform.
                // lint:allow(hot-path-purity, reason = "front() returned Some three lines up and nothing touched the queue since")
                let app = self.pending.pop_front().expect("checked front");
                self.apps_rejected += 1;
                let cause = self.pending_cause.remove(&app.id.0);
                self.observe_linked(
                    now,
                    cause,
                    SimEvent::AppRejected {
                        app: app.id.0,
                        tasks: task_count as u32,
                    },
                );
                continue;
            }
            // Maintained free set: O(1) instead of filtering every core
            // per pending application.
            self.profile.free_set_queries += 1;
            if self.store.mappable_count() < task_count {
                break;
            }
            // DVFS admission: the highest level whose projected power fits
            // the current headroom.
            let headroom = self.budget.headroom();
            let per_core_cap = headroom / task_count as f64;
            let Some(op) = self.ladder.highest_under(per_core_cap, |op| {
                self.model.core_power(op, PowerModel::WORKLOAD_ACTIVITY)
            }) else {
                break; // not even near-threshold fits: wait for power
            };
            if !ctx_fresh {
                self.map_context(now);
                ctx_fresh = true;
            }
            // lint:allow(hot-path-purity, reason = "loop header breaks when the queue is empty; no admission path pops between there and here")
            let front = self.pending.front().expect("checked non-empty above");
            let Some(mapping) = self.mapper.map(&self.ctx_scratch, &front.graph) else {
                break; // fragmentation: wait for departures
            };
            let watts = task_count as f64
                * self.model.core_power(op, PowerModel::WORKLOAD_ACTIVITY);
            let Ok(reservation) = self.budget.reserve(watts) else { break };
            // lint:allow(hot-path-purity, reason = "same front() entry the mapper just placed; the queue is untouched since the loop header check")
            let app = self.pending.pop_front().expect("checked front");
            let queue_wait = now - app.arrival.as_secs_f64();
            let hop_cost = mapping.weighted_hop_cost(&app.graph);
            self.metrics.queue_wait.push(queue_wait);
            self.metrics.hop_cost.push(hop_cost);
            let id = app.id;
            self.profile.apps_admitted += 1;
            // lint:allow(hot-path-purity, reason = "the mapper only returns mappings for non-empty graphs, and task graphs are validated non-empty at construction")
            let (bb_min, bb_max) = mapping.bounding_box().expect("mapping is non-empty");
            let cause = self.pending_cause.remove(&id.0);
            let mapped_event = self.observe_linked(
                now,
                cause,
                SimEvent::AppMapped {
                    app: id.0,
                    tasks: task_count as u32,
                    first_node: self.mesh.node_id(mapping.coord_of(TaskId(0))).index() as u32,
                    region_w: (bb_max.x - bb_min.x + 1) as u16,
                    region_h: (bb_max.y - bb_min.y + 1) as u16,
                    level: op.level.0,
                    hop_cost,
                    queue_wait,
                    headroom: self.budget.headroom(),
                },
            );
            // Claim the cores (aborting any test sessions on them),
            // patching the mapper snapshot instead of rebuilding it for
            // the next admission of this tick.
            for t in 0..task_count as u32 {
                let task = TaskId(t);
                let coord = mapping.coord_of(task);
                let core = self.mesh.node_id(coord).index();
                if self.store.has_session(core) {
                    self.abort_session(core, now, AbortReason::MappedOver);
                    // The abort dropped the in-test bias; restore the
                    // node's bare criticality (same expression
                    // `map_context` evaluates, same inputs → same bits).
                    let s = self.stress.core(core);
                    self.ctx_scratch
                        .set_criticality(coord, self.criticality.criticality(s, now).max(0.0));
                    self.profile.ctx_delta_updates += 1;
                }
                debug_assert!(self.store.owner(core).is_none());
                self.store.set_owner(core, Some((id, task)));
                self.ctx_scratch.set_free(coord, false);
                self.profile.ctx_delta_updates += 1;
                self.set_mode(core, now, CoreMode::Idle(op));
            }
            let graph = app.graph;
            let roots = graph.roots();
            let inc = self.next_inc;
            self.next_inc += 1;
            let running = RunningApp {
                id,
                // lint:allow(hot-path-purity, reason = "admission materializes the per-app task table once per admitted app, not per epoch")
                tasks: vec![TaskState::Waiting; task_count],
                graph,
                mapping,
                op,
                reservation,
                per_task_watts: watts / task_count as f64,
                done_count: 0,
                arrived_at: app.arrival.as_secs_f64(),
                started_at: now,
                last_checkpoint: now,
                inc,
                mapped_event,
            };
            // lint:allow(hot-path-purity, reason = "admission re-keys the running map once per admitted app, not per epoch")
            self.running.insert(id.0, running);
            PhaseProfile::raise(&mut self.profile.running_high_water, self.running.len());
            for root in roots {
                self.queue.schedule(
                    SimTime::from_ns((now * 1e9).round() as u64),
                    Ev::TaskReady { app: id.0, task: root, inc },
                );
            }
        }
    }

    fn schedule_tests(&mut self, now: f64) {
        // Reuse the candidate buffer across ticks (`plan` takes `&mut
        // self.scheduler`, so the buffer is moved out for the call).
        let mut candidates = std::mem::take(&mut self.candidates_scratch);
        candidates.clear();
        // Suspect cores go through the priority retest lane instead of
        // the ranked pool: pinned to the level the detection happened at,
        // exempt from the criticality threshold, served first.
        let mut retests = std::mem::take(&mut self.retests_scratch);
        retests.clear();
        // One walk over the maintained test-candidate bitset replaces the
        // two full-array filter scans; set bits come out in ascending
        // core order, so both vectors are built in the exact order the
        // old scans produced. A core is healthy or suspect, never both,
        // so a single visit can feed both lanes. Criticality is
        // time-dependent (it grows with time-since-last-test), so the
        // *values* are recomputed for each candidate each tick — only the
        // candidate *set* is maintained incrementally.
        let mut scanned = 0u64;
        for (w, &word) in self.store.testable_words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                scanned += 1;
                if self.health.is_healthy(i) {
                    candidates.push(TestCandidate {
                        core: i,
                        criticality: self.criticality.criticality(self.stress.core(i), now),
                    });
                } else if let Some(level) = self.health.suspect_level(i) {
                    retests.push(RetestRequest { core: i, level });
                }
            }
        }
        self.profile.candidates_scanned += scanned;
        self.profile.sched_calls += 1;
        self.profile.retests_planned += retests.len() as u64;
        PhaseProfile::raise(&mut self.profile.candidates_high_water, candidates.len());
        if candidates.is_empty() && retests.is_empty() {
            self.candidates_scratch = candidates;
            self.retests_scratch = retests;
            return;
        }
        let headroom = self.budget.headroom();
        let mut launches = std::mem::take(&mut self.launches_scratch);
        let mut denials = std::mem::take(&mut self.denials_scratch);
        self.scheduler
            .plan_with_retests_into(&retests, &candidates, headroom, &mut launches, &mut denials);
        self.candidates_scratch = candidates;
        self.retests_scratch = retests;
        self.profile.heap_pops = self.scheduler.heap_pops();
        self.profile.sched_denials += denials.len() as u64;
        PhaseProfile::raise(&mut self.profile.launches_high_water, launches.len());
        // Denials are caused by the epoch's power state, which the cap
        // move freshly established at the top of this control tick.
        let cap_link = self
            .last_cap_event
            .map(|id| CauseLink::new(CauseKind::CapMove, id));
        for d in &denials {
            self.observe_linked(
                now,
                cap_link,
                SimEvent::TestDeniedPower {
                    core: d.core as u32,
                    needed: d.power,
                    headroom: d.headroom,
                },
            );
        }
        for launch in &launches {
            let Ok(reservation) = self.budget.reserve(launch.power) else {
                continue;
            };
            let core = launch.core;
            let session = TestSession::new(
                core,
                launch.routine,
                launch.level,
                launch.instructions,
                launch.rate,
                now,
            );
            let op = self.scheduler.ladder().point(launch.level);
            let activity = self.scheduler.library().routine(launch.routine).activity;
            let gen = self.store.begin_session(core, session, reservation);
            self.profile.sched_launches += 1;
            self.set_mode(core, now, CoreMode::Testing(op, activity));
            // Retest-lane launches are caused by the open suspicion;
            // ranked-pool launches are periodic policy decisions (roots).
            let lane = if self.health.is_suspect(core) {
                self.suspect_cause[core].map(|id| CauseLink::new(CauseKind::RetestLane, id))
            } else {
                None
            };
            // Ranked-lane launches are genuine roots (periodic SBST is
            // the policy's own clock); retest-lane launches chain back
            // to the suspicion via `lane`, so no allow is needed here.
            let launch_id = self.observe_linked(
                now,
                lane,
                SimEvent::TestLaunched {
                    core: core as u32,
                    routine: launch.routine.0,
                    level: launch.level.0,
                    power: launch.power,
                    headroom: self.budget.headroom(),
                },
            );
            self.session_cause[core] = Some(launch_id);
            let finish = now + launch.duration();
            self.queue.schedule(
                SimTime::from_ns((finish * 1e9).round() as u64),
                Ev::SessionFinish { core, gen },
            );
        }
        self.launches_scratch = launches;
        self.denials_scratch = denials;
    }

    fn abort_session(&mut self, core: usize, now: f64, reason: AbortReason) {
        let (session, reservation) = self.store.end_session(core);
        debug_assert!(session.is_some());
        debug_assert!(
            reservation.is_some(),
            "active session holds a reservation"
        );
        if let Some(reservation) = reservation {
            self.budget.release(reservation);
        }
        self.scheduler.on_session_aborted(core);
        self.metrics.tests_aborted += 1;
        let session_link = self.session_cause[core]
            .take()
            .map(|id| CauseLink::new(CauseKind::Session, id));
        self.observe_linked(
            now,
            session_link,
            SimEvent::TestAborted {
                core: core as u32,
                reason,
            },
        );
        let owner_op = self.owner_op(core);
        let mode = match owner_op {
            Some(op) => CoreMode::Idle(op),
            None => CoreMode::Off,
        };
        self.set_mode(core, now, mode);
    }

    fn owner_op(&self, core: usize) -> Option<OperatingPoint> {
        self.store
            .owner(core)
            .map(|(app, _)| self.running[&app.0].op)
    }

    // ----- event handlers -------------------------------------------------

    fn handle(&mut self, ev: Ev, now: f64) {
        match ev {
            Ev::Arrival => self.on_arrival(now),
            Ev::TaskReady { app, task, inc } => self.on_task_ready(app, task, inc, now),
            Ev::TaskFinish { app, task, inc } => self.on_task_finish(app, task, inc, now),
            Ev::SessionFinish { core, gen } => self.on_session_finish(core, gen, now),
            Ev::ProbeFinish { core, gen } => self.on_probe_finish(core, gen, now),
        }
    }

    // lint:effect(alloc+panic, reason = "arrival lane materializes the sampled task graph and backlog entry; generator validation panics only on malformed workload configs")
    fn on_arrival(&mut self, now: f64) {
        let graph = self.mix.sample(&mut self.rng_workload);
        let id = AppId(self.next_app_id);
        self.next_app_id += 1;
        self.metrics.apps_arrived += 1;
        // lint:allow(event-emission-coverage, reason = "genuine root: arrivals are exogenous workload-process draws")
        let arrived = self.observe(
            now,
            SimEvent::AppArrived {
                app: id.0,
                tasks: graph.task_count() as u32,
            },
        );
        self.pending_cause
            .insert(id.0, CauseLink::new(CauseKind::Arrival, arrived));
        self.pending.push_back(Application {
            id,
            graph,
            arrival: SimTime::from_ns((now * 1e9).round() as u64),
        });
        let gap = self.arrivals.next_interarrival(&mut self.rng_workload);
        let next = SimTime::from_ns((now * 1e9).round() as u64) + gap;
        self.queue.schedule(next, Ev::Arrival);
    }

    fn on_task_ready(&mut self, app_id: u64, task: TaskId, inc: u64, now: f64) {
        let (coord, op, duration) = {
            // Stale events outlive their app (abort) or its placement
            // (restart, migration): drop anything whose instance counter
            // no longer matches.
            let Some(app) = self.running.get(&app_id) else { return };
            if app.inc != inc {
                return;
            }
            debug_assert!(matches!(app.tasks[task.index()], TaskState::Waiting));
            let coord = app.mapping.coord_of(task);
            let rate = app.op.frequency * self.config.workload_ipc;
            let duration = app.graph.task(task).instructions as f64 / rate;
            (coord, app.op, duration)
        };
        let core = self.mesh.node_id(coord).index();
        let mut duration = duration;
        if let Some(mut session) = self.store.session(core) {
            if self.config.intrusive_testing {
                // Ablation mode: the test has priority — the task retries
                // once the session is done. Sessions are advanced lazily;
                // sync this copy to compute the true remaining time.
                session.advance(now - session.started_at());
                let retry = now + session.remaining_seconds().max(1e-9) + 1e-9;
                self.queue.schedule(
                    SimTime::from_ns((retry * 1e9).round() as u64),
                    Ev::TaskReady { app: app_id, task, inc },
                );
                return;
            }
            // Non-intrusive testing: the workload wins, but restoring the
            // core's architectural state after the SBST routine costs a
            // small fixed overhead — the source of the (sub-1 %)
            // throughput penalty the paper reports.
            self.abort_session(core, now, AbortReason::TaskPreempted);
            duration += self.config.abort_overhead.as_secs_f64();
        }
        debug_assert!(
            !matches!(self.store.mode(core), CoreMode::Busy(_)),
            "core hosts one task at a time"
        );
        self.set_mode(core, now, CoreMode::Busy(op));
        let finish = now + duration;
        let Some(app) = self.running.get_mut(&app_id) else {
            debug_assert!(false, "app {app_id} was checked running above");
            return;
        };
        app.tasks[task.index()] = TaskState::Running { finish };
        self.queue.schedule(
            SimTime::from_ns((finish * 1e9).round() as u64),
            Ev::TaskFinish { app: app_id, task, inc },
        );
    }

    fn on_task_finish(&mut self, app_id: u64, task: TaskId, inc: u64, now: f64) {
        match self.running.get(&app_id) {
            Some(app) if app.inc == inc => {}
            _ => return, // stale: the app was torn down or re-placed
        }
        // Work on the entry by value: one invariant-checked removal up
        // front replaces every panicking lookup below; the entry goes
        // back into the map at the end unless the app completed.
        let Some(mut app) = self.running.remove(&app_id) else { return };
        // Release the core first.
        let coord = app.mapping.coord_of(task);
        let core = self.mesh.node_id(coord).index();
        self.store.set_owner(core, None);
        self.set_mode(core, now, CoreMode::Off);
        // Record completion and instructions, and hand the task's share of
        // the power reservation back so later admissions (and tests) can
        // use it.
        self.metrics.instructions += app.graph.task(task).instructions;
        app.tasks[task.index()] = TaskState::Done { at: now };
        app.done_count += 1;
        if !app.is_complete() {
            let shrunk = (app.reservation.watts() - app.per_task_watts).max(0.0);
            let resized = self.budget.resize(&mut app.reservation, shrunk);
            debug_assert!(resized.is_ok(), "shrinking a reservation cannot fail");
        }
        // Send output messages: charge NoC traffic + energy.
        let out_edges: Vec<(TaskId, f64)> = app
            .graph
            .out_edges(task)
            .map(|e| (e.to, e.bits))
            // lint:allow(hot-path-purity, reason = "borrow split: charging traffic needs &mut self while app.graph is borrowed; the buffer is degree-bounded")
            .collect();
        for (to, bits) in &out_edges {
            let dst = app.mapping.coord_of(*to);
            self.traffic.charge_route(coord, dst, *bits);
            if self.config.model_contention {
                self.epoch_traffic.charge_route(coord, dst, *bits);
            }
            let cost = self.link_model.message_cost(coord, dst, *bits);
            self.meter.add_energy(PowerCategory::Noc, cost.energy);
        }
        // Wake successors whose inputs are now complete.
        let newly_ready: Vec<(TaskId, f64)> = out_edges
            .iter()
            .map(|&(to, _)| to)
            .filter(|&to| {
                matches!(app.tasks[to.index()], TaskState::Waiting)
                    && app.predecessors_done(to)
            })
            .map(|to| {
                let ready = app.input_ready_time(to, |p, t| {
                    let bits = app
                        .graph
                        .edges()
                        .iter()
                        .find(|e| e.from == p && e.to == t)
                        .map(|e| e.bits)
                        .unwrap_or(0.0);
                    let src = app.mapping.coord_of(p);
                    let dst = app.mapping.coord_of(t);
                    let base = self.link_model.message_cost(src, dst, bits).latency;
                    match &self.link_loads {
                        Some(loads) => {
                            base * self.contention.route_factor(loads, src, dst)
                        }
                        None => base,
                    }
                });
                (to, ready.max(now))
            })
            // lint:allow(hot-path-purity, reason = "borrow split: scheduling needs &mut self.queue while app is borrowed; the ready set is degree-bounded")
            .collect();
        for (to, ready) in newly_ready {
            self.queue.schedule(
                SimTime::from_ns((ready * 1e9).round() as u64),
                Ev::TaskReady { app: app_id, task: to, inc },
            );
        }
        // Application completion.
        if app.is_complete() {
            self.budget.release(app.reservation);
            self.metrics.apps_completed += 1;
            let latency = now - app.arrived_at;
            self.metrics.app_latency.push(latency);
            self.emit_caused(
                now,
                CauseKind::Mapping,
                app.mapped_event,
                SimEvent::AppCompleted {
                    app: app_id,
                    latency,
                },
            );
        } else {
            // lint:allow(hot-path-purity, reason = "re-keys the entry removed at the top of the handler; bounded by the workload's completion rate")
            self.running.insert(app_id, app);
        }
    }

    fn on_session_finish(&mut self, core: usize, gen: u64, now: f64) {
        if self.store.session_gen(core) != gen {
            return; // stale event from an aborted session
        }
        // `end_session` leaves the generation untouched when no session
        // is live, so a second stale event for the same gen still drops.
        let (session, reservation) = self.store.end_session(core);
        let Some(session) = session else {
            return; // stale event from an aborted session
        };
        debug_assert!(
            reservation.is_some(),
            "active session holds a reservation"
        );
        if let Some(reservation) = reservation {
            self.budget.release(reservation);
        }
        self.scheduler
            .on_session_complete(core, session.routine(), session.level());
        self.stress.note_test_complete(core, now);
        let routine = self.scheduler.library().routine(session.routine()).clone();
        let respond = !matches!(self.config.fault_response, FaultResponsePolicy::Ignore);
        let is_retest = respond && self.health.is_suspect(core);
        // Id of a FaultDetected emitted by this completion, if any: the
        // suspicion it triggers links back to it (otherwise the suspicion
        // is a false alarm caused by the completion itself).
        let mut detect_id: Option<EventId> = None;
        let symptom = if is_retest {
            // Confirmation retest: draw only over the faults actually
            // present on this core — a fault-free core can never confirm,
            // so false positives are structurally unable to quarantine a
            // healthy core. No false-alarm draw here either: confirmation
            // compares failure signatures, which a spurious pass/fail
            // flip cannot fake twice.
            self.faults
                .confirm(core, &routine, session.level(), now, &mut self.rng_faults)
        } else {
            let detected = {
                let obs = self.observer.as_mut();
                let next_id = &mut self.next_event_id;
                let fault_cause = &self.fault_cause;
                let detect_slot = &mut detect_id;
                self.faults.on_test_complete_with(
                    core,
                    &routine,
                    session.level(),
                    now,
                    &mut self.rng_faults,
                    |faulty_core, latency| {
                        let cause = fault_cause[faulty_core]
                            .map(|id| CauseLink::new(CauseKind::Activation, id));
                        // lint:allow(event-emission-coverage, reason = "cause set inline (activation link); raw emit_record because the fault-log callback borrow-splits the observer")
                        *detect_slot = Some(emit_record(
                            &mut *obs,
                            next_id,
                            now,
                            cause,
                            SimEvent::FaultDetected {
                                core: faulty_core as u32,
                                latency,
                            },
                        ));
                    },
                )
            };
            // Guarded draw: a zero rate (the default) consumes no
            // randomness, keeping historical seeds bit-identical.
            detected
                || (routine.false_positive_rate > 0.0
                    && self.rng_faults.gen_bool(routine.false_positive_rate))
        };
        self.metrics.tests_completed += 1;
        let interval = match self.store.last_test_time(core) {
            Some(prev) => {
                self.metrics.test_interval.push(now - prev);
                now - prev
            }
            None => -1.0, // first completion on this core
        };
        self.store.push_test_time(core, now);
        let ledger = self.scheduler.ledger();
        let covered_levels = (0..ledger.level_count())
            .filter(|&l| ledger.tests_at(core, VfLevel(l as u8)) > 0)
            .count() as u8;
        let session_link = self.session_cause[core]
            .take()
            .map(|id| CauseLink::new(CauseKind::Session, id));
        let completed = self.observe_linked(
            now,
            session_link,
            SimEvent::TestCompleted {
                core: core as u32,
                routine: session.routine().0,
                level: session.level().0,
                covered_levels,
                interval,
            },
        );
        if is_retest {
            self.metrics.confirmation_retests += 1;
            let (used, remaining) = self.health.note_retest_complete(core);
            if symptom {
                self.quarantine_core(
                    core,
                    u32::from(used),
                    now,
                    CauseLink::new(CauseKind::RetestFailed, completed),
                );
            } else if remaining == 0 {
                // K retests, no reproduction: the platform stops
                // believing the original detection.
                self.health.clear(core);
                self.faults.demote_to_latent(core);
                self.metrics.cores_cleared += 1;
                self.suspect_cause[core] = None;
                self.emit_caused(
                    now,
                    CauseKind::RetestPassed,
                    completed,
                    SimEvent::CoreCleared {
                        core: core as u32,
                        retests: u32::from(used),
                    },
                );
            }
        } else if respond && symptom && self.health.is_healthy(core) {
            self.metrics.cores_suspected += 1;
            // A detection (if the test actually caught a fault) or the
            // completion's own false-positive draw triggered this.
            let suspicion_link = match detect_id {
                Some(d) => CauseLink::new(CauseKind::Detection, d),
                None => CauseLink::new(CauseKind::FalseAlarm, completed),
            };
            let suspected = self.observe_linked(
                now,
                Some(suspicion_link),
                SimEvent::CoreSuspected {
                    core: core as u32,
                    level: session.level().0,
                },
            );
            self.suspect_cause[core] = Some(suspected);
            if self.config.confirmation_retests == 0 {
                self.quarantine_core(
                    core,
                    0,
                    now,
                    CauseLink::new(CauseKind::Suspicion, suspected),
                );
            } else {
                self.health
                    .mark_suspect(core, session.level(), self.config.confirmation_retests);
            }
        }
        let mode = if self.health.is_withdrawn(core) {
            CoreMode::Off
        } else {
            match self.owner_op(core) {
                Some(op) => CoreMode::Idle(op),
                None => CoreMode::Off,
            }
        };
        self.set_mode(core, now, mode);
    }

    // ----- fault response -------------------------------------------------

    /// Withdraws `core` permanently: records the quarantine (and whether
    /// it was false), relocates or kills the victim application per the
    /// configured policy, power-gates the core and derates the admission
    /// budget to the surviving capacity. The `CoreQuarantined` event is
    /// emitted *before* the gating `DvfsTransition`, which the audit
    /// sequence invariant relies on.
    fn quarantine_core(&mut self, core: usize, retests: u32, now: f64, cause: CauseLink) {
        self.health.quarantine(core);
        // Mirror the health bit into the store so the maintained
        // mappable count drops without consulting the board.
        self.store.set_quarantined(core);
        self.metrics.cores_quarantined += 1;
        if !self.faults.has_solid_active_fault(core, now) {
            // Nothing solid on the core: intermittent symptoms or false
            // positives were confirmed by chance. Capacity lost for less
            // than a hard fault — the price of believing retests.
            self.metrics.false_quarantines += 1;
        }
        self.suspect_cause[core] = None;
        let qid = self.observe_linked(
            now,
            Some(cause),
            SimEvent::CoreQuarantined {
                core: core as u32,
                retests,
            },
        );
        // Arm the re-admission lane (when configured): the first probe
        // fires one cadence after withdrawal, and every probe on this
        // core chains back to this quarantine.
        self.quarantine_event[core] = Some(qid);
        if let Some(cadence) = self.config.probe_cadence {
            self.probe_next_at[core] = now + cadence.as_secs_f64();
        }
        if let Some((victim, _)) = self.store.owner(core) {
            match self.config.fault_response {
                // lint:allow(hot-path-purity, reason = "structurally dead: confirmation retests (the only quarantine trigger) are disabled under Ignore")
                FaultResponsePolicy::Ignore => unreachable!("Ignore never quarantines"),
                FaultResponsePolicy::Abort => self.abort_app(victim.0, core, now, qid),
                FaultResponsePolicy::RestartElsewhere => {
                    self.restart_app(victim.0, core, now, qid)
                }
                FaultResponsePolicy::MigrateRegion => self.migrate_app(victim.0, core, now, qid),
            }
        }
        if self.store.owner(core).is_none() {
            self.set_mode(core, now, CoreMode::Off);
        }
        debug_assert!(
            self.store.owner(core).is_none(),
            "quarantined core must be vacated"
        );
        self.derate_to_surviving_capacity();
    }

    /// Re-derates the admission budget to the capacity outside
    /// withdrawal (quarantine + probation); called on every lifecycle
    /// edge that changes the withdrawn set.
    fn derate_to_surviving_capacity(&mut self) {
        let n = self.store.len();
        self.budget
            .set_derating((n - self.health.withdrawn_count()) as f64 / n as f64);
    }

    // ----- re-admission lane ----------------------------------------------

    /// Scans for quarantined cores whose probe cadence is due and opens
    /// probation rounds for them, capped by the lane budget. A probation
    /// round holds its budget slot from the first probe until the
    /// readmit/requarantine verdict.
    fn probe_lane(&mut self, now: f64) {
        if self.config.probe_cadence.is_none() || self.config.probe_budget == 0 {
            return;
        }
        for core in 0..self.store.len() {
            if self.probes_inflight >= self.config.probe_budget {
                break;
            }
            if !self.health.is_quarantined(core) || now < self.probe_next_at[core] {
                continue;
            }
            self.health.begin_probation(core);
            self.probes_inflight += 1;
            self.launch_probe(core, now);
        }
    }

    /// Launches one low-V/f probe on a probation core: emits
    /// `CoreProbeLaunched` (chained to the quarantine that opened the
    /// lane), powers the core to the ladder floor for the probe's
    /// duration and schedules the verdict. Probes bypass the session
    /// store, the test scheduler and the power-reservation system — the
    /// lane runs in the capacity slice the derating already withdrew.
    fn launch_probe(&mut self, core: usize, now: f64) {
        self.metrics.probes_launched += 1;
        let streak = u32::from(self.health.probe_streak(core));
        let lane = self.quarantine_event[core]
            .map(|id| CauseLink::new(CauseKind::ProbeLane, id));
        debug_assert!(lane.is_some(), "probing a never-quarantined core");
        let pid = self.observe_linked(
            now,
            lane,
            SimEvent::CoreProbeLaunched {
                core: core as u32,
                streak,
                inflight: self.probes_inflight,
            },
        );
        self.probe_event[core] = Some(pid);
        let op = self.scheduler.ladder().point(VfLevel(0));
        let (duration, activity) = {
            let routine = self.scheduler.library().routine(RoutineId(0));
            (
                routine.duration(op.frequency, 1.0) * PROBE_INSTRUCTION_FRACTION,
                routine.activity,
            )
        };
        self.set_mode(core, now, CoreMode::Testing(op, activity));
        self.probe_gen[core] += 1;
        let finish = now + duration;
        self.queue.schedule(
            SimTime::from_ns((finish * 1e9).round() as u64),
            Ev::ProbeFinish { core, gen: self.probe_gen[core] },
        );
    }

    /// Resolves a completed probe: a manifested fault fails probation
    /// (re-quarantine, exponential cadence backoff); a clean probe banks
    /// one pass and either launches the next probe back to back or, once
    /// the streak reaches the configured passes, re-admits the core to
    /// the mappable pool.
    fn on_probe_finish(&mut self, core: usize, gen: u64, now: f64) {
        if self.probe_gen[core] != gen || !self.health.is_probation(core) {
            return; // stale event
        }
        let Some(pid) = self.probe_event[core].take() else {
            debug_assert!(false, "probation core {core} has no live probe event");
            return;
        };
        let manifested =
            self.faults
                .probe(core, PROBE_COVERAGE, VfLevel(0), now, &mut self.rng_faults);
        if manifested {
            let backoff = self.health.fail_probation(core);
            self.metrics.cores_requarantined += 1;
            let rid = self.emit_caused(
                now,
                CauseKind::ProbeFailed,
                pid,
                SimEvent::CoreRequarantined {
                    core: core as u32,
                    backoff: u32::from(backoff),
                },
            );
            self.quarantine_event[core] = Some(rid);
            if let Some(cadence) = self.config.probe_cadence {
                let exp = backoff.min(self.config.probe_backoff_cap);
                let mult = (1u64 << u32::from(exp)) as f64;
                self.probe_next_at[core] = now + cadence.as_secs_f64() * mult;
            }
            self.probes_inflight -= 1;
            self.set_mode(core, now, CoreMode::Off);
            return;
        }
        let streak = self.health.note_probe_pass(core);
        if streak < self.config.probe_passes {
            self.launch_probe(core, now);
            return;
        }
        let probes = u32::from(self.health.readmit(core));
        self.metrics.cores_readmitted += 1;
        // Mirror the health bit back into the store: the maintained
        // mappable count recovers without consulting the board.
        self.store.set_healthy(core, true);
        self.emit_caused(
            now,
            CauseKind::ProbePassed,
            pid,
            SimEvent::CoreReadmitted {
                core: core as u32,
                probes,
            },
        );
        self.quarantine_event[core] = None;
        self.probe_next_at[core] = f64::INFINITY;
        self.probes_inflight -= 1;
        self.set_mode(core, now, CoreMode::Off);
        self.derate_to_surviving_capacity();
    }

    // ----- checkpointing ---------------------------------------------------

    /// Writes a checkpoint image for every running application whose
    /// dirty span reached the configured interval. Only meaningful under
    /// [`FaultResponsePolicy::MigrateRegion`] (the only policy that ever
    /// replays checkpointed state); a zero interval disables the scan.
    fn checkpoint_apps(&mut self, now: f64) {
        if !matches!(self.config.fault_response, FaultResponsePolicy::MigrateRegion) {
            return;
        }
        let interval = self.config.checkpoint_interval.as_secs_f64();
        if interval <= 0.0 {
            return;
        }
        let mut due = std::mem::take(&mut self.checkpoint_scratch);
        due.clear();
        // lint:allow(hot-path-purity, reason = "scratch buffer reuses its capacity across epochs; extend allocates only until the high-water mark")
        due.extend(
            self.running
                .iter()
                .filter(|(_, a)| now - a.last_checkpoint >= interval)
                .map(|(&id, _)| id),
        );
        for app_id in due.drain(..) {
            self.checkpoint_app(app_id, now);
        }
        self.checkpoint_scratch = due;
    }

    /// Captures one application's live task state: every non-done task
    /// pauses for the image write (a fraction of the migration delay,
    /// re-issued under a fresh instance counter exactly like a
    /// migration), the dirty span resets, and `AppCheckpointed` chains
    /// back to the placement it protects.
    // lint:effect(alloc, reason = "checkpoint lane: re-keying the running map is checkpoint-proportional, paid only on the migration policy's cadence")
    fn checkpoint_app(&mut self, app_id: u64, now: f64) {
        let Some(mut app) = self.running.remove(&app_id) else {
            debug_assert!(false, "checkpoint target {app_id} is not running");
            return;
        };
        let live = app
            .tasks
            .iter()
            .filter(|t| !matches!(t, TaskState::Done { .. }))
            .count();
        if live == 0 {
            // Fully computed; only the completion event is in flight.
            app.last_checkpoint = now;
            self.running.insert(app_id, app);
            return;
        }
        let pause = self.config.migration_delay.as_secs_f64() * CHECKPOINT_PAUSE_FRACTION;
        let inc = self.next_inc;
        self.next_inc += 1;
        app.inc = inc;
        for t in 0..app.tasks.len() {
            let task = TaskId(t as u32);
            match app.tasks[t] {
                TaskState::Running { finish } => {
                    let finish = finish + pause;
                    app.tasks[t] = TaskState::Running { finish };
                    self.queue.schedule(
                        SimTime::from_ns((finish * 1e9).round() as u64),
                        Ev::TaskFinish { app: app_id, task, inc },
                    );
                }
                TaskState::Waiting if app.predecessors_done(task) => {
                    let ready = app.input_ready_time(task, |p, to| {
                        let bits = app
                            .graph
                            .edges()
                            .iter()
                            .find(|e| e.from == p && e.to == to)
                            .map(|e| e.bits)
                            .unwrap_or(0.0);
                        let src = app.mapping.coord_of(p);
                        let dst = app.mapping.coord_of(to);
                        let base = self.link_model.message_cost(src, dst, bits).latency;
                        match &self.link_loads {
                            Some(loads) => {
                                base * self.contention.route_factor(loads, src, dst)
                            }
                            None => base,
                        }
                    });
                    let ready = ready.max(now) + pause;
                    self.queue.schedule(
                        SimTime::from_ns((ready * 1e9).round() as u64),
                        Ev::TaskReady { app: app_id, task, inc },
                    );
                }
                // Still waiting on predecessors (their completion wakes
                // it under the new counter), or already done.
                TaskState::Waiting | TaskState::Done { .. } => {}
            }
        }
        app.last_checkpoint = now;
        self.metrics.apps_checkpointed += 1;
        let mapped_event = app.mapped_event;
        self.running.insert(app_id, app);
        self.emit_caused(
            now,
            CauseKind::Checkpoint,
            mapped_event,
            SimEvent::AppCheckpointed {
                app: app_id,
                tasks: live as u32,
                bytes: (live as u64) * (MIGRATION_STATE_BITS as u64 / 8),
            },
        );
    }

    /// Tears a running application down: frees every core it still owns,
    /// returns its power reservation, and orphans its in-flight events
    /// (their instance counter no longer matches any running app — and if
    /// the app is later re-admitted under the same id, the new instance
    /// gets a fresh counter). Returns the pieces a restart needs, or
    /// `None` when the victim is not actually running (a caller bug the
    /// fault-response paths guard with a debug assertion).
    fn teardown_app(
        &mut self,
        app_id: u64,
        now: f64,
    ) -> Option<(AppId, manytest_workload::TaskGraph, f64)> {
        let app = self.running.remove(&app_id)?;
        for t in 0..app.tasks.len() {
            let task = TaskId(t as u32);
            let core = self.mesh.node_id(app.mapping.coord_of(task)).index();
            if self.store.owner(core) == Some((app.id, task)) {
                self.store.set_owner(core, None);
                self.set_mode(core, now, CoreMode::Off);
            }
        }
        self.budget.release(app.reservation);
        Some((app.id, app.graph, app.arrived_at))
    }

    fn abort_app(&mut self, app_id: u64, core: usize, now: f64, qid: EventId) {
        let Some((id, _graph, _arrived)) = self.teardown_app(app_id, now) else {
            debug_assert!(false, "quarantine victim {app_id} is not running");
            return;
        };
        self.metrics.apps_aborted += 1;
        self.emit_caused(
            now,
            CauseKind::Quarantine,
            qid,
            SimEvent::AppAborted {
                app: id.0,
                core: core as u32,
            },
        );
    }

    /// Re-queues the victim at the *front* of the pending queue with its
    /// original arrival stamp: it lost its progress, not its priority.
    // lint:effect(alloc, reason = "fault-response lane: requeueing a restarted app is quarantine-proportional, not epoch-proportional")
    fn restart_app(&mut self, app_id: u64, core: usize, now: f64, qid: EventId) {
        let Some((id, graph, arrived_at)) = self.teardown_app(app_id, now) else {
            debug_assert!(false, "quarantine victim {app_id} is not running");
            return;
        };
        self.metrics.apps_restarted += 1;
        let restarted = self.emit_caused(
            now,
            CauseKind::Quarantine,
            qid,
            SimEvent::AppRestarted {
                app: id.0,
                core: core as u32,
            },
        );
        // The eventual re-admission (AppMapped/AppRejected) chains back
        // through this restart rather than the original arrival.
        self.pending_cause
            .insert(id.0, CauseLink::new(CauseKind::Restart, restarted));
        self.pending.push_front(Application {
            id,
            graph,
            arrival: SimTime::from_ns((arrived_at * 1e9).round() as u64),
        });
    }

    /// Remaps the victim in place: surviving tasks keep their progress,
    /// displaced live tasks move to healthy cores and pay the
    /// architectural-state transfer as a completion delay plus NoC
    /// traffic. Falls back to [`System::restart_app`] when no healthy
    /// placement exists.
    // lint:effect(alloc, reason = "fault-response lane: remapping a migrated app is quarantine-proportional, not epoch-proportional")
    fn migrate_app(&mut self, app_id: u64, bad_core: usize, now: f64, qid: EventId) {
        // Remap context: the app's own nodes are offered back as free;
        // the quarantined node (like every unhealthy node) is excluded.
        {
            let n = self.mesh.node_count();
            self.profile.ctx_rebuilds += 1;
            let ctx = &mut self.ctx_scratch;
            ctx.reset(self.mesh);
            for i in 0..n {
                let mine = self
                    .store
                    .owner(i)
                    .map_or(false, |(a, _)| a.0 == app_id);
                let s = self.stress.core(i);
                let in_test = if self.store.has_session(i) { 5.0 } else { 0.0 };
                ctx.push_node_health(
                    self.store.is_free_for_mapping(i) || mine,
                    !self.health.is_withdrawn(i),
                    s.utilization.clamp(0.0, 1.0),
                    self.criticality.criticality(s, now).max(0.0) + in_test,
                );
            }
        }
        // Work on the entry by value (same pattern as task completion):
        // one invariant-checked removal replaces every panicking lookup
        // below, and the entry goes back into the map before the
        // migration event fires.
        let Some(mut app) = self.running.remove(&app_id) else {
            debug_assert!(false, "quarantine victim {app_id} is not running");
            return;
        };
        let new_mapping = match self.mapper.remap(&self.ctx_scratch, &app.graph) {
            Some(m) => m,
            None => {
                self.running.insert(app_id, app);
                self.restart_app(app_id, bad_core, now, qid);
                return;
            }
        };
        let inc = self.next_inc;
        self.next_inc += 1;
        // Checkpoint-proportional charge: each moved task ships its last
        // checkpoint image plus everything dirtied since, so both the
        // transfer delay and the NoC payload scale with the dirty span.
        // With checkpointing disabled the span runs back to admission.
        let dirty = (now - app.last_checkpoint).max(0.0);
        let factor = 1.0 + dirty / DIRTY_SPAN_REF_SECS;
        let delay = self.config.migration_delay.as_secs_f64() * factor;
        let state_bits = MIGRATION_STATE_BITS * factor;
        let task_count = app.tasks.len();
        let op = app.op;
        app.inc = inc;
        // The transfer re-materialises every surviving task's state at
        // its destination: the app is effectively checkpointed now.
        app.last_checkpoint = now;
        let old_mapping = std::mem::replace(&mut app.mapping, new_mapping);
        let mut moved_tasks = 0u32;
        let mut total_delay = 0.0;
        // Vacate every displaced task's old core before claiming any new
        // one: a moved task may land on a sibling's old core, which is
        // only safe once the whole old footprint is released.
        for t in 0..task_count {
            let task = TaskId(t as u32);
            let old = old_mapping.coord_of(task);
            if old == app.mapping.coord_of(task) {
                continue;
            }
            let oc = self.mesh.node_id(old).index();
            if self.store.owner(oc) == Some((AppId(app_id), task)) {
                self.store.set_owner(oc, None);
                self.set_mode(oc, now, CoreMode::Off);
            }
        }
        for t in 0..task_count {
            let task = TaskId(t as u32);
            let old = old_mapping.coord_of(task);
            let new = app.mapping.coord_of(task);
            if old == new {
                continue;
            }
            let state = app.tasks[t];
            if matches!(state, TaskState::Done { .. }) {
                continue; // finished tasks have no live state to move
            }
            moved_tasks += 1;
            total_delay += delay;
            let nc = self.mesh.node_id(new).index();
            if self.store.has_session(nc) {
                self.abort_session(nc, now, AbortReason::MappedOver);
            }
            debug_assert!(self.store.owner(nc).is_none());
            self.store.set_owner(nc, Some((AppId(app_id), task)));
            let mode = if matches!(state, TaskState::Running { .. }) {
                CoreMode::Busy(op)
            } else {
                CoreMode::Idle(op)
            };
            self.set_mode(nc, now, mode);
            // The state transfer crosses the NoC like any other message.
            self.traffic.charge_route(old, new, state_bits);
            if self.config.model_contention {
                self.epoch_traffic.charge_route(old, new, state_bits);
            }
            let cost = self.link_model.message_cost(old, new, state_bits);
            self.meter.add_energy(PowerCategory::Noc, cost.energy);
        }
        // Re-issue the in-flight timing under the new instance counter;
        // moved tasks finish (or become ready) one transfer-delay late.
        for t in 0..task_count {
            let task = TaskId(t as u32);
            let moved = old_mapping.coord_of(task) != app.mapping.coord_of(task);
            let penalty = if moved { delay } else { 0.0 };
            match app.tasks[t] {
                TaskState::Running { finish } => {
                    let finish = finish + penalty;
                    app.tasks[t] = TaskState::Running { finish };
                    self.queue.schedule(
                        SimTime::from_ns((finish * 1e9).round() as u64),
                        Ev::TaskFinish { app: app_id, task, inc },
                    );
                }
                TaskState::Waiting if app.predecessors_done(task) => {
                    let ready = app.input_ready_time(task, |p, to| {
                        let bits = app
                            .graph
                            .edges()
                            .iter()
                            .find(|e| e.from == p && e.to == to)
                            .map(|e| e.bits)
                            .unwrap_or(0.0);
                        let src = app.mapping.coord_of(p);
                        let dst = app.mapping.coord_of(to);
                        let base = self.link_model.message_cost(src, dst, bits).latency;
                        match &self.link_loads {
                            Some(loads) => {
                                base * self.contention.route_factor(loads, src, dst)
                            }
                            None => base,
                        }
                    });
                    let ready = ready.max(now) + penalty;
                    self.queue.schedule(
                        SimTime::from_ns((ready * 1e9).round() as u64),
                        Ev::TaskReady { app: app_id, task, inc },
                    );
                }
                // Still waiting on predecessors (their completion will
                // wake it under the new counter), or already done.
                TaskState::Waiting | TaskState::Done { .. } => {}
            }
        }
        self.running.insert(app_id, app);
        self.metrics.apps_migrated += 1;
        self.emit_caused(
            now,
            CauseKind::Quarantine,
            qid,
            SimEvent::AppMigrated {
                app: app_id,
                core: bad_core as u32,
                moved_tasks,
                delay: total_delay,
            },
        );
    }

    // ----- epoch close ----------------------------------------------------

    fn close_epoch(&mut self, t1: f64) {
        // One cache-linear pass over the mode array. Power-gated cores
        // draw exactly 0 W, so charging them adds 0.0 joules everywhere —
        // a float no-op (all accumulators are non-negative, so `x + 0.0`
        // cannot even flip a `-0.0`). Skipping them leaves their
        // accounting watermark stale, which the next `set_mode` settles
        // by charging the whole gated span at 0 W: identical arithmetic,
        // fewer meter calls.
        for core in 0..self.store.len() {
            if matches!(self.store.mode(core), CoreMode::Off) {
                continue;
            }
            self.charge_core(core, t1);
        }
        let epoch_secs = self.config.epoch.as_secs_f64();
        let measured = self.meter.epoch_power(epoch_secs);
        let test_w = self
            .meter
            .epoch_category_power(PowerCategory::Test, epoch_secs);
        let workload_w = self
            .meter
            .epoch_category_power(PowerCategory::Workload, epoch_secs);
        if measured > self.tdp * 1.01 {
            self.metrics.cap_violations += 1;
        }
        // Flight recorder: per-core epoch powers are needed after the
        // aging loops below reset the energy accumulators, so stage them
        // in the scratch buffer now (the transient-thermal path refills
        // it with the same values).
        if self.recorder.is_some() && self.thermal.is_none() {
            self.powers_scratch.clear();
            self.powers_scratch
                // lint:allow(hot-path-purity, reason = "scratch buffer reuses its capacity across epochs; extend allocates only until the high-water mark")
                .extend(self.epoch_energy.iter().map(|&e| e / epoch_secs));
        }
        self.trace.series_mut("power_w").push(t1, measured);
        self.trace.series_mut("test_power_w").push(t1, test_w);
        self.trace.series_mut("workload_power_w").push(t1, workload_w);
        self.trace.series_mut("cap_w").push(t1, self.budget.cap());
        self.trace.series_mut("tdp_w").push(t1, self.tdp);
        self.trace
            .series_mut("pending_apps")
            .push(t1, self.pending.len() as f64);
        let testing = self.store.testing_count();
        self.trace
            .series_mut("active_tests")
            .push(t1, testing as f64);
        // Graceful-degradation trajectory: capacity outside withdrawal
        // (quarantine + probation) — re-admission shows up as recovery.
        self.trace.series_mut("healthy_cores").push(
            t1,
            (self.store.len() - self.health.withdrawn_count()) as f64,
        );
        if let Some(grid) = &mut self.thermal {
            // Transient thermal path: advance the RC grid with this
            // epoch's per-tile powers, then charge damage at the *actual*
            // tile temperature. The power vector lives in a scratch
            // buffer so steady-state epochs stay allocation-free.
            let powers = &mut self.powers_scratch;
            powers.clear();
            // lint:allow(hot-path-purity, reason = "scratch buffer reuses its capacity across epochs; extend allocates only until the high-water mark")
            powers.extend(self.epoch_energy.iter().map(|&e| e / epoch_secs));
            grid.step(powers, epoch_secs);
            self.profile.thermal_steps += 1;
            for core in 0..self.store.len() {
                let busy = (self.epoch_busy[core] / epoch_secs).clamp(0.0, 1.0);
                let temperature = grid.temperature(core);
                self.stress.record_epoch_at_temperature(
                    core,
                    &self.aging,
                    temperature,
                    busy,
                    epoch_secs,
                );
                self.epoch_busy[core] = 0.0;
                self.epoch_energy[core] = 0.0;
            }
            self.trace
                .series_mut("max_temp_k")
                .push(t1, grid.max_temperature());
        } else {
            for core in 0..self.store.len() {
                let busy = (self.epoch_busy[core] / epoch_secs).clamp(0.0, 1.0);
                let avg_power = self.epoch_energy[core] / epoch_secs;
                self.stress
                    .record_epoch(core, &self.aging, avg_power, busy, epoch_secs);
                self.epoch_busy[core] = 0.0;
                self.epoch_energy[core] = 0.0;
            }
        }
        self.trace
            .series_mut("mean_utilization")
            .push(t1, self.stress.mean_utilization());
        if self.config.model_contention {
            let loads = LinkLoads::from_traffic(
                &self.epoch_traffic,
                epoch_secs,
                self.link_model.link_bandwidth,
            );
            self.trace.series_mut("peak_link_load").push(t1, loads.peak());
            self.link_loads = Some(loads);
            self.epoch_traffic.clear();
        }
        if self.recorder.is_some() {
            self.profile.snapshots += 1;
            let cores: Vec<CoreState> = (0..self.store.len())
                .map(|i| CoreState {
                    power_w: self.powers_scratch[i],
                    temp_k: self.thermal.as_ref().map_or(0.0, |g| g.temperature(i)),
                    vf_level: Self::mode_level(self.store.mode(i)),
                    health: if self.health.is_quarantined(i) {
                        HealthCode::Quarantined
                    } else if self.health.is_probation(i) {
                        HealthCode::Probation
                    } else if self.health.is_suspect(i) {
                        HealthCode::Suspect
                    } else {
                        HealthCode::Healthy
                    },
                    occupied: self.store.owner(i).is_some(),
                    testing: self.store.has_session(i),
                })
                // lint:allow(hot-path-purity, reason = "flight-recorder snapshot: gated behind an opt-in recorder and rate-limited; off in measured runs")
                .collect();
            let snapshot = StateSnapshot {
                t: t1,
                cap_w: self.budget.cap(),
                headroom_w: self.budget.headroom(),
                power_w: measured,
                test_power_w: test_w,
                reservations: self.budget.active_reservations() as u32,
                pending_apps: self.pending.len() as u32,
                running_apps: self.running.len() as u32,
                active_tests: testing as u32,
                cores,
            };
            if let Some(rec) = &mut self.recorder {
                rec.push(snapshot);
            }
        }
        self.meter.roll_epoch(epoch_secs);
        self.measured_last = measured;
        // Epoch boundary: expire the dirty set and open a new generation
        // (and fold the run-long dirty-mark count into the profile).
        self.profile.dirty_marks = self.store.dirty_marks();
        self.store.advance_generation();
    }

    // ----- report ----------------------------------------------------------

    fn finalize(mut self) -> Report {
        if let Some(p) = &self.progress {
            p.finish(self.observer.dropped_records());
        }
        let events = self.observer.take_log().unwrap_or_default();
        let sim_seconds = self.meter.total_seconds();
        let n = self.store.len();
        let ledger = self.scheduler.ledger();
        let tests_per_core: Vec<u64> = (0..n).map(|c| ledger.tests_on_core(c)).collect();
        let damage_per_core: Vec<f64> =
            self.stress.iter().map(|s| s.total_damage).collect();
        Report {
            sim_seconds,
            apps_arrived: self.metrics.apps_arrived,
            apps_completed: self.metrics.apps_completed,
            apps_in_flight: (self.pending.len() + self.running.len()) as u64,
            apps_pending: self.pending.len() as u64,
            apps_rejected: self.apps_rejected,
            instructions_executed: self.metrics.instructions,
            throughput_mips: if sim_seconds > 0.0 {
                self.metrics.instructions as f64 / sim_seconds / 1e6
            } else {
                0.0
            },
            mean_app_latency: self.metrics.app_latency.mean(),
            mean_queue_wait: self.metrics.queue_wait.mean(),
            mean_power: self.meter.mean_power(),
            peak_power: self.meter.peak_epoch_power(),
            tdp: self.tdp,
            cap_violations: self.metrics.cap_violations,
            cap_adjustments: self.metrics.cap_adjustments,
            test_energy_share: self.meter.total_share(PowerCategory::Test),
            noc_energy_share: self.meter.total_share(PowerCategory::Noc),
            tests_completed: self.metrics.tests_completed,
            tests_aborted: self.metrics.tests_aborted,
            tests_in_flight: self.store.testing_count() as u64,
            tests_denied_power: self.scheduler.denied_for_power(),
            min_tests_per_core: tests_per_core.iter().copied().min().unwrap_or(0),
            max_tests_per_core: tests_per_core.iter().copied().max().unwrap_or(0),
            mean_test_interval: self.metrics.test_interval.mean(),
            max_test_interval: self.metrics.test_interval.max().unwrap_or(0.0),
            full_vf_coverage: ledger.fully_covered(),
            tests_per_level: ledger.tests_per_level(),
            tests_per_core,
            damage_per_core,
            faults_injected: self.faults.len() as u64,
            faults_detected: self.faults.detected_count() as u64,
            fault_detections: self.faults.detections(),
            fault_activations: self.metrics.fault_activations,
            mean_detection_latency: self.faults.mean_detection_latency().unwrap_or(0.0),
            cores_suspected: self.metrics.cores_suspected,
            cores_quarantined: self.metrics.cores_quarantined,
            cores_cleared: self.metrics.cores_cleared,
            false_quarantines: self.metrics.false_quarantines,
            confirmation_retests: self.metrics.confirmation_retests,
            probes_launched: self.metrics.probes_launched,
            cores_readmitted: self.metrics.cores_readmitted,
            cores_requarantined: self.metrics.cores_requarantined,
            probe_budget: u64::from(self.config.probe_budget),
            healthy_cores_end: (self.store.len() - self.health.withdrawn_count()) as u64,
            apps_aborted: self.metrics.apps_aborted,
            apps_restarted: self.metrics.apps_restarted,
            apps_migrated: self.metrics.apps_migrated,
            apps_checkpointed: self.metrics.apps_checkpointed,
            corruption_exposure: self.metrics.corruption_exposure,
            mean_utilization: self.stress.mean_utilization(),
            dark_fraction: self.config.node.dark_silicon_fraction(),
            mean_hop_cost: self.metrics.hop_cost.mean(),
            profile: self.profile,
            state: self
                .recorder
                .take()
                .map(StateRecorder::into_timeline)
                .unwrap_or_default(),
            trace: self.trace,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_power::TechNode;
    use manytest_sim::TraceSeries;

    fn quick(node: TechNode) -> SystemBuilder {
        SystemBuilder::new(node).seed(11).sim_time_ms(160).arrival_rate(200.0)
    }

    #[test]
    fn run_produces_activity() {
        let r = quick(TechNode::N16).build().unwrap().run();
        assert!(r.apps_arrived > 0);
        assert!(r.apps_completed > 0);
        assert!(r.instructions_executed > 0);
        assert!(r.throughput_mips > 0.0);
        assert!(r.mean_power > 0.0);
    }

    #[test]
    fn testing_runs_and_is_power_bounded() {
        let r = quick(TechNode::N16).build().unwrap().run();
        assert!(r.tests_completed > 0, "tests must run on a lightly loaded chip");
        assert_eq!(r.cap_violations, 0, "admission control must honour the TDP");
        assert!(r.peak_power <= r.tdp * 1.26, "peak {} vs tdp {}", r.peak_power, r.tdp);
    }

    #[test]
    fn disabling_tests_yields_zero_test_energy() {
        let r = quick(TechNode::N16).testing(false).build().unwrap().run();
        assert_eq!(r.tests_completed, 0);
        assert_eq!(r.tests_aborted, 0);
        assert_eq!(r.test_energy_share, 0.0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let a = quick(TechNode::N22).build().unwrap().run();
        let b = quick(TechNode::N22).build().unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(TechNode::N22).seed(1).build().unwrap().run();
        let b = quick(TechNode::N22).seed(2).build().unwrap().run();
        assert_ne!(a.apps_arrived, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn throughput_penalty_of_testing_is_small() {
        let base = quick(TechNode::N16).testing(false).build().unwrap().run();
        let tested = quick(TechNode::N16).testing(true).build().unwrap().run();
        let penalty = tested.throughput_penalty_vs(&base);
        assert!(
            penalty < 0.05,
            "testing should cost little throughput, got {:.2}%",
            penalty * 100.0
        );
    }

    #[test]
    fn builder_validation_errors() {
        let mut cfg = SystemConfig::for_node(TechNode::N16);
        cfg.epoch = manytest_sim::Duration::ZERO;
        assert_eq!(
            SystemBuilder::from_config(cfg.clone()).build().err(),
            Some(BuildError::ZeroEpoch)
        );
        cfg.epoch = manytest_sim::Duration::from_ms(2);
        cfg.horizon = manytest_sim::Duration::from_ms(1);
        assert_eq!(
            SystemBuilder::from_config(cfg.clone()).build().err(),
            Some(BuildError::HorizonTooShort)
        );
        cfg.horizon = manytest_sim::Duration::from_ms(100);
        cfg.arrival_rate = 0.0;
        assert_eq!(
            SystemBuilder::from_config(cfg.clone()).build().err(),
            Some(BuildError::InvalidArrivalRate)
        );
        cfg.arrival_rate = 10.0;
        cfg.dvfs_levels = 1;
        assert_eq!(
            SystemBuilder::from_config(cfg).build().err(),
            Some(BuildError::TooFewDvfsLevels)
        );
    }

    #[test]
    fn fault_config_validation_errors() {
        for (mutate, field) in [
            (
                (|c: &mut SystemConfig| c.vf_windowed_fault_fraction = 1.5)
                    as fn(&mut SystemConfig),
                "vf_windowed_fault_fraction",
            ),
            (
                |c: &mut SystemConfig| c.intermittent_fault_fraction = -0.1,
                "intermittent_fault_fraction",
            ),
            (
                |c: &mut SystemConfig| c.test_false_positive_rate = f64::NAN,
                "test_false_positive_rate",
            ),
        ] {
            let mut cfg = SystemConfig::for_node(TechNode::N16);
            mutate(&mut cfg);
            match SystemBuilder::from_config(cfg).build().err() {
                Some(BuildError::InvalidFaultFraction { field: f, .. }) => {
                    assert_eq!(f, field);
                }
                other => panic!("expected InvalidFaultFraction for {field}, got {other:?}"),
            }
        }
        // Faults with no horizon to place them in: rejected before the
        // generic horizon check so the message names the real problem.
        let mut cfg = SystemConfig::for_node(TechNode::N16);
        cfg.injected_faults = 3;
        cfg.horizon = manytest_sim::Duration::ZERO;
        assert_eq!(
            SystemBuilder::from_config(cfg).build().err(),
            Some(BuildError::FaultsNeedHorizon)
        );
    }

    #[test]
    fn detections_drive_quarantines_and_capacity_degrades() {
        let r = quick(TechNode::N22)
            .sim_time_ms(400)
            .injected_faults(6)
            .build()
            .unwrap()
            .run();
        let n = r.tests_per_core.len() as u64;
        assert!(r.cores_quarantined > 0, "solid faults must confirm: {r:?}");
        assert!(r.confirmation_retests > 0, "quarantine needs K retests first");
        assert!(r.cores_suspected >= r.cores_quarantined + r.cores_cleared);
        assert!(r.healthy_cores_end < n, "quarantine must cost capacity");
        assert_eq!(r.false_quarantines, 0, "solid faults are true positives");
        let healthy = r.trace.series("healthy_cores").expect("trajectory series");
        assert_eq!(healthy.max_value(), Some(n as f64));
        let end = healthy.points().last().unwrap().1;
        assert!(end < n as f64, "trajectory must end degraded: {end} vs {n}");
    }

    #[test]
    fn false_positives_never_permanently_quarantine() {
        let r = quick(TechNode::N16)
            .sim_time_ms(300)
            .test_false_positives(0.05)
            .build()
            .unwrap()
            .run();
        let n = r.tests_per_core.len() as u64;
        assert!(r.cores_suspected > 0, "5% false alarms must open suspicions");
        assert!(r.cores_cleared > 0, "clean cores must clear on retests");
        assert_eq!(r.cores_quarantined, 0, "no fault can ever confirm");
        assert_eq!(r.healthy_cores_end, n, "full capacity survives");
    }

    #[test]
    fn response_policies_reconcile_and_keep_quarantined_cores_dark() {
        use crate::config::FaultResponsePolicy as P;
        for policy in [P::Abort, P::RestartElsewhere, P::MigrateRegion] {
            let r = quick(TechNode::N22)
                .sim_time_ms(400)
                .arrival_rate(2_000.0)
                .injected_faults(8)
                .fault_response(policy)
                .capture_events(1 << 16)
                .build()
                .unwrap()
                .run();
            assert_eq!(r.events.dropped(), 0);
            crate::audit::validate_events(&r).unwrap_or_else(|e| {
                panic!("policy {policy}: {e}");
            });
            assert!(r.cores_quarantined > 0, "policy {policy} saw no quarantine");
        }
    }

    #[test]
    fn ignoring_faults_maximises_corruption_exposure() {
        let run = |policy| {
            quick(TechNode::N22)
                .sim_time_ms(400)
                .arrival_rate(2_000.0)
                .injected_faults(8)
                .fault_response(policy)
                .build()
                .unwrap()
                .run()
        };
        let ignored = run(FaultResponsePolicy::Ignore);
        let handled = run(FaultResponsePolicy::RestartElsewhere);
        assert_eq!(ignored.cores_suspected, 0, "Ignore is detection-only");
        assert_eq!(ignored.cores_quarantined, 0);
        assert!(ignored.corruption_exposure > 0.0, "faulty cores keep working");
        assert!(handled.cores_quarantined > 0);
        assert!(
            handled.corruption_exposure <= ignored.corruption_exposure,
            "withdrawing faulty cores cannot increase exposure: {} vs {}",
            handled.corruption_exposure,
            ignored.corruption_exposure
        );
    }

    #[test]
    fn zero_confirmation_retests_quarantine_on_first_detection() {
        let r = quick(TechNode::N22)
            .sim_time_ms(400)
            .injected_faults(6)
            .confirmation_retests(0)
            .build()
            .unwrap()
            .run();
        assert!(r.cores_quarantined > 0);
        assert_eq!(r.confirmation_retests, 0, "K=0 skips confirmation");
        assert_eq!(r.cores_suspected, r.cores_quarantined + r.cores_cleared);
    }

    #[test]
    fn intermittent_faults_are_harder_to_confirm() {
        let r = quick(TechNode::N22)
            .sim_time_ms(500)
            .injected_faults(10)
            .intermittent_faults(1.0)
            .build()
            .unwrap()
            .run();
        // Every fault is intermittent, so any quarantine is "false" in
        // the solid-fault sense, and some suspicions should fail to
        // reproduce within K retests and clear.
        assert_eq!(r.false_quarantines, r.cores_quarantined);
        assert!(
            r.cores_cleared > 0 || r.cores_quarantined > 0,
            "detections must at least open suspicions: {r:?}"
        );
    }

    #[test]
    fn response_pipeline_is_deterministic() {
        let run = || {
            quick(TechNode::N22)
                .sim_time_ms(300)
                .arrival_rate(1_000.0)
                .injected_faults(8)
                .intermittent_faults(0.5)
                .test_false_positives(0.02)
                .fault_response(crate::config::FaultResponsePolicy::MigrateRegion)
                .build()
                .unwrap()
                .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_are_detected_when_testing() {
        let r = quick(TechNode::N22)
            .sim_time_ms(400)
            .injected_faults(5)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.faults_injected, 5);
        assert!(
            r.faults_detected > 0,
            "online testing should find planted faults"
        );
        assert!(r.mean_detection_latency > 0.0);
    }

    #[test]
    fn faults_stay_latent_without_testing() {
        let r = quick(TechNode::N22)
            .sim_time_ms(120)
            .injected_faults(5)
            .testing(false)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.faults_detected, 0);
    }

    #[test]
    fn trace_contains_power_series() {
        let r = quick(TechNode::N16).build().unwrap().run();
        for name in ["power_w", "test_power_w", "cap_w", "tdp_w", "active_tests"] {
            let s = r.trace.series(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.len() as u64, 160, "series {name}");
        }
    }

    #[test]
    fn vf_levels_accumulate_coverage() {
        let r = quick(TechNode::N16).sim_time_ms(200).build().unwrap().run();
        let covered_levels = r.tests_per_level.iter().filter(|&&c| c > 0).count();
        assert!(
            covered_levels >= 2,
            "tests should reach multiple DVFS levels, got {:?}",
            r.tests_per_level
        );
    }

    #[test]
    fn aborts_happen_under_load() {
        // The baseline mapper ignores test criticality, so under heavy
        // arrivals it claims cores mid-session; the test-aware mapper
        // exists precisely to avoid this.
        let r = quick(TechNode::N16)
            .arrival_rate(4_000.0)
            .sim_time_ms(300)
            .mapper(MapperKind::Baseline)
            .build()
            .unwrap()
            .run();
        assert!(r.tests_aborted > 0, "expected non-intrusive aborts under load");
    }

    #[test]
    fn mean_power_stays_under_cap_band() {
        let r = quick(TechNode::N16)
            .arrival_rate(5_000.0)
            .sim_time_ms(60)
            .build()
            .unwrap()
            .run();
        assert!(r.mean_power <= r.tdp * 1.05, "mean {} tdp {}", r.mean_power, r.tdp);
    }

    #[test]
    fn periodic_arrivals_are_evenly_spaced() {
        let r = quick(TechNode::N16)
            .arrival_rate(1_000.0)
            .sim_time_ms(100)
            .periodic_arrivals(true)
            .build()
            .unwrap()
            .run();
        // Exactly rate × horizon arrivals, to within the first/last gap.
        assert!((99..=101).contains(&r.apps_arrived), "got {}", r.apps_arrived);
    }

    #[test]
    fn mesh_override_scales_the_platform() {
        let small = quick(TechNode::N16)
            .mesh_edge(8)
            .sim_time_ms(100)
            .build()
            .unwrap()
            .run();
        assert_eq!(small.tests_per_core.len(), 64);
        assert!(small.apps_arrived > 0);
        assert_eq!(
            quick(TechNode::N16).mesh_edge(0).build().err(),
            Some(BuildError::ZeroMesh)
        );
    }

    #[test]
    fn nbti_recovery_reduces_accumulated_damage() {
        use manytest_aging::RecoveryParams;
        let plain = quick(TechNode::N16).sim_time_ms(300).build().unwrap().run();
        let healing = quick(TechNode::N16)
            .sim_time_ms(300)
            .aging(manytest_aging::AgingModel::default().with_recovery(RecoveryParams::default()))
            .build()
            .unwrap()
            .run();
        let total = |r: &Report| r.damage_per_core.iter().sum::<f64>();
        assert!(
            total(&healing) < total(&plain),
            "recovery must reduce total damage: {} vs {}",
            total(&healing),
            total(&plain)
        );
    }

    #[test]
    fn contention_model_inflates_latency_under_traffic() {
        let run = |contention: bool| {
            quick(TechNode::N16)
                .arrival_rate(3_000.0)
                .sim_time_ms(200)
                .model_contention(contention)
                .build()
                .unwrap()
                .run()
        };
        let without = run(false);
        let with = run(true);
        // Contention can only delay messages, never speed them up.
        assert!(with.mean_app_latency >= without.mean_app_latency * 0.999);
        let loads = with.trace.series("peak_link_load").expect("load trace");
        assert!(loads.max_value().unwrap() > 0.0, "traffic must load links");
        assert!(loads.max_value().unwrap() <= 1.0);
    }

    #[test]
    fn transient_thermal_runs_and_heats_the_die() {
        let r = quick(TechNode::N16)
            .arrival_rate(2_000.0)
            .sim_time_ms(200)
            .transient_thermal(true)
            .build()
            .unwrap()
            .run();
        let temps = r.trace.series("max_temp_k").expect("thermal trace");
        let peak = temps.max_value().unwrap();
        assert!(peak > 318.15, "the die must warm above ambient");
        assert!(peak < 400.0, "and stay physically plausible, got {peak} K");
        assert!(r.tests_completed > 0);
        // Damage still accumulates through the alternative path.
        assert!(r.damage_per_core.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn thermal_choice_does_not_change_power_accounting() {
        // With criticality-independent policies (baseline mapper, no
        // testing) the thermal model only affects aging bookkeeping: the
        // execution and power paths must be bit-identical.
        let fixed = |transient: bool| {
            quick(TechNode::N16)
                .sim_time_ms(150)
                .mapper(MapperKind::Baseline)
                .testing(false)
                .transient_thermal(transient)
                .build()
                .unwrap()
                .run()
        };
        let proxy = fixed(false);
        let rc = fixed(true);
        assert_eq!(proxy.instructions_executed, rc.instructions_executed);
        assert!((proxy.mean_power - rc.mean_power).abs() < 1e-9);
        // ...while the damage numbers legitimately differ.
        assert_ne!(proxy.damage_per_core, rc.damage_per_core);
    }

    #[test]
    fn oversized_apps_are_rejected_without_blocking_the_queue() {
        use manytest_workload::{Task, TaskGraph, TaskGraphGenerator, WorkloadMix};
        // A graph larger than the whole 6x6 (45nm) mesh.
        let mut huge = TaskGraph::new("huge");
        let ids: Vec<_> = (0..40)
            .map(|_| huge.add_task(Task { instructions: 1_000 }))
            .collect();
        for w in ids.windows(2) {
            huge.add_edge(w[0], w[1], 10.0);
        }
        let mut mix = WorkloadMix::new();
        mix.add_preset(huge, 1.0);
        mix.add_random(TaskGraphGenerator::default(), 1.0);
        let r = quick(TechNode::N45)
            .workload(mix)
            .build()
            .unwrap()
            .run();
        assert!(r.apps_rejected > 0, "oversized apps must be rejected");
        assert!(
            r.apps_completed > 0,
            "rejection must not head-of-line-block the feasible apps"
        );
    }

    #[test]
    fn all_nodes_run() {
        for node in TechNode::ALL {
            let r = quick(node).sim_time_ms(20).build().unwrap().run();
            assert!(r.apps_arrived > 0, "{node} run produced no arrivals");
        }
    }

    #[test]
    fn captured_events_reconcile_with_the_report() {
        let r = quick(TechNode::N16)
            .capture_events(1 << 16)
            .injected_faults(4)
            .build()
            .unwrap()
            .run();
        assert!(!r.events.is_empty(), "capture must record events");
        assert_eq!(r.events.dropped(), 0, "capacity must suffice for this run");
        crate::audit::validate_events(&r).expect("event counts reconcile with aggregates");
        // Spot-check the two invariants the paper's control loop lives by.
        assert_eq!(r.events.count("TestDeniedPower"), r.tests_denied_power);
        assert_eq!(
            r.events.count("TestLaunched"),
            r.tests_completed + r.tests_aborted + r.tests_in_flight
        );
        // Capture must not perturb the simulation itself.
        let plain = quick(TechNode::N16).injected_faults(4).build().unwrap().run();
        assert_eq!(plain.instructions_executed, r.instructions_executed);
        assert_eq!(plain.tests_completed, r.tests_completed);
        assert_eq!(plain.trace, r.trace);
    }

    #[test]
    fn default_runs_capture_no_events() {
        let r = quick(TechNode::N16).build().unwrap().run();
        assert!(r.events.is_empty(), "null observer must keep the log empty");
        assert_eq!(r.events.total(), 0);
    }

    #[test]
    fn bounded_trace_caps_series_length() {
        let bounded = quick(TechNode::N16).trace_bound(64).build().unwrap().run();
        let full = quick(TechNode::N16).build().unwrap().run();
        let series = bounded.trace.series("power_w").expect("power series exists");
        assert!(series.len() <= 64, "bound must cap the series, got {}", series.len());
        assert!(series.len() >= 32, "decimation halves at worst, got {}", series.len());
        assert_eq!(full.trace.series("power_w").map(TraceSeries::len), Some(160));
        // Bounding the trace is observability-only: the run itself is identical.
        assert_eq!(bounded.instructions_executed, full.instructions_executed);
        assert_eq!(bounded.tests_completed, full.tests_completed);
    }

    #[test]
    fn phase_profile_counts_every_epoch() {
        let r = quick(TechNode::N16).build().unwrap().run();
        let p = &r.profile;
        assert_eq!(p.epochs, 160);
        assert_eq!(p.pid_updates, p.epochs);
        assert_eq!(p.fault_sweeps, p.epochs);
        assert_eq!(p.admit_scans, p.epochs);
        assert_eq!(p.sched_calls, p.epochs, "testing on → scheduler runs every epoch");
        assert_eq!(p.thermal_steps, 0, "steady-state proxy takes no grid steps");
        assert_eq!(p.snapshots, 0, "recorder off by default");
        assert!(p.events_processed > 0, "completions must flow through the queue");
        assert!(p.queue_batches > 0);
        assert!(p.batch_high_water >= 1);
        assert!(p.sched_launches > 0, "a 160 ms run launches tests");
        assert_eq!(
            p.sched_launches,
            r.tests_completed + r.tests_aborted + r.tests_in_flight
        );
        assert_eq!(p.pid_updates, r.cap_adjustments);
        // Incremental-structure counters: every launch was popped off the
        // heap, the map context was built at most once per admit scan,
        // and every admission queried the maintained free set and
        // patched the context in place.
        assert!(p.heap_pops >= p.sched_launches);
        assert!(p.ctx_rebuilds > 0, "admissions build the context");
        assert!(p.ctx_rebuilds <= p.admit_scans);
        assert!(p.free_set_queries >= p.apps_admitted);
        assert!(p.ctx_delta_updates >= p.apps_admitted);
        assert!(p.candidates_scanned > 0, "the scheduler walks the testable set");
        assert!(p.dirty_marks > 0, "mutations mark cores dirty");
    }

    #[test]
    fn thermal_phase_steps_once_per_epoch_when_transient() {
        let r = quick(TechNode::N16)
            .sim_time_ms(40)
            .transient_thermal(true)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.profile.thermal_steps, r.profile.epochs);
    }

    #[test]
    fn flight_recorder_reconciles_with_aggregates() {
        let r = quick(TechNode::N16)
            .record_state(1 << 12)
            .capture_events(1 << 16)
            .injected_faults(4)
            .build()
            .unwrap()
            .run();
        assert!(!r.state.is_empty(), "recorder must capture snapshots");
        assert_eq!(r.state.seen(), r.profile.epochs, "one snapshot offered per epoch");
        assert_eq!(r.state.snapshots().len() as u64, 160, "capacity covers every epoch");
        let last = r.state.last().expect("non-empty timeline has a last snapshot");
        assert_eq!(last.cores.len(), r.state.core_count());
        assert!((last.t - r.sim_seconds).abs() < 1e-9, "last snapshot is the final epoch");
        // The audit layer cross-checks queue depths, health tallies and
        // the profiler's offer count against the report aggregates.
        crate::audit::validate_events(&r).expect("state timeline reconciles");
    }

    #[test]
    fn bounded_recorder_decimates_but_keeps_the_last_snapshot() {
        let r = quick(TechNode::N16).record_state(16).build().unwrap().run();
        let n = r.state.snapshots().len();
        assert!(n <= 16, "bound must cap the timeline, got {n}");
        assert!(n >= 8, "decimation halves at worst, got {n}");
        assert_eq!(r.state.seen(), 160, "every epoch was offered");
        let last = r.state.last().expect("last snapshot survives decimation");
        assert!((last.t - r.sim_seconds).abs() < 1e-9);
    }

    #[test]
    fn recording_state_does_not_perturb_the_run() {
        let recorded = quick(TechNode::N16).record_state(64).build().unwrap().run();
        let plain = quick(TechNode::N16).build().unwrap().run();
        assert_eq!(recorded.instructions_executed, plain.instructions_executed);
        assert_eq!(recorded.tests_completed, plain.tests_completed);
        assert_eq!(recorded.trace, plain.trace);
        // The snapshot counter itself reflects the recorder being on; every
        // other phase counter must be untouched by observation.
        let mut recorded_profile = recorded.profile;
        recorded_profile.snapshots = plain.profile.snapshots;
        assert_eq!(recorded_profile, plain.profile, "profiler counts decisions, not observers");
    }

    #[test]
    fn recorded_runs_are_deterministic() {
        let a = quick(TechNode::N22).record_state(32).injected_faults(2).build().unwrap().run();
        let b = quick(TechNode::N22).record_state(32).injected_faults(2).build().unwrap().run();
        assert_eq!(a, b, "Report PartialEq covers profile and state timeline");
    }

    #[test]
    fn snapshots_track_thermal_grid_when_transient() {
        let r = quick(TechNode::N16)
            .sim_time_ms(40)
            .record_state(64)
            .transient_thermal(true)
            .build()
            .unwrap()
            .run();
        let last = r.state.last().expect("snapshots captured");
        assert!(
            last.cores.iter().all(|c| c.temp_k > 250.0),
            "transient grid temperatures must be physical"
        );
        // Without the grid, temperature reads as the 0 K sentinel.
        let proxy = quick(TechNode::N16).sim_time_ms(40).record_state(64).build().unwrap().run();
        let last = proxy.state.last().expect("snapshots captured");
        assert!(last.cores.iter().all(|c| c.temp_k == 0.0));
    }

    // ----- core lifecycle (re-admission lane + checkpointing) ------------

    /// A lifecycle workload: only intermittent faults, which cool a
    /// quarter of the horizon after injection, so a probing lane can
    /// eventually re-admit every quarantined core.
    fn lifecycle(node: TechNode) -> SystemBuilder {
        quick(node)
            .sim_time_ms(400)
            .injected_faults(8)
            .intermittent_faults(1.0)
            .intermittent_cooldown(0.25)
            .fault_response(FaultResponsePolicy::MigrateRegion)
    }

    #[test]
    fn lane_off_keeps_quarantine_terminal() {
        let r = lifecycle(TechNode::N22).build().unwrap().run();
        assert_eq!(r.probes_launched, 0, "no cadence, no probes");
        assert_eq!(r.cores_readmitted, 0);
        assert_eq!(r.cores_requarantined, 0);
    }

    #[test]
    fn readmission_lane_recovers_cooled_capacity() {
        let r = lifecycle(TechNode::N22)
            .probe_cadence_us(3_000)
            .capture_events(1 << 14)
            .build()
            .unwrap()
            .run();
        assert!(r.cores_quarantined > 0, "intermittents must confirm: {r:?}");
        assert!(r.probes_launched > 0, "the lane must probe quarantined cores");
        assert!(
            r.cores_readmitted > 0,
            "cooled intermittents must pass probation: {} probes, {} requarantines",
            r.probes_launched,
            r.cores_requarantined
        );
        // Re-admission must actually restore capacity in the trajectory.
        let n = r.tests_per_core.len() as u64;
        assert!(r.healthy_cores_end > n - r.cores_quarantined);
        // Telemetry double-entry: the new kinds reconcile and the whole
        // lifecycle (sequence + provenance) passes the audit.
        crate::audit::validate_events(&r).expect("lifecycle run audits clean");
        assert_eq!(r.events.count("CoreReadmitted"), r.cores_readmitted);
        assert_eq!(r.events.count("CoreProbeLaunched"), r.probes_launched);
    }

    #[test]
    fn solid_faults_never_pass_probation() {
        let r = quick(TechNode::N22)
            .sim_time_ms(400)
            .injected_faults(4)
            .probe_cadence_us(3_000)
            .build()
            .unwrap()
            .run();
        assert!(r.cores_quarantined > 0);
        assert_eq!(
            r.cores_readmitted, 0,
            "a solid fault refires on every probe"
        );
        assert!(
            r.cores_requarantined > 0,
            "failed probation rounds must be recorded"
        );
    }

    #[test]
    fn lifecycle_runs_are_deterministic() {
        let build = || {
            lifecycle(TechNode::N22)
                .probe_cadence_us(2_000)
                .capture_events(1 << 14)
                .build()
                .unwrap()
                .run()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn checkpoints_fire_and_trade_against_migration_cost() {
        let sparse = lifecycle(TechNode::N22)
            .checkpoint_interval_us(50_000)
            .build()
            .unwrap()
            .run();
        let dense = lifecycle(TechNode::N22)
            .checkpoint_interval_us(2_000)
            .build()
            .unwrap()
            .run();
        assert!(dense.apps_checkpointed > sparse.apps_checkpointed);
        // Disabled checkpointing transfers the full dirty span instead.
        let off = lifecycle(TechNode::N22).checkpoint_interval_us(0).build().unwrap().run();
        assert_eq!(off.apps_checkpointed, 0);
    }

    #[test]
    fn checkpointing_is_inert_outside_migrate_region() {
        let r = quick(TechNode::N22)
            .sim_time_ms(200)
            .injected_faults(4)
            .fault_response(FaultResponsePolicy::RestartElsewhere)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.apps_checkpointed, 0, "only MigrateRegion replays checkpoints");
    }
}
