use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, f64> {
    // A string mentioning HashMap must not trip the lexer-aware rule.
    let _doc = "prefer BTreeMap over HashMap";
    BTreeMap::new()
}
