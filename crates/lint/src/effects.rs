//! Effect inference: classifies every workspace function as
//! allocating / locking / doing-I/O / possibly-panicking.
//!
//! Effects are seeded at call sites from three std sink tables (macro
//! name, `Owner::method` qualified path, bare method name) and
//! propagated to callers over the call graph to a fixed point. Dynamic
//! dispatch and deliberate effects are handled by audited annotations:
//!
//! ```text
//! // lint:effect(none,  reason = "dyn Observer impls are effect-free by contract")
//! // lint:effect(warmup, reason = "allocates once while building the mesh")
//! // lint:effect(alloc+panic, reason = "arrival lane owns the session Vec")
//! ```
//!
//! An annotation attaches to the next `fn` at or below it, *fixes* that
//! function's effect set to the declared one, and cuts traversal — the
//! body is neither sink-scanned nor descended into. `none` and `warmup`
//! both declare an empty hot-path effect set (`warmup` documents that
//! the fn allocates only on documented construction paths). Because a
//! reason is mandatory, every annotation is an audited review artifact,
//! mirroring the `lint:allow` contract; unparseable ones surface as the
//! `malformed-effect` meta rule.

use crate::callgraph::{CallGraph, Recv};
use crate::lexer::TokenKind;
use crate::source::Workspace;
use crate::symbols::SymbolTable;

/// A set of effect classes, as bitflags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(pub u8);

impl EffectSet {
    pub const NONE: EffectSet = EffectSet(0);
    pub const ALLOC: EffectSet = EffectSet(1);
    pub const LOCK: EffectSet = EffectSet(2);
    pub const IO: EffectSet = EffectSet(4);
    pub const PANIC: EffectSet = EffectSet(8);

    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    pub fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Masks to the classes hot-path-purity forbids (all of them).
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.contains(EffectSet::ALLOC) {
            parts.push("alloc");
        }
        if self.contains(EffectSet::LOCK) {
            parts.push("lock");
        }
        if self.contains(EffectSet::IO) {
            parts.push("io");
        }
        if self.contains(EffectSet::PANIC) {
            parts.push("panic");
        }
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join("+")
        }
    }
}

/// Macro-name sinks. `assert!`/`debug_assert!` are deliberately absent:
/// input-contract asserts are the codebase's endorsed invariant idiom
/// (cf. the old panic-in-hot-path rule, which never flagged them).
const MACRO_SINKS: [(&str, EffectSet); 12] = [
    ("format", EffectSet::ALLOC),
    ("vec", EffectSet::ALLOC),
    ("println", EffectSet::IO),
    ("print", EffectSet::IO),
    ("eprintln", EffectSet::IO),
    ("eprint", EffectSet::IO),
    ("write", EffectSet::IO),
    ("writeln", EffectSet::IO),
    ("panic", EffectSet::PANIC),
    ("unreachable", EffectSet::PANIC),
    ("todo", EffectSet::PANIC),
    ("unimplemented", EffectSet::PANIC),
];

/// `Owner::method` sinks (the owner is the path segment before the last
/// `::`). An empty method matches every method of that owner.
const QUALIFIED_SINKS: [(&str, &str, EffectSet); 12] = [
    ("Box", "new", EffectSet::ALLOC),
    ("Rc", "new", EffectSet::ALLOC),
    ("Arc", "new", EffectSet::ALLOC),
    ("Vec", "with_capacity", EffectSet::ALLOC),
    ("Vec", "from", EffectSet::ALLOC),
    ("String", "from", EffectSet::ALLOC),
    ("String", "with_capacity", EffectSet::ALLOC),
    ("File", "", EffectSet::IO),
    ("OpenOptions", "", EffectSet::IO),
    ("fs", "", EffectSet::IO),
    ("io", "", EffectSet::IO),
    ("Command", "", EffectSet::IO),
];

/// Bare method-name sinks, applied only when the call graph resolved no
/// workspace target for the site — a same-named workspace method wins,
/// and its body is analyzed instead (so a pure `Store::insert` does not
/// inherit `BTreeMap::insert`'s classification, at the cost of missing
/// the std method when both exist; the annotation escape hatch covers
/// that case).
const METHOD_SINKS_SHADOWED: [(&str, EffectSet); 15] = [
    ("push", EffectSet::ALLOC),
    ("push_str", EffectSet::ALLOC),
    ("push_back", EffectSet::ALLOC),
    ("push_front", EffectSet::ALLOC),
    ("insert", EffectSet::ALLOC),
    ("extend", EffectSet::ALLOC),
    ("append", EffectSet::ALLOC),
    ("reserve", EffectSet::ALLOC),
    ("to_vec", EffectSet::ALLOC),
    ("to_string", EffectSet::ALLOC),
    ("to_owned", EffectSet::ALLOC),
    ("collect", EffectSet::ALLOC),
    ("join", EffectSet::ALLOC),
    ("split_off", EffectSet::ALLOC),
    ("flush", EffectSet::IO),
];

/// Method sinks that fire even when a workspace method shares the name:
/// a `.lock()`/`.unwrap()`/`.expect()` must never be silenced by a
/// same-named helper somewhere in the tree.
const METHOD_SINKS_ALWAYS: [(&str, EffectSet); 3] = [
    ("lock", EffectSet::LOCK),
    ("unwrap", EffectSet::PANIC),
    ("expect", EffectSet::PANIC),
];

/// One parsed (or rejected) `lint:effect` annotation.
#[derive(Debug, Clone)]
pub struct EffectNote {
    /// Declared effect set (`none`/`warmup` → empty).
    pub declared: EffectSet,
    /// The spec as written (`warmup`, `alloc+panic`, …).
    pub spec: String,
    /// 1-based position of the comment.
    pub line: u32,
    pub col: u32,
    /// File index in the workspace.
    pub file: usize,
    /// The fn this note attached to, once resolved.
    pub target_fn: Option<usize>,
    /// Why parsing or attachment failed.
    pub malformed: Option<String>,
}

/// The result of the effect-inference pass.
pub struct Effects {
    /// Fixed-point effect set per fn (annotated fns hold the declared
    /// set).
    pub of_fn: Vec<EffectSet>,
    /// Per-fn sink sites: `(call-site index, effect)` for every
    /// *directly* effectful site in that fn's own body.
    pub sinks_of: Vec<Vec<(usize, EffectSet)>>,
    /// Declared annotation per fn (`None` = inferred).
    pub declared: Vec<Option<EffectSet>>,
    /// All annotations, including malformed ones, for the meta rule.
    pub notes: Vec<EffectNote>,
}

/// Classifies one call site against the sink tables.
pub fn site_effect(name: &str, recv: &Recv, resolved: bool) -> EffectSet {
    match recv {
        Recv::Macro => {
            // `debug_assert*` is the endorsed invariant idiom — it is
            // compiled out in release, so it is not a hot-path sink.
            if name.starts_with("debug_") {
                return EffectSet::NONE;
            }
            // `assert_eq`/`assert_ne` fold onto `assert`.
            let base = name.trim_end_matches("_eq").trim_end_matches("_ne");
            MACRO_SINKS
                .iter()
                .find(|(m, _)| *m == base)
                .map(|&(_, e)| e)
                .unwrap_or(EffectSet::NONE)
        }
        Recv::Qualified(owner) => QUALIFIED_SINKS
            .iter()
            .find(|(o, m, _)| o == owner && (m.is_empty() || m == &name))
            .map(|&(_, _, e)| e)
            .unwrap_or(EffectSet::NONE),
        Recv::Method | Recv::SelfMethod | Recv::Bare => {
            if matches!(recv, Recv::Method | Recv::SelfMethod) {
                if let Some(&(_, e)) = METHOD_SINKS_ALWAYS.iter().find(|(m, _)| *m == name) {
                    return e;
                }
            }
            if resolved || matches!(recv, Recv::Bare) {
                EffectSet::NONE
            } else {
                METHOD_SINKS_SHADOWED
                    .iter()
                    .find(|(m, _)| *m == name)
                    .map(|&(_, e)| e)
                    .unwrap_or(EffectSet::NONE)
            }
        }
    }
}

/// Runs the full pass: parse annotations, seed sinks, propagate.
pub fn analyze(ws: &Workspace, table: &SymbolTable, cg: &CallGraph) -> Effects {
    let notes = collect_notes(ws, table);
    let mut declared: Vec<Option<EffectSet>> = vec![None; table.fns.len()];
    for note in &notes {
        if note.malformed.is_none() {
            if let Some(fi) = note.target_fn {
                declared[fi] = Some(note.declared);
            }
        }
    }

    // Seed: direct sink sites per fn (annotated fns are opaque).
    let mut sinks_of: Vec<Vec<(usize, EffectSet)>> = vec![Vec::new(); table.fns.len()];
    for (fi, site_ids) in cg.sites_of.iter().enumerate() {
        if declared[fi].is_some() {
            continue;
        }
        for &si in site_ids {
            let site = &cg.sites[si];
            let eff = site_effect(&site.name, &site.recv, !site.targets.is_empty());
            if !eff.is_empty() {
                sinks_of[fi].push((si, eff));
            }
        }
    }

    // Propagate to a fixed point over the (cyclic-safe) call graph.
    let mut of_fn: Vec<EffectSet> = (0..table.fns.len())
        .map(|fi| {
            declared[fi].unwrap_or_else(|| {
                sinks_of[fi]
                    .iter()
                    .fold(EffectSet::NONE, |acc, &(_, e)| acc.union(e))
            })
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (fi, site_ids) in cg.sites_of.iter().enumerate() {
            if declared[fi].is_some() {
                continue;
            }
            let mut acc = of_fn[fi];
            for &si in site_ids {
                for &callee in &cg.sites[si].targets {
                    acc = acc.union(of_fn[callee]);
                }
            }
            if acc != of_fn[fi] {
                of_fn[fi] = acc;
                changed = true;
            }
        }
    }

    Effects {
        of_fn,
        sinks_of,
        declared,
        notes,
    }
}

/// Scans every file for `lint:effect` comments and attaches each to the
/// next fn at or below it. Public because the engine reports malformed
/// notes (`malformed-effect`) even when the purity rule is inactive.
pub fn collect_notes(ws: &Workspace, table: &SymbolTable) -> Vec<EffectNote> {
    let mut notes = Vec::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        notes.extend(notes_in(file, file_idx, &table.fns));
    }
    notes
}

/// The `lint:effect` notes of one file. `fns` may be the whole
/// workspace table or a single-file extraction — attachment filters on
/// `file_idx` either way.
pub fn notes_in(
    file: &crate::source::SourceFile,
    file_idx: usize,
    fns: &[crate::symbols::FnSym],
) -> Vec<EffectNote> {
    let mut notes = Vec::new();
    {
        for tok in &file.tokens {
            if tok.kind != TokenKind::Comment {
                continue;
            }
            let body = tok.text.trim();
            let Some(rest) = body.strip_prefix("lint:effect") else {
                continue;
            };
            let mut note = EffectNote {
                declared: EffectSet::NONE,
                spec: String::new(),
                line: tok.line,
                col: tok.col,
                file: file_idx,
                target_fn: None,
                malformed: None,
            };
            match parse_spec(rest) {
                Ok((spec, set)) => {
                    note.spec = spec;
                    note.declared = set;
                    // Attach to the nearest fn in this file starting at
                    // or below the comment line.
                    note.target_fn = fns
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.file == file_idx && f.line >= tok.line)
                        .min_by_key(|(_, f)| f.line)
                        .map(|(i, _)| i);
                    if note.target_fn.is_none() {
                        note.malformed = Some("no fn follows the annotation".into());
                    }
                }
                Err(msg) => note.malformed = Some(msg),
            }
            notes.push(note);
        }
    }
    notes
}

/// Parses `(<spec>, reason = "…")` where spec is `none`, `warmup`, or a
/// `+`-joined subset of `alloc`/`lock`/`io`/`panic`.
fn parse_spec(rest: &str) -> Result<(String, EffectSet), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `lint:effect`".into());
    };
    let Some(close) = rest.rfind(')') else {
        return Err("missing closing `)`".into());
    };
    let inner = &rest[..close];
    let Some((spec, reason_part)) = inner.split_once(',') else {
        return Err("expected `lint:effect(<spec>, reason = \"…\")`".into());
    };
    let spec = spec.trim();
    let set = match spec {
        "none" | "warmup" => EffectSet::NONE,
        _ => {
            let mut set = EffectSet::NONE;
            for part in spec.split('+') {
                set = set.union(match part.trim() {
                    "alloc" => EffectSet::ALLOC,
                    "lock" => EffectSet::LOCK,
                    "io" => EffectSet::IO,
                    "panic" => EffectSet::PANIC,
                    other => return Err(format!("unknown effect `{other}`")),
                });
            }
            set
        }
    };
    let reason_part = reason_part.trim();
    let reason = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "expected `reason = \"…\"`".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((spec.to_string(), set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn analyzed(src: &str) -> (SymbolTable, CallGraph, Effects) {
        let ws = Workspace::from_sources(
            Path::new("/x"),
            vec![SourceFile::from_source("crates/core/src/a.rs", src)],
        );
        let table = SymbolTable::build(&ws);
        let cg = CallGraph::build(&ws, &table);
        let eff = analyze(&ws, &table, &cg);
        (table, cg, eff)
    }

    fn effect_of(table: &SymbolTable, eff: &Effects, name: &str) -> EffectSet {
        let i = table.fns.iter().position(|f| f.name == name).unwrap();
        eff.of_fn[i]
    }

    #[test]
    fn sinks_seed_and_propagate_three_deep() {
        let (table, _, eff) = analyzed(
            "fn leaf() { let v = Box::new(1); }\n\
             fn mid() { leaf(); }\n\
             fn top() { mid(); }\n\
             fn clean() { let x = 1 + 2; }\n",
        );
        assert_eq!(effect_of(&table, &eff, "leaf"), EffectSet::ALLOC);
        assert_eq!(effect_of(&table, &eff, "mid"), EffectSet::ALLOC);
        assert_eq!(effect_of(&table, &eff, "top"), EffectSet::ALLOC);
        assert_eq!(effect_of(&table, &eff, "clean"), EffectSet::NONE);
    }

    #[test]
    fn effect_classes_union_across_the_graph() {
        let (table, _, eff) = analyzed(
            "fn a() { format!(\"x\"); }\n\
             fn b() { let g = guard.lock(); }\n\
             fn c(x: Option<u32>) { a(); b(); x.unwrap(); }\n",
        );
        let c = effect_of(&table, &eff, "c");
        assert!(c.contains(EffectSet::ALLOC));
        assert!(c.contains(EffectSet::LOCK));
        assert!(c.contains(EffectSet::PANIC));
        assert!(!c.contains(EffectSet::IO));
        assert_eq!(c.label(), "alloc+lock+panic");
    }

    #[test]
    fn annotations_fix_the_set_and_cut_traversal() {
        let (table, _, eff) = analyzed(
            "// lint:effect(warmup, reason = \"builds the mesh once\")\n\
             fn build() { let v = vec![1, 2, 3]; }\n\
             fn caller() { build(); }\n\
             // lint:effect(alloc, reason = \"owns the arrival Vec\")\n\
             fn lane() {}\n\
             fn above() { lane(); }\n",
        );
        assert_eq!(effect_of(&table, &eff, "build"), EffectSet::NONE);
        assert_eq!(effect_of(&table, &eff, "caller"), EffectSet::NONE);
        assert_eq!(effect_of(&table, &eff, "lane"), EffectSet::ALLOC);
        assert_eq!(effect_of(&table, &eff, "above"), EffectSet::ALLOC);
    }

    #[test]
    fn recursion_reaches_a_fixed_point() {
        let (table, _, eff) = analyzed(
            "fn ping(n: u32) { if n > 0 { pong(n - 1); } }\n\
             fn pong(n: u32) { out.push(n); ping(n); }\n",
        );
        assert_eq!(effect_of(&table, &eff, "ping"), EffectSet::ALLOC);
        assert_eq!(effect_of(&table, &eff, "pong"), EffectSet::ALLOC);
    }

    #[test]
    fn workspace_methods_shadow_std_method_sinks() {
        let (table, _, eff) = analyzed(
            "impl Store {\n    fn insert(&mut self, k: u32) { self.slots[k as usize] = 1; }\n}\n\
             fn user(s: &mut Store) { s.insert(3); }\n",
        );
        // `.insert(` resolved to Store::insert, whose body is pure — the
        // BTreeMap sink entry must not fire.
        let i = table.fns.iter().position(|f| f.name == "insert").unwrap();
        assert_eq!(eff.of_fn[i], EffectSet::NONE);
    }

    #[test]
    fn malformed_specs_are_reported_not_dropped() {
        let (_, _, eff) = analyzed(
            "// lint:effect(fast, reason = \"nope\")\nfn a() {}\n\
             // lint:effect(alloc)\nfn b() {}\n",
        );
        let bad: Vec<&str> = eff
            .notes
            .iter()
            .filter_map(|n| n.malformed.as_deref())
            .collect();
        assert_eq!(bad.len(), 2, "notes: {:?}", eff.notes);
        assert!(bad[0].contains("unknown effect"));
    }
}
