//! Application arrivals: Poisson process over a weighted application mix.

use crate::gen::TaskGraphGenerator;
use crate::task::TaskGraph;
use manytest_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// A unique identifier for an arrived application instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AppId(pub u64);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// One arrived application: a task graph stamped with identity and time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Instance id (unique per run).
    pub id: AppId,
    /// The task graph to execute.
    pub graph: TaskGraph,
    /// Arrival time.
    pub arrival: SimTime,
}

/// What the mix draws applications from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Source {
    /// A fixed preset graph (cloned per arrival).
    Preset(TaskGraph),
    /// A generator invoked per arrival.
    Random(TaskGraphGenerator),
}

/// A weighted mix of application sources.
///
/// # Examples
///
/// ```
/// use manytest_workload::prelude::*;
/// use manytest_sim::SimRng;
///
/// let mut mix = WorkloadMix::new();
/// mix.add_preset(presets::pip(), 1.0);
/// mix.add_random(TaskGraphGenerator::default(), 3.0);
/// let mut rng = SimRng::seed_from(11);
/// let g = mix.sample(&mut rng);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    sources: Vec<(Source, f64)>,
    generated: u64,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadMix {
    /// Creates an empty mix.
    pub fn new() -> Self {
        WorkloadMix {
            sources: Vec::new(),
            generated: 0,
        }
    }

    /// The mix used throughout the evaluation: all four benchmark presets
    /// plus TGFF-style random applications, random apps twice as likely.
    pub fn standard() -> Self {
        let mut mix = WorkloadMix::new();
        for preset in crate::presets::all() {
            mix.add_preset(preset, 1.0);
        }
        mix.add_random(TaskGraphGenerator::default(), 8.0);
        mix
    }

    /// Adds a preset graph drawn with relative `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive or the graph is invalid.
    pub fn add_preset(&mut self, graph: TaskGraph, weight: f64) {
        assert!(weight > 0.0, "weight must be positive");
        assert!(graph.validate().is_ok(), "preset must validate");
        self.sources.push((Source::Preset(graph), weight));
    }

    /// Adds a random-graph source drawn with relative `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive.
    pub fn add_random(&mut self, generator: TaskGraphGenerator, weight: f64) {
        assert!(weight > 0.0, "weight must be positive");
        self.sources.push((Source::Random(generator), weight));
    }

    /// Number of sources in the mix.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if the mix has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Draws one application graph.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty.
    pub fn sample(&mut self, rng: &mut SimRng) -> TaskGraph {
        assert!(!self.sources.is_empty(), "cannot sample an empty mix");
        let total: f64 = self.sources.iter().map(|(_, w)| w).sum();
        let mut pick = rng.next_f64() * total;
        let chosen = self
            .sources
            .iter()
            .find(|(_, w)| {
                pick -= w;
                pick < 0.0
            })
            .map(|(s, _)| s)
            .unwrap_or(&self.sources.last().expect("non-empty").0);
        match chosen {
            Source::Preset(g) => g.clone(),
            Source::Random(generator) => {
                let name = format!("tgff{}", self.generated);
                self.generated += 1;
                generator.generate(rng, name)
            }
        }
    }
}

/// An application-arrival process: Poisson (the evaluation's default,
/// modelling independent users) or periodic (for controlled experiments
/// where arrival jitter would be noise).
///
/// # Examples
///
/// ```
/// use manytest_workload::arrival::ArrivalProcess;
/// use manytest_sim::SimRng;
///
/// let mut arrivals = ArrivalProcess::poisson(100.0); // 100 apps/s
/// let mut rng = SimRng::seed_from(3);
/// let gap = arrivals.next_interarrival(&mut rng);
/// assert!(gap.as_ns() > 0);
///
/// let mut clockwork = ArrivalProcess::periodic(100.0);
/// let g1 = clockwork.next_interarrival(&mut rng);
/// let g2 = clockwork.next_interarrival(&mut rng);
/// assert_eq!(g1, g2); // no jitter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    rate_per_sec: f64,
    periodic: bool,
}

impl ArrivalProcess {
    /// A Poisson process with mean `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn poisson(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        ArrivalProcess {
            rate_per_sec,
            periodic: false,
        }
    }

    /// A deterministic process with exactly `rate_per_sec` arrivals per
    /// second, evenly spaced.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn periodic(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        ArrivalProcess {
            rate_per_sec,
            periodic: true,
        }
    }

    /// The configured mean rate, arrivals per second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// True for the deterministic (periodic) variant.
    pub fn is_periodic(&self) -> bool {
        self.periodic
    }

    /// Draws the next inter-arrival gap (never zero). Periodic processes
    /// ignore the RNG.
    pub fn next_interarrival(&mut self, rng: &mut SimRng) -> Duration {
        let secs = if self.periodic {
            1.0 / self.rate_per_sec
        } else {
            rng.gen_exp(self.rate_per_sec)
        };
        Duration::from_secs_f64(secs).max(Duration::from_ns(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut proc = ArrivalProcess::poisson(1_000.0);
        let mut rng = SimRng::seed_from(19);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| proc.next_interarrival(&mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.001).abs() < 0.0001, "mean gap was {mean}");
    }

    #[test]
    fn interarrival_is_never_zero() {
        let mut proc = ArrivalProcess::poisson(1e9);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1_000 {
            assert!(proc.next_interarrival(&mut rng).as_ns() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        ArrivalProcess::poisson(0.0);
    }

    #[test]
    fn periodic_gaps_are_exact_and_rng_free() {
        let mut p = ArrivalProcess::periodic(250.0);
        assert!(p.is_periodic());
        let mut rng_a = SimRng::seed_from(1);
        let mut rng_b = SimRng::seed_from(2);
        let g1 = p.next_interarrival(&mut rng_a);
        let g2 = p.next_interarrival(&mut rng_b);
        assert_eq!(g1, g2);
        assert_eq!(g1, Duration::from_ms(4));
        // The RNG streams were never touched.
        assert_eq!(rng_a.next_u64(), SimRng::seed_from(1).next_u64());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn periodic_zero_rate_panics() {
        ArrivalProcess::periodic(f64::NAN);
    }

    #[test]
    fn mix_samples_all_sources() {
        let mut mix = WorkloadMix::new();
        mix.add_preset(presets::pip(), 1.0);
        mix.add_preset(presets::vopd(), 1.0);
        let mut rng = SimRng::seed_from(4);
        let mut pip_seen = false;
        let mut vopd_seen = false;
        for _ in 0..100 {
            match mix.sample(&mut rng).name() {
                "pip" => pip_seen = true,
                "vopd" => vopd_seen = true,
                other => panic!("unexpected app {other}"),
            }
        }
        assert!(pip_seen && vopd_seen);
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let mut mix = WorkloadMix::new();
        mix.add_preset(presets::pip(), 9.0);
        mix.add_preset(presets::vopd(), 1.0);
        let mut rng = SimRng::seed_from(8);
        let pip_count = (0..2_000)
            .filter(|_| mix.sample(&mut rng).name() == "pip")
            .count();
        assert!(
            (1_600..=2_000).contains(&pip_count),
            "expected ~90% pip, got {pip_count}/2000"
        );
    }

    #[test]
    fn random_source_names_are_unique() {
        let mut mix = WorkloadMix::new();
        mix.add_random(TaskGraphGenerator::default(), 1.0);
        let mut rng = SimRng::seed_from(21);
        let a = mix.sample(&mut rng);
        let b = mix.sample(&mut rng);
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn standard_mix_is_nonempty_and_valid() {
        let mut mix = WorkloadMix::standard();
        assert_eq!(mix.len(), 5);
        let mut rng = SimRng::seed_from(30);
        for _ in 0..50 {
            assert!(mix.sample(&mut rng).validate().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "empty mix")]
    fn sampling_empty_mix_panics() {
        WorkloadMix::new().sample(&mut SimRng::seed_from(1));
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId(3).to_string(), "app#3");
    }
}
