//! The baseline contiguous mapper (CoNA / SHiC style).

use crate::context::MapContext;
use crate::contiguous;
use crate::mapping::Mapping;
use crate::Mapper;
use manytest_noc::RegionSearch;
use manytest_workload::TaskGraph;
use serde::{Deserialize, Serialize};

/// Utilisation- and test-agnostic contiguous runtime mapping.
///
/// First node: the centre of the smallest square region containing enough
/// free cores (ties broken by node id). Placement: nearest-neighbour
/// contiguous (see [`crate::contiguous`]). This is the state-of-the-art
/// mapper the paper compares its test-aware strategy against.
///
/// # Examples
///
/// ```
/// use manytest_map::prelude::*;
/// use manytest_noc::Mesh2D;
/// use manytest_workload::presets;
///
/// let ctx = MapContext::all_free(Mesh2D::new(8, 8));
/// let mapping = ConaMapper::new().map(&ctx, &presets::mwd()).unwrap();
/// assert_eq!(mapping.len(), 12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConaMapper {
    _private: (),
}

impl ConaMapper {
    /// Creates the baseline mapper.
    pub fn new() -> Self {
        ConaMapper::default()
    }
}

impl Mapper for ConaMapper {
    // lint:effect(alloc+panic, reason = "mapping lane materializes one placement per admitted app; placement expects hold on the searched region")
    fn map(&self, ctx: &MapContext, app: &TaskGraph) -> Option<Mapping> {
        let search = RegionSearch::new(ctx.mesh());
        let choice = search.find(app.task_count(), |c| ctx.is_free(c), |_| 0.0)?;
        contiguous::place(ctx, choice.region, app, |_| 0.0)
    }

    fn name(&self) -> &str {
        "cona-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_noc::{Coord, Mesh2D};
    use manytest_workload::presets;

    #[test]
    fn maps_all_presets_on_empty_mesh() {
        let ctx = MapContext::all_free(Mesh2D::new(8, 8));
        let mapper = ConaMapper::new();
        for app in presets::all() {
            let m = mapper.map(&ctx, &app).expect("empty mesh fits presets");
            assert!(m.is_valid_for(ctx.mesh(), &app));
        }
    }

    #[test]
    fn refuses_when_mesh_is_too_full() {
        let mesh = Mesh2D::new(4, 4);
        let mut ctx = MapContext::all_free(mesh);
        // Leave only 5 cores free; VOPD needs 12.
        for (i, c) in mesh.coords().enumerate() {
            ctx.set_free(c, i < 5);
        }
        assert!(ConaMapper::new().map(&ctx, &presets::vopd()).is_none());
    }

    #[test]
    fn only_occupies_free_cores() {
        let mesh = Mesh2D::new(6, 6);
        let mut ctx = MapContext::all_free(mesh);
        for c in mesh.coords().filter(|c| c.y < 2) {
            ctx.set_free(c, false);
        }
        let m = ConaMapper::new().map(&ctx, &presets::pip()).unwrap();
        for &c in m.coords() {
            assert!(c.y >= 2, "mapped onto an occupied core at {c}");
        }
    }

    #[test]
    fn ignores_utilization_and_criticality() {
        let mesh = Mesh2D::new(8, 8);
        let clean = MapContext::all_free(mesh);
        let mut hot = MapContext::all_free(mesh);
        for c in mesh.coords() {
            hot.set_utilization(c, 0.9);
            hot.set_criticality(c, 5.0);
        }
        let mapper = ConaMapper::new();
        let app = presets::pip();
        assert_eq!(mapper.map(&clean, &app), mapper.map(&hot, &app));
    }

    #[test]
    fn mapping_is_compact() {
        let ctx = MapContext::all_free(Mesh2D::new(10, 10));
        let m = ConaMapper::new().map(&ctx, &presets::vopd()).unwrap();
        // 12 tasks should fit in a bounding box not much larger than 4x4.
        assert!(m.bounding_box_area() <= 25, "area {}", m.bounding_box_area());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ConaMapper::new().name(), "cona-baseline");
    }

    #[test]
    fn single_free_island_is_used() {
        let mesh = Mesh2D::new(6, 6);
        let mut ctx = MapContext::all_free(mesh);
        for c in mesh.coords() {
            ctx.set_free(c, c.x >= 3 && c.y >= 3); // 3x3 island
        }
        let app = presets::pip(); // needs 8 of the 9 island cores
        let m = ConaMapper::new().map(&ctx, &app).unwrap();
        for &c in m.coords() {
            assert!(c.x >= 3 && c.y >= 3);
        }
        let _ = Coord::new(0, 0);
    }
}
