//! Configuration validation errors.

use std::fmt;

/// Error returned by [`crate::system::SystemBuilder::build`] when the
/// configuration is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The epoch length is zero.
    ZeroEpoch,
    /// The simulation horizon is shorter than one epoch.
    HorizonTooShort,
    /// The arrival rate is not strictly positive and finite.
    InvalidArrivalRate,
    /// Fewer than two DVFS levels were requested.
    TooFewDvfsLevels,
    /// The workload mix contains no sources.
    EmptyWorkloadMix,
    /// The mesh edge override is zero.
    ZeroMesh,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroEpoch => write!(f, "epoch length must be positive"),
            BuildError::HorizonTooShort => {
                write!(f, "simulation horizon must cover at least one epoch")
            }
            BuildError::InvalidArrivalRate => {
                write!(f, "arrival rate must be positive and finite")
            }
            BuildError::TooFewDvfsLevels => write!(f, "need at least two DVFS levels"),
            BuildError::EmptyWorkloadMix => write!(f, "workload mix has no sources"),
            BuildError::ZeroMesh => write!(f, "mesh edge must be positive"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        for e in [
            BuildError::ZeroEpoch,
            BuildError::HorizonTooShort,
            BuildError::InvalidArrivalRate,
            BuildError::TooFewDvfsLevels,
            BuildError::EmptyWorkloadMix,
            BuildError::ZeroMesh,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(BuildError::ZeroEpoch);
        assert!(e.source().is_none());
    }
}
