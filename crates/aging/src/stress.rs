//! Per-core stress accounting.
//!
//! [`StressTracker`] is the bookkeeping layer between the aging model and
//! the scheduling policies: every epoch the system reports each core's
//! drawn power and busy fraction; the tracker integrates damage (total and
//! since-last-test), maintains an exponentially weighted utilisation
//! average, and remembers when each core last completed a test.

use crate::model::AgingModel;
use serde::{Deserialize, Serialize};

/// Snapshot of one core's stress state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreStress {
    /// Lifetime accumulated damage.
    pub total_damage: f64,
    /// Damage accumulated since the last completed test.
    pub damage_since_test: f64,
    /// Exponentially weighted utilisation in `[0, 1]`.
    pub utilization: f64,
    /// Simulation time (seconds) when the core last completed a test;
    /// negative infinity-like sentinel (−1) if never tested.
    pub last_test_time: f64,
    /// Number of completed tests.
    pub tests_completed: u64,
    /// Portion of `total_damage` that can still heal (NBTI recovery);
    /// zero unless the aging model enables recovery.
    pub recoverable_damage: f64,
}

impl Default for CoreStress {
    fn default() -> Self {
        CoreStress {
            total_damage: 0.0,
            damage_since_test: 0.0,
            utilization: 0.0,
            last_test_time: -1.0,
            tests_completed: 0,
            recoverable_damage: 0.0,
        }
    }
}

impl CoreStress {
    /// Seconds since the last completed test, treating "never tested" as
    /// since time zero.
    pub fn time_since_test(&self, now: f64) -> f64 {
        if self.last_test_time < 0.0 {
            now
        } else {
            (now - self.last_test_time).max(0.0)
        }
    }
}

/// Stress bookkeeping for a fixed population of cores.
///
/// # Examples
///
/// ```
/// use manytest_aging::prelude::*;
///
/// let aging = AgingModel::default();
/// let mut tracker = StressTracker::new(4, 0.1);
/// tracker.record_epoch(0, &aging, 1.5, 1.0, 0.001);
/// tracker.record_epoch(1, &aging, 0.0, 0.0, 0.001);
/// assert!(tracker.core(0).total_damage > tracker.core(1).total_damage);
/// assert!(tracker.core(0).utilization > tracker.core(1).utilization);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressTracker {
    cores: Vec<CoreStress>,
    ema_alpha: f64,
}

impl StressTracker {
    /// Creates a tracker for `core_count` cores with utilisation EMA
    /// smoothing factor `ema_alpha` (weight of the newest epoch).
    ///
    /// # Panics
    ///
    /// Panics if `core_count` is zero or `ema_alpha` is outside `(0, 1]`.
    pub fn new(core_count: usize, ema_alpha: f64) -> Self {
        assert!(core_count > 0, "need at least one core");
        assert!(
            ema_alpha > 0.0 && ema_alpha <= 1.0,
            "EMA alpha must be in (0,1]"
        );
        StressTracker {
            cores: vec![CoreStress::default(); core_count],
            ema_alpha,
        }
    }

    /// Number of tracked cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Records one epoch of operation for `core`: it drew `power` watts and
    /// was busy for fraction `busy` of the epoch of length `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `busy` is outside `[0, 1]`.
    pub fn record_epoch(
        &mut self,
        core: usize,
        aging: &AgingModel,
        power: f64,
        busy: f64,
        dt: f64,
    ) {
        assert!((0.0..=1.0).contains(&busy), "busy fraction must be in [0,1]");
        let damage = aging.damage(power, dt);
        let c = &mut self.cores[core];
        Self::apply_damage(c, aging, damage, power, dt);
        c.utilization = (1.0 - self.ema_alpha) * c.utilization + self.ema_alpha * busy;
    }

    /// Adds `damage` to a core and, when the aging model enables NBTI
    /// recovery, heals part of the recoverable pool if the core's power
    /// is below the idle threshold.
    fn apply_damage(
        c: &mut CoreStress,
        aging: &AgingModel,
        damage: f64,
        power: f64,
        dt: f64,
    ) {
        c.total_damage += damage;
        c.damage_since_test += damage;
        if let Some(rec) = aging.recovery {
            c.recoverable_damage += damage * rec.recoverable_fraction;
            if power < rec.idle_power_threshold {
                let healed =
                    c.recoverable_damage * (1.0 - (-dt / rec.time_constant).exp());
                c.recoverable_damage -= healed;
                c.total_damage = (c.total_damage - healed).max(0.0);
                c.damage_since_test = (c.damage_since_test - healed).max(0.0);
            }
        }
    }

    /// Records one epoch like [`Self::record_epoch`], but with the
    /// temperature supplied directly (e.g. from the transient
    /// [`crate::thermal::ThermalGrid`]) instead of the steady-state proxy.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `busy` is outside `[0, 1]`.
    pub fn record_epoch_at_temperature(
        &mut self,
        core: usize,
        aging: &AgingModel,
        temperature: f64,
        busy: f64,
        dt: f64,
    ) {
        assert!((0.0..=1.0).contains(&busy), "busy fraction must be in [0,1]");
        assert!(dt >= 0.0, "time must be non-negative");
        let damage = aging.base_rate * aging.acceleration_at(temperature) * dt;
        let c = &mut self.cores[core];
        // Recovery keys off power; approximate "unstressed" as busy == 0
        // by translating the temperature path's idleness into a tiny
        // nominal power below any plausible threshold.
        let power_proxy = if busy == 0.0 { 0.0 } else { f64::INFINITY };
        Self::apply_damage(c, aging, damage, power_proxy, dt);
        c.utilization = (1.0 - self.ema_alpha) * c.utilization + self.ema_alpha * busy;
    }

    /// Marks a completed test on `core` at time `now` (seconds): the
    /// since-test damage resets, the test counter increments.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn note_test_complete(&mut self, core: usize, now: f64) {
        let c = &mut self.cores[core];
        c.damage_since_test = 0.0;
        c.last_test_time = now;
        c.tests_completed += 1;
    }

    /// Read-only view of one core's state.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &CoreStress {
        &self.cores[core]
    }

    /// Iterates over all cores' states in index order.
    pub fn iter(&self) -> impl Iterator<Item = &CoreStress> {
        self.cores.iter()
    }

    /// The core with the highest lifetime damage.
    pub fn most_worn(&self) -> usize {
        self.cores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.total_damage
                    .partial_cmp(&b.total_damage)
                    .expect("damage is never NaN")
            })
            .map(|(i, _)| i)
            .expect("tracker has at least one core")
    }

    /// Mean utilisation over all cores.
    pub fn mean_utilization(&self) -> f64 {
        self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> (AgingModel, StressTracker) {
        (AgingModel::default(), StressTracker::new(4, 0.2))
    }

    #[test]
    fn damage_accumulates_per_core() {
        let (aging, mut t) = tracker();
        for _ in 0..10 {
            t.record_epoch(0, &aging, 1.0, 1.0, 0.001);
        }
        t.record_epoch(1, &aging, 1.0, 1.0, 0.001);
        assert!(t.core(0).total_damage > t.core(1).total_damage);
        assert_eq!(t.core(2).total_damage, 0.0);
    }

    #[test]
    fn utilization_ema_converges() {
        let (aging, mut t) = tracker();
        for _ in 0..100 {
            t.record_epoch(0, &aging, 0.5, 1.0, 0.001);
        }
        assert!((t.core(0).utilization - 1.0).abs() < 1e-6);
        for _ in 0..100 {
            t.record_epoch(0, &aging, 0.0, 0.0, 0.001);
        }
        assert!(t.core(0).utilization < 1e-6);
    }

    #[test]
    fn test_completion_resets_since_test_damage_only() {
        let (aging, mut t) = tracker();
        for _ in 0..5 {
            t.record_epoch(0, &aging, 1.0, 1.0, 0.001);
        }
        let total_before = t.core(0).total_damage;
        assert!(t.core(0).damage_since_test > 0.0);
        t.note_test_complete(0, 0.005);
        assert_eq!(t.core(0).damage_since_test, 0.0);
        assert_eq!(t.core(0).total_damage, total_before);
        assert_eq!(t.core(0).tests_completed, 1);
        assert_eq!(t.core(0).last_test_time, 0.005);
    }

    #[test]
    fn time_since_test_handles_never_tested() {
        let c = CoreStress::default();
        assert_eq!(c.time_since_test(3.0), 3.0);
        let mut c2 = c;
        c2.last_test_time = 2.0;
        assert_eq!(c2.time_since_test(3.0), 1.0);
        assert_eq!(c2.time_since_test(1.0), 0.0); // clock shear is clamped
    }

    #[test]
    fn most_worn_finds_hot_core() {
        let (aging, mut t) = tracker();
        t.record_epoch(2, &aging, 2.0, 1.0, 0.01);
        t.record_epoch(1, &aging, 0.5, 1.0, 0.01);
        assert_eq!(t.most_worn(), 2);
    }

    #[test]
    fn mean_utilization_averages() {
        let (aging, mut t) = tracker();
        // Single epoch with alpha 0.2: util = 0.2 on one of four cores.
        t.record_epoch(0, &aging, 0.0, 1.0, 0.001);
        assert!((t.mean_utilization() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn invalid_busy_panics() {
        let (aging, mut t) = tracker();
        t.record_epoch(0, &aging, 0.0, 1.5, 0.001);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        StressTracker::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "EMA alpha")]
    fn bad_alpha_panics() {
        StressTracker::new(1, 0.0);
    }

    #[test]
    fn recovery_heals_idle_cores_only() {
        use crate::model::RecoveryParams;
        let aging = AgingModel::default().with_recovery(RecoveryParams::default());
        let mut t = StressTracker::new(2, 0.2);
        // Both cores accumulate identical stress while busy.
        for _ in 0..100 {
            t.record_epoch(0, &aging, 1.0, 1.0, 0.001);
            t.record_epoch(1, &aging, 1.0, 1.0, 0.001);
        }
        let loaded = t.core(0).total_damage;
        let pool_after_load = t.core(0).recoverable_damage;
        assert!(pool_after_load > 0.0);
        // Core 0 rests (power-gated); core 1 keeps working.
        for _ in 0..500 {
            t.record_epoch(0, &aging, 0.0, 0.0, 0.001);
            t.record_epoch(1, &aging, 1.0, 1.0, 0.001);
        }
        // The rested core healed: its damage grew by less than the idle
        // wear it accrued (healing offset part of it)...
        let idle_wear = aging.damage(0.0, 0.5);
        assert!(t.core(0).total_damage < loaded + idle_wear);
        // ...and far less than the still-working core.
        assert!(t.core(1).total_damage > t.core(0).total_damage + 0.5 * idle_wear);
        // The recoverable pool drains towards its idle equilibrium.
        assert!(t.core(0).recoverable_damage < 0.5 * pool_after_load);
    }

    #[test]
    fn no_recovery_without_opt_in() {
        let aging = AgingModel::default();
        let mut t = StressTracker::new(1, 0.2);
        for _ in 0..50 {
            t.record_epoch(0, &aging, 1.0, 1.0, 0.001);
        }
        let peak = t.core(0).total_damage;
        for _ in 0..50 {
            t.record_epoch(0, &aging, 0.0, 0.0, 0.001);
        }
        assert!(t.core(0).total_damage >= peak, "permanent damage never heals");
        assert_eq!(t.core(0).recoverable_damage, 0.0);
    }

    #[test]
    fn iter_visits_all_cores() {
        let (_, t) = tracker();
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.core_count(), 4);
    }
}
