//! Software-based self-test (SBST) routines and the power-aware online
//! test scheduler — the paper's primary contribution.
//!
//! SBST tests a core *functionally*: the core runs a carefully constructed
//! instruction sequence that toggles as much logic as possible and compares
//! signatures, with no dedicated test hardware. That makes online testing
//! non-intrusive in principle — any idle core can run a test — but also
//! power-hungry: test code has a far higher activity factor than typical
//! workload. The scheduler must therefore spend only the power *headroom*
//! the workload leaves under the TDP.
//!
//! * [`routine`] — the SBST routine library ([`TestRoutine`],
//!   [`RoutineLibrary`]): instruction volumes, activity factors and fault
//!   coverages per functional block (ALU, FPU, LSU, …).
//! * [`session`] — an in-flight test ([`TestSession`]): progress tracking
//!   and non-intrusive abort (when the mapper reclaims the core).
//! * [`scheduler`] — the power-aware policy ([`TestScheduler`]): each epoch
//!   it ranks idle cores by criticality, rotates each core through the
//!   routine library and the DVFS ladder, and launches sessions only while
//!   projected power fits the reported headroom.
//! * [`coverage`] — the per-core × per-V/f-level ledger
//!   ([`VfCoverageLedger`]), reproducing the journal's "cover all voltage
//!   and frequency levels" behaviour.
//! * [`fault`] — fault injection and detection bookkeeping ([`FaultLog`]):
//!   latent faults planted in cores are detected when a routine covering
//!   them completes, yielding detection-latency statistics.
//! * [`health`] — the per-core health state machine ([`HealthBoard`]):
//!   detections open a `Suspect` state resolved by priority confirmation
//!   retests into either `Quarantined` (withdrawn) or back to `Healthy`.
//!
//! # Examples
//!
//! ```
//! use manytest_sbst::prelude::*;
//! use manytest_power::prelude::*;
//!
//! let node = TechNode::N16;
//! let mut scheduler = TestScheduler::new(TestSchedulerConfig::default(), node);
//! // Two idle cores, plenty of headroom: both get a test session.
//! let candidates = vec![
//!     TestCandidate { core: 0, criticality: 2.0 },
//!     TestCandidate { core: 1, criticality: 1.5 },
//! ];
//! let launches = scheduler.plan(&candidates, 10.0);
//! assert_eq!(launches.len(), 2);
//! // The most critical core is served first.
//! assert_eq!(launches[0].core, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod fault;
pub mod health;
pub mod routine;
pub mod scheduler;
pub mod session;

pub use coverage::VfCoverageLedger;
pub use fault::{Fault, FaultLog, FaultState, LevelWindowInverted};
pub use health::{CoreHealth, HealthBoard};
pub use routine::{RoutineId, RoutineLibrary, TestRoutine};
pub use scheduler::{
    RetestRequest, TestCandidate, TestDenial, TestLaunch, TestScheduler, TestSchedulerConfig,
};
pub use session::{SessionOutcome, TestSession};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::coverage::VfCoverageLedger;
    pub use crate::fault::{Fault, FaultLog, FaultState, LevelWindowInverted};
    pub use crate::health::{CoreHealth, HealthBoard};
    pub use crate::routine::{RoutineId, RoutineLibrary, TestRoutine};
    pub use crate::scheduler::{
        RetestRequest, TestCandidate, TestDenial, TestLaunch, TestScheduler, TestSchedulerConfig,
    };
    pub use crate::session::{SessionOutcome, TestSession};
}
