//! End-to-end tests for the run ledger, the heartbeat/stall watchdog and
//! the regression watch, driving the `repro` binary as CI does.
//!
//! The tentpole guarantee under test: a cache-hit replay is *byte
//! identical* to a fresh run — same stdout tables for any worker count,
//! warm or cold — and a corrupted ledger degrades to fresh runs instead
//! of wrong answers.

use manytest_bench::report::{render_prometheus, run_report_probe};
use manytest_bench::Scale;
use std::path::PathBuf;
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("manytest-ledger-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the `repro` binary with a scrubbed environment (no inherited
/// ledger/jobs/golden variables) plus the given overrides.
fn repro(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    for var in ["MANYTEST_LEDGER_DIR", "MANYTEST_JOBS", "MANYTEST_UPDATE_GOLDEN"] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn repro")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn report_survives_the_wire_byte_identically() {
    let report = run_report_probe("e3", Scale::Quick).expect("e3 is a known probe");
    let decoded = manytest_core::Report::decode_wire(&report.encode_wire())
        .expect("wire round trip decodes");
    // Bit-equal floats ⇒ byte-identical rendering of every artifact.
    assert_eq!(render_prometheus("e3", &report), render_prometheus("e3", &decoded));
    assert_eq!(report.summary(), decoded.summary());
    assert_eq!(report.encode_wire(), decoded.encode_wire());
}

#[test]
fn cache_hits_replay_byte_identically_across_worker_counts() {
    let dir = temp_dir("cache");
    let ledger = &[("MANYTEST_LEDGER_DIR", dir.to_str().unwrap())];
    let cold = repro(&["e3", "--quick", "--jobs", "2"], ledger);
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let warm1 = repro(&["e3", "--quick", "--jobs", "1"], ledger);
    let warm4 = repro(&["e3", "--quick", "--jobs", "4"], ledger);
    assert!(warm1.status.success() && warm4.status.success());
    assert_eq!(cold.stdout, warm1.stdout, "warm (jobs 1) diverged from cold");
    assert_eq!(cold.stdout, warm4.stdout, "warm (jobs 4) diverged from cold");
    let list = repro(&["runs", "list"], ledger);
    let text = stdout_of(&list);
    assert!(text.contains("  ok  "), "no fresh runs listed:\n{text}");
    assert!(text.contains("cached"), "no cached runs listed:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_manifests_and_blobs_degrade_to_fresh_runs() {
    let dir = temp_dir("corrupt");
    let ledger = &[("MANYTEST_LEDGER_DIR", dir.to_str().unwrap())];
    let cold = repro(&["e3", "--quick", "--jobs", "2"], ledger);
    assert!(cold.status.success());

    // Vandalise one manifest and truncate one blob mid-token.
    let manifest = std::fs::read_dir(dir.join("manifests"))
        .expect("manifests dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("at least one manifest");
    std::fs::write(&manifest, "{ this is not a manifest").expect("corrupt manifest");
    let blob = std::fs::read_dir(dir.join("blobs"))
        .expect("blobs dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "wire"))
        .expect("at least one blob");
    let text = std::fs::read_to_string(&blob).expect("read blob");
    std::fs::write(&blob, &text[..text.len() / 2]).expect("truncate blob");

    // Listing skips the corrupt manifest instead of failing.
    let list = repro(&["runs", "list"], ledger);
    assert!(list.status.success());
    assert!(
        stdout_of(&list).contains("corrupt skipped"),
        "listing did not flag the corrupt manifest:\n{}",
        stdout_of(&list)
    );

    // A rerun falls back to a fresh simulation for the truncated blob
    // and still produces byte-identical tables.
    let rerun = repro(&["e3", "--quick", "--jobs", "2"], ledger);
    assert!(rerun.status.success());
    assert_eq!(cold.stdout, rerun.stdout, "recovery run diverged");

    // gc removes the corrupt manifest; the next listing is clean.
    let gc = repro(&["runs", "gc"], ledger);
    assert!(gc.status.success());
    assert!(
        stdout_of(&gc).contains("removed 1 corrupt/stray manifest(s)"),
        "gc summary: {}",
        stdout_of(&gc)
    );
    let relist = repro(&["runs", "list"], ledger);
    assert!(!stdout_of(&relist).contains("corrupt skipped"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stall_demo_flags_the_quiet_job_and_records_the_panicking_one() {
    let dir = temp_dir("stall");
    let out = repro(
        &["stall-demo"],
        &[
            ("MANYTEST_LEDGER_DIR", dir.to_str().unwrap()),
            ("MANYTEST_STALL_SECONDS", "0.2"),
            ("MANYTEST_STALL_DEMO_SECONDS", "1.5"),
        ],
    );
    assert!(out.status.success(), "stall-demo failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("STALLED"),
        "no stall warning in heartbeat frames:\n{stderr}"
    );
    let failed = repro(
        &["runs", "list", "--failed"],
        &[("MANYTEST_LEDGER_DIR", dir.to_str().unwrap())],
    );
    let text = stdout_of(&failed);
    assert!(text.contains("demo/panic"), "failed manifest missing:\n{text}");
    assert!(text.contains("failed"), "outcome column missing:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn regress_gate_passes_clean_and_fails_on_injected_drift() {
    let dir = temp_dir("regress");
    let ledger = &[("MANYTEST_LEDGER_DIR", dir.to_str().unwrap())];
    let clean = repro(&["regress", "--jobs", "4"], ledger);
    assert!(
        clean.status.success(),
        "regress failed against the committed baseline:\n{}",
        stdout_of(&clean)
    );
    assert!(stdout_of(&clean).contains("regress: OK"));
    // Warm ledger: the drift run replays from cache, then fails the gate.
    let drift = repro(&["regress", "--jobs", "4", "--inject-drift"], ledger);
    assert_eq!(drift.status.code(), Some(1), "injected drift must exit 1");
    let text = stdout_of(&drift);
    assert!(text.contains("DRIFT"), "no DRIFT verdict:\n{text}");
    assert!(text.contains("regress: FAIL"), "no FAIL summary:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
