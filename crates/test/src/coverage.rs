//! Per-core, per-V/f-level test coverage ledger.
//!
//! The journal version emphasises that tests must eventually run at *every*
//! voltage/frequency level: circuit timing faults can be V/f dependent, so
//! a core tested only at nominal V/f may still harbour near-threshold
//! faults. [`VfCoverageLedger`] records completed routine runs per
//! `(core, level)` and drives the level-rotation policy of the scheduler.

use manytest_power::VfLevel;
use serde::{Deserialize, Serialize};

/// Completed-test bookkeeping per core and DVFS level.
///
/// # Examples
///
/// ```
/// use manytest_sbst::coverage::VfCoverageLedger;
/// use manytest_power::VfLevel;
///
/// let mut ledger = VfCoverageLedger::new(4, 3);
/// ledger.record(0, VfLevel(1));
/// assert_eq!(ledger.tests_at(0, VfLevel(1)), 1);
/// // Rotation points at the least-tested level next.
/// assert_ne!(ledger.next_level(0), VfLevel(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VfCoverageLedger {
    cores: usize,
    levels: usize,
    counts: Vec<u64>, // cores × levels, row-major per core
}

impl VfCoverageLedger {
    /// Creates an empty ledger for `cores` cores and `levels` DVFS levels.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cores: usize, levels: usize) -> Self {
        assert!(cores > 0 && levels > 0, "dimensions must be positive");
        VfCoverageLedger {
            cores,
            levels,
            counts: vec![0; cores * levels],
        }
    }

    fn idx(&self, core: usize, level: VfLevel) -> usize {
        assert!(core < self.cores, "core {core} out of range");
        assert!(
            (level.0 as usize) < self.levels,
            "level {} out of range",
            level.0
        );
        core * self.levels + level.0 as usize
    }

    /// Number of tracked cores.
    pub fn core_count(&self) -> usize {
        self.cores
    }

    /// Number of tracked levels.
    pub fn level_count(&self) -> usize {
        self.levels
    }

    /// Records one completed routine on `core` at `level`.
    pub fn record(&mut self, core: usize, level: VfLevel) {
        let i = self.idx(core, level);
        self.counts[i] += 1;
    }

    /// Completed routines on `core` at `level`.
    pub fn tests_at(&self, core: usize, level: VfLevel) -> u64 {
        self.counts[self.idx(core, level)]
    }

    /// Total completed routines on `core` over all levels.
    pub fn tests_on_core(&self, core: usize) -> u64 {
        (0..self.levels)
            .map(|l| self.tests_at(core, VfLevel(l as u8)))
            .sum()
    }

    /// Total completed routines per level over all cores.
    pub fn tests_per_level(&self) -> Vec<u64> {
        (0..self.levels)
            .map(|l| {
                (0..self.cores)
                    .map(|c| self.tests_at(c, VfLevel(l as u8)))
                    .sum()
            })
            .collect()
    }

    /// The level `core` should test at next: its least-tested level
    /// (lowest level wins ties), implementing round-robin V/f coverage.
    pub fn next_level(&self, core: usize) -> VfLevel {
        (0..self.levels)
            .map(|l| VfLevel(l as u8))
            .min_by_key(|&l| (self.tests_at(core, l), l.0))
            .expect("ledger has at least one level")
    }

    /// Like [`Self::next_level`], but ties among equally-tested levels are
    /// broken by cyclic distance from `core % levels` instead of "lowest
    /// first". Staggering each core's starting level spreads the
    /// population's first tests across the whole ladder, so even short
    /// runs exercise every V/f level somewhere on the die.
    pub fn next_level_staggered(&self, core: usize) -> VfLevel {
        let offset = core % self.levels;
        (0..self.levels)
            .map(|l| VfLevel(l as u8))
            .min_by_key(|&l| {
                let distance = (l.0 as usize + self.levels - offset) % self.levels;
                (self.tests_at(core, l), distance)
            })
            // lint:allow(hot-path-purity, reason = "ledger is constructed with at least one level")
            .expect("ledger has at least one level")
    }

    /// True if `core` has completed at least one routine at every level.
    pub fn core_fully_covered(&self, core: usize) -> bool {
        (0..self.levels).all(|l| self.tests_at(core, VfLevel(l as u8)) > 0)
    }

    /// True if every core has completed at least one routine at every
    /// level (the journal's "cover all voltage and frequency levels").
    pub fn fully_covered(&self) -> bool {
        (0..self.cores).all(|c| self.core_fully_covered(c))
    }

    /// Cores ordered by ascending total test count (least-tested first).
    pub fn least_tested_cores(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.cores).collect();
        order.sort_by_key(|&c| (self.tests_on_core(c), c));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut l = VfCoverageLedger::new(2, 3);
        l.record(0, VfLevel(2));
        l.record(0, VfLevel(2));
        l.record(1, VfLevel(0));
        assert_eq!(l.tests_at(0, VfLevel(2)), 2);
        assert_eq!(l.tests_on_core(0), 2);
        assert_eq!(l.tests_on_core(1), 1);
        assert_eq!(l.tests_per_level(), vec![1, 0, 2]);
    }

    #[test]
    fn next_level_rotates_through_all() {
        let mut l = VfCoverageLedger::new(1, 4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let level = l.next_level(0);
            seen.push(level.0);
            l.record(0, level);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(l.core_fully_covered(0));
    }

    #[test]
    fn next_level_prefers_least_tested() {
        let mut l = VfCoverageLedger::new(1, 3);
        l.record(0, VfLevel(0));
        l.record(0, VfLevel(1));
        assert_eq!(l.next_level(0), VfLevel(2));
        l.record(0, VfLevel(2));
        l.record(0, VfLevel(2));
        assert_eq!(l.next_level(0), VfLevel(0));
    }

    #[test]
    fn fully_covered_requires_every_cell() {
        let mut l = VfCoverageLedger::new(2, 2);
        assert!(!l.fully_covered());
        l.record(0, VfLevel(0));
        l.record(0, VfLevel(1));
        l.record(1, VfLevel(0));
        assert!(!l.fully_covered());
        l.record(1, VfLevel(1));
        assert!(l.fully_covered());
    }

    #[test]
    fn least_tested_ordering() {
        let mut l = VfCoverageLedger::new(3, 1);
        l.record(1, VfLevel(0));
        l.record(1, VfLevel(0));
        l.record(2, VfLevel(0));
        assert_eq!(l.least_tested_cores(), vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        VfCoverageLedger::new(1, 1).tests_at(5, VfLevel(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_panics() {
        VfCoverageLedger::new(1, 1).tests_at(0, VfLevel(7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_panic() {
        VfCoverageLedger::new(0, 3);
    }
}
