//! Property tests: the analyzer front end against SimRng-driven random
//! token streams.
//!
//! The lexer, symbol extractor and full file-rule pipeline must be
//! total — mangled headers, unbalanced braces and half-finished items
//! appear in every editor buffer the analyzer will ever meet, and a
//! panic in the linter takes CI down with it. The generator is the
//! simulator's own deterministic [`SimRng`], so every failure is
//! replayable from its printed seed.

use manytest_lint::lint_files;
use manytest_lint::source::SourceFile;
use manytest_lint::symbols::{extract_file, ItemKind};
use manytest_sim::SimRng;

/// Token atoms the generator draws from — weighted toward the shapes
/// the symbol extractor cares about (item keywords, braces, headers)
/// plus the lexer's edge cases (raw strings, lifetimes, char literals).
const ATOMS: &[&str] = &[
    "fn", "impl", "trait", "struct", "enum", "match", "for", "where", "in",
    "pub", "self", "Self", "mut", "let", "else", "return",
    "probe", "launch", "System", "SimEvent", "epoch_us", "budget_ms", "cap_w",
    "{", "}", "(", ")", "[", "]", "<", ">", "::", ":", ";", ",", ".", "=>",
    "->", "&", "=", "+", "-", "*", "#", "!", "_", "'a", "'\\n'", "0x1f",
    "1e3", "42", "\"text\"", "r#\"raw \" quote\"#", "// line comment",
    "/* block */", "unwrap", "expect", "push", "vec",
];

fn random_source(rng: &mut SimRng) -> String {
    let len = 1 + rng.gen_range(240) as usize;
    let mut out = String::new();
    for _ in 0..len {
        out.push_str(ATOMS[rng.gen_range(ATOMS.len() as u64) as usize]);
        // Line comments must be able to end; newlines also exercise the
        // per-line bookkeeping (test-line masks, allow target lines).
        out.push(if rng.gen_bool(0.25) { '\n' } else { ' ' });
    }
    out
}

#[test]
fn random_token_streams_never_panic_the_pipeline() {
    for seed in 0..400u64 {
        let mut rng = SimRng::seed_from(seed);
        let src = random_source(&mut rng);
        let file = SourceFile::from_source("crates/core/src/system.rs", src.clone());
        let (fns, items) = extract_file(&file, 0);
        let _ = (fns.len(), items.len());
        // The full file-rule pass (lexer → rules → allow audit) must
        // also be total on the same input.
        let report = lint_files(vec![SourceFile::from_source("crates/core/src/audit.rs", src)]);
        let _ = report.findings.len();
        // seed is printed on panic via the test harness backtrace; keep
        // the loop tight so a failure pins the exact seed.
    }
}

#[test]
fn extracted_item_spans_lie_inside_the_source() {
    for seed in 0..400u64 {
        let mut rng = SimRng::seed_from(seed ^ 0x5eed);
        let src = random_source(&mut rng);
        let file = SourceFile::from_source("crates/core/src/x.rs", src.clone());
        let lines: Vec<&str> = src.lines().collect();
        let (fns, items) = extract_file(&file, 0);
        for item in &items {
            assert!(item.line >= 1, "seed {seed}: zero line");
            assert!(
                (item.line as usize) <= lines.len(),
                "seed {seed}: item line {} beyond {} source lines",
                item.line,
                lines.len()
            );
            assert!(
                item.end_line >= item.line,
                "seed {seed}: span ends ({}) before it starts ({})",
                item.end_line,
                item.line
            );
            assert!(
                (item.end_line as usize) <= lines.len(),
                "seed {seed}: end line {} beyond source",
                item.end_line
            );
            let line = lines[item.line as usize - 1];
            let chars = line.chars().count() as u32;
            assert!(
                item.col >= 1 && item.col <= chars,
                "seed {seed}: col {} outside line {:?}",
                item.col,
                line
            );
        }
        for f in &fns {
            assert!(
                f.line >= 1 && (f.line as usize) <= lines.len(),
                "seed {seed}: fn line {} outside source",
                f.line
            );
        }
    }
}

#[test]
fn every_item_starts_at_its_declaring_keyword() {
    for seed in 0..400u64 {
        let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9e37_79b9));
        let src = random_source(&mut rng);
        let file = SourceFile::from_source("crates/core/src/x.rs", src.clone());
        let lines: Vec<&str> = src.lines().collect();
        let (_, items) = extract_file(&file, 0);
        for item in &items {
            let keyword = match item.kind {
                ItemKind::Fn => "fn",
                ItemKind::Impl => "impl",
                ItemKind::Trait => "trait",
            };
            let line = lines[item.line as usize - 1];
            let rest: String = line.chars().skip(item.col as usize - 1).collect();
            assert!(
                rest.starts_with(keyword),
                "seed {seed}: {:?} item at {}:{} does not start with `{keyword}` in {line:?}",
                item.kind,
                item.line,
                item.col
            );
        }
    }
}
