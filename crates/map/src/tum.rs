//! The paper's test-aware utilization-oriented mapping (TUM).

use crate::context::MapContext;
use crate::contiguous;
use crate::mapping::Mapping;
use crate::Mapper;
use manytest_noc::RegionSearch;
use manytest_workload::TaskGraph;
use serde::{Deserialize, Serialize};

/// Test-aware utilization-oriented runtime mapping.
///
/// Structurally identical to the baseline (square-region first-node search
/// followed by contiguous placement), but node desirability adds two
/// pressure terms:
///
/// * `utilization_weight × utilization(c)` — avoid cores that have been
///   busy recently, spreading stress (and heat) across the die;
/// * `criticality_weight × criticality(c)` — avoid cores that are overdue
///   for a test, so the test scheduler finds them idle.
///
/// Both terms feed the region search *and* the per-node placement penalty,
/// mirroring how the paper threads test criticality through the whole
/// mapping decision.
///
/// # Examples
///
/// ```
/// use manytest_map::prelude::*;
/// use manytest_noc::{Coord, Mesh2D};
/// use manytest_workload::presets;
///
/// let mesh = Mesh2D::new(8, 8);
/// let mut ctx = MapContext::all_free(mesh);
/// // The top-left corner is overdue for testing.
/// ctx.set_criticality(Coord::new(0, 0), 10.0);
/// let mapping = TestAwareMapper::default().map(&ctx, &presets::pip()).unwrap();
/// assert!(!mapping.coords().contains(&Coord::new(0, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestAwareMapper {
    /// Weight of the recent-utilisation penalty.
    pub utilization_weight: f64,
    /// Weight of the test-criticality penalty.
    pub criticality_weight: f64,
}

impl TestAwareMapper {
    /// Creates a mapper with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative or non-finite.
    pub fn new(utilization_weight: f64, criticality_weight: f64) -> Self {
        assert!(
            utilization_weight >= 0.0 && utilization_weight.is_finite(),
            "utilization weight must be non-negative"
        );
        assert!(
            criticality_weight >= 0.0 && criticality_weight.is_finite(),
            "criticality weight must be non-negative"
        );
        TestAwareMapper {
            utilization_weight,
            criticality_weight,
        }
    }

    fn node_penalty(&self, ctx: &MapContext, c: manytest_noc::Coord) -> f64 {
        self.utilization_weight * ctx.utilization(c)
            + self.criticality_weight * ctx.criticality(c)
    }
}

impl Default for TestAwareMapper {
    /// The tuning used in the evaluation: criticality dominates (keeping
    /// overdue cores free matters more than stress spreading), utilisation
    /// breaks ties.
    fn default() -> Self {
        TestAwareMapper::new(2.0, 6.0)
    }
}

impl Mapper for TestAwareMapper {
    // lint:effect(alloc+panic, reason = "mapping lane materializes one placement per admitted app; placement expects hold on the searched region")
    fn map(&self, ctx: &MapContext, app: &TaskGraph) -> Option<Mapping> {
        let search = RegionSearch::new(ctx.mesh());
        let choice = search.find(
            app.task_count(),
            |c| ctx.is_free(c),
            |c| self.node_penalty(ctx, c),
        )?;
        // Express the pressure terms in units of "one hop of typical
        // traffic", otherwise the communication attraction (bits × hops)
        // numerically drowns them.
        let scale = contiguous::mean_edge_bits(app);
        contiguous::place(ctx, choice.region, app, |c| {
            self.node_penalty(ctx, c) * scale
        })
    }

    fn name(&self) -> &str {
        "test-aware-utilization"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_noc::{Coord, Mesh2D};
    use manytest_workload::presets;

    #[test]
    fn avoids_high_criticality_cores() {
        let mesh = Mesh2D::new(8, 8);
        let mut ctx = MapContext::all_free(mesh);
        // Mark a 4x4 block as highly test-critical.
        for c in mesh.coords().filter(|c| c.x < 4 && c.y < 4) {
            ctx.set_criticality(c, 50.0);
        }
        let m = TestAwareMapper::default().map(&ctx, &presets::pip()).unwrap();
        for &c in m.coords() {
            assert!(
                !(c.x < 4 && c.y < 4),
                "mapped onto critical core {c} despite alternatives"
            );
        }
    }

    #[test]
    fn avoids_high_utilization_cores() {
        let mesh = Mesh2D::new(8, 8);
        let mut ctx = MapContext::all_free(mesh);
        for c in mesh.coords().filter(|c| c.y >= 4) {
            ctx.set_utilization(c, 1.0);
        }
        let m = TestAwareMapper::new(5.0, 0.0).map(&ctx, &presets::pip()).unwrap();
        for &c in m.coords() {
            assert!(c.y < 4, "mapped onto hot core {c}");
        }
    }

    #[test]
    fn uses_critical_cores_when_unavoidable() {
        let mesh = Mesh2D::new(3, 3);
        let mut ctx = MapContext::all_free(mesh);
        for c in mesh.coords() {
            ctx.set_criticality(c, 10.0);
        }
        // PIP needs 8 of the 9 cores: no escape, must still succeed.
        let m = TestAwareMapper::default().map(&ctx, &presets::pip());
        assert!(m.is_some());
    }

    #[test]
    fn degenerates_to_baseline_on_clean_context() {
        use crate::baseline::ConaMapper;
        let ctx = MapContext::all_free(Mesh2D::new(8, 8));
        let app = presets::mwd();
        let tum = TestAwareMapper::default().map(&ctx, &app).unwrap();
        let cona = ConaMapper::new().map(&ctx, &app).unwrap();
        assert_eq!(tum, cona, "zero pressure ⇒ identical decisions");
    }

    #[test]
    fn refuses_when_insufficient_cores() {
        let mesh = Mesh2D::new(2, 2);
        let ctx = MapContext::all_free(mesh);
        assert!(TestAwareMapper::default().map(&ctx, &presets::vopd()).is_none());
    }

    #[test]
    fn weights_zero_means_agnostic() {
        let mesh = Mesh2D::new(8, 8);
        let mut ctx = MapContext::all_free(mesh);
        ctx.set_criticality(Coord::new(0, 0), 100.0);
        let agnostic = TestAwareMapper::new(0.0, 0.0);
        let clean = MapContext::all_free(mesh);
        let app = presets::pip();
        assert_eq!(agnostic.map(&ctx, &app), agnostic.map(&clean, &app));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        TestAwareMapper::new(-1.0, 0.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(TestAwareMapper::default().name(), "test-aware-utilization");
    }

    #[test]
    fn mapping_remains_reasonably_compact() {
        let mesh = Mesh2D::new(10, 10);
        let mut ctx = MapContext::all_free(mesh);
        // Light random-ish pressure should not destroy contiguity.
        for (i, c) in mesh.coords().enumerate() {
            ctx.set_utilization(c, ((i * 7) % 10) as f64 / 20.0);
        }
        let m = TestAwareMapper::default().map(&ctx, &presets::vopd()).unwrap();
        assert!(m.bounding_box_area() <= 36, "area {}", m.bounding_box_area());
    }
}
