//! Fault injection and detection bookkeeping.
//!
//! Online testing exists to catch **latent permanent faults** — wear-out
//! damage that has already happened but has not yet corrupted an
//! application. The evaluation plants faults at chosen times and measures
//! how long the scheduler takes to find them (detection latency); a test
//! routine detects a fault in its block with probability equal to its
//! structural coverage.

use crate::routine::TestRoutine;
use manytest_power::VfLevel;
use manytest_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A [`Fault::try_with_level_window`] rejection: the observability window
/// was inverted (`from > to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelWindowInverted {
    /// The lower bound that was supplied.
    pub from: VfLevel,
    /// The upper bound that was supplied.
    pub to: VfLevel,
}

impl std::fmt::Display for LevelWindowInverted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "level window inverted: from {} > to {}",
            self.from.0, self.to.0
        )
    }
}

impl std::error::Error for LevelWindowInverted {}

/// Lifecycle of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultState {
    /// Injected but not yet present (injection time in the future).
    Pending,
    /// Present and undetected.
    Latent,
    /// Found by a test at the recorded time.
    Detected {
        /// When the detecting routine completed, seconds.
        at: f64,
    },
}

/// One injected permanent fault on one core.
///
/// Some wear-out faults are **voltage dependent**: a marginal transistor
/// may only violate timing at near-threshold voltage, or a leakage-induced
/// defect may only misbehave at nominal. `visible_from`/`visible_to`
/// bound the DVFS levels at which a test can observe the fault — this is
/// exactly why the journal version insists tests must "cover all the
/// voltage and frequency levels".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// The faulty core.
    pub core: usize,
    /// When the fault becomes present, seconds.
    pub inject_at: f64,
    /// Current lifecycle state.
    pub state: FaultState,
    /// Lowest DVFS level at which the fault is observable (inclusive).
    pub visible_from: VfLevel,
    /// Highest DVFS level at which the fault is observable (inclusive).
    pub visible_to: VfLevel,
    /// Probability that the fault *manifests* during any one observation
    /// attempt. `1.0` models a solid permanent fault (the original
    /// behaviour); lower values model intermittent wear-out symptoms that
    /// a confirmation retest may fail to reproduce. The effective
    /// per-test detection probability is `coverage * refire`.
    pub refire: f64,
    /// Time after which the fault stops refiring entirely (an
    /// early-life intermittent that burns in, or marginal timing that an
    /// adaptation elsewhere masks). `None` = the fault corrupts and
    /// manifests forever. A cooled fault neither manifests to tests or
    /// probes nor corrupts application work — this is the cool-down the
    /// re-admission lane waits out.
    pub refire_until: Option<f64>,
}

impl Fault {
    /// Creates a solid fault observable at every DVFS level, injected at
    /// `inject_at` seconds.
    pub fn new(core: usize, inject_at: f64) -> Self {
        Fault {
            core,
            inject_at,
            state: FaultState::Pending,
            visible_from: VfLevel(0),
            visible_to: VfLevel(u8::MAX),
            refire: 1.0,
            refire_until: None,
        }
    }

    /// Creates a voltage-dependent fault only observable when the test
    /// runs at a level in `[from, to]`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelWindowInverted`] if `from > to`.
    pub fn try_with_level_window(
        core: usize,
        inject_at: f64,
        from: VfLevel,
        to: VfLevel,
    ) -> Result<Self, LevelWindowInverted> {
        if from > to {
            return Err(LevelWindowInverted { from, to });
        }
        Ok(Fault {
            core,
            inject_at,
            state: FaultState::Pending,
            visible_from: from,
            visible_to: to,
            refire: 1.0,
            refire_until: None,
        })
    }

    /// Panicking convenience form of [`Fault::try_with_level_window`].
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn with_level_window(core: usize, inject_at: f64, from: VfLevel, to: VfLevel) -> Self {
        Self::try_with_level_window(core, inject_at, from, to)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the per-observation manifestation probability (see
    /// [`Fault::refire`]).
    ///
    /// # Panics
    ///
    /// Panics if `refire` is not a probability in `[0, 1]`.
    pub fn with_refire(mut self, refire: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&refire),
            "refire must be a probability, got {refire}"
        );
        self.refire = refire;
        self
    }

    /// Sets the cool-down time after which the fault stops refiring (see
    /// [`Fault::refire_until`]).
    pub fn with_refire_until(mut self, until: f64) -> Self {
        self.refire_until = Some(until);
        self
    }

    /// True if this fault reproduces on every observation attempt.
    pub fn is_solid(&self) -> bool {
        self.refire >= 1.0
    }

    /// The manifestation probability at `now`: the configured refire, or
    /// zero once the fault has cooled past [`Fault::refire_until`].
    pub fn effective_refire(&self, now: f64) -> f64 {
        match self.refire_until {
            Some(until) if now >= until => 0.0,
            _ => self.refire,
        }
    }

    /// End of this fault's corrupting span (`inject_at` → here), or
    /// `f64::INFINITY` when it never cools.
    pub fn corrupting_until(&self) -> f64 {
        self.refire_until.unwrap_or(f64::INFINITY)
    }

    /// True if a test at `level` can observe this fault at all.
    pub fn visible_at(&self, level: VfLevel) -> bool {
        (self.visible_from..=self.visible_to).contains(&level)
    }

    /// Detection latency (detection time − injection time), if detected.
    pub fn detection_latency(&self) -> Option<f64> {
        match self.state {
            FaultState::Detected { at } => Some((at - self.inject_at).max(0.0)),
            _ => None,
        }
    }
}

/// The set of injected faults and their detection statistics.
///
/// # Examples
///
/// ```
/// use manytest_sbst::fault::{FaultLog, FaultState};
/// use manytest_sbst::routine::RoutineLibrary;
/// use manytest_sim::SimRng;
///
/// let mut log = FaultLog::new();
/// log.inject(2, 0.010);
/// log.activate_due(0.020);
/// let lib = RoutineLibrary::standard();
/// let mut rng = SimRng::seed_from(1);
/// // A completed routine on the faulty core may detect it.
/// let level = manytest_power::VfLevel(0);
/// let detected = log.on_test_complete(2, lib.routine(manytest_sbst::routine::RoutineId(0)), level, 0.021, &mut rng);
/// assert_eq!(detected, log.detected_count() == 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    faults: Vec<Fault>,
    /// Per-core indices into `faults`, in injection order. Keeps
    /// [`FaultLog::on_test_complete`] from scanning every injected fault
    /// on every test completion; because each core's index list preserves
    /// the global injection order, the RNG draw sequence is identical to
    /// the full scan it replaced.
    by_core: BTreeMap<usize, Vec<usize>>,
    /// Detection *occurrences*: incremented on every detection, never
    /// decremented. [`FaultLog::demote_to_latent`] can return a fault to
    /// `Latent` (a cleared suspect), so this counter — not
    /// [`FaultLog::detected_count`] — reconciles with `FaultDetected`
    /// telemetry events.
    detections: u64,
    /// Per-core cool-down clock: the last time any fault on the core
    /// manifested to a test, retest or probe. The re-admission lane uses
    /// this to wait out an intermittent's refire streak before probing.
    last_refire: BTreeMap<usize, f64>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_fault(&mut self, fault: Fault) {
        let idx = self.faults.len();
        self.by_core.entry(fault.core).or_default().push(idx);
        self.faults.push(fault);
    }

    /// Schedules a fault on `core` at `inject_at` seconds, observable at
    /// every DVFS level.
    pub fn inject(&mut self, core: usize, inject_at: f64) {
        self.push_fault(Fault::new(core, inject_at));
    }

    /// Schedules a voltage-dependent fault observable only at levels in
    /// `[from, to]`.
    pub fn inject_windowed(&mut self, core: usize, inject_at: f64, from: VfLevel, to: VfLevel) {
        self.push_fault(Fault::with_level_window(core, inject_at, from, to));
    }

    /// Schedules an arbitrary pre-built fault (e.g. an intermittent one
    /// built with [`Fault::with_refire`]).
    pub fn inject_fault(&mut self, fault: Fault) {
        self.push_fault(fault);
    }

    /// Promotes pending faults whose injection time has passed to latent.
    pub fn activate_due(&mut self, now: f64) {
        self.activate_due_with(now, |_| {});
    }

    /// [`FaultLog::activate_due`] with a telemetry hook: `on_activate`
    /// receives the core of every fault promoted by this call.
    pub fn activate_due_with(&mut self, now: f64, mut on_activate: impl FnMut(usize)) {
        for f in &mut self.faults {
            if matches!(f.state, FaultState::Pending) && f.inject_at <= now {
                f.state = FaultState::Latent;
                on_activate(f.core);
            }
        }
    }

    /// Reports a completed `routine` on `core` at DVFS level `level` at
    /// time `now`: every latent fault on that core that is *visible at
    /// that level* is detected with probability `routine.coverage`.
    /// Returns true if at least one fault was detected by this run.
    pub fn on_test_complete(
        &mut self,
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
    ) -> bool {
        self.on_test_complete_with(core, routine, level, now, rng, |_, _| {})
    }

    /// [`FaultLog::on_test_complete`] with a telemetry hook: `on_detect`
    /// receives `(core, detection_latency_seconds)` for every fault this
    /// run detects. The RNG draw order is identical to the hook-less form.
    pub fn on_test_complete_with(
        &mut self,
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
        mut on_detect: impl FnMut(usize, f64),
    ) -> bool {
        let Some(indices) = self.by_core.get(&core) else {
            return false;
        };
        let mut any = false;
        // Indices are in injection order, so the RNG draws happen in the
        // same sequence as the historical whole-log scan (which consumed a
        // draw only for latent, level-visible faults on this core).
        for &i in indices {
            let f = &mut self.faults[i];
            if matches!(f.state, FaultState::Latent)
                && f.visible_at(level)
                && rng.gen_bool(routine.coverage * f.effective_refire(now))
            {
                f.state = FaultState::Detected { at: now };
                self.detections += 1;
                on_detect(f.core, (now - f.inject_at).max(0.0));
                any = true;
            }
        }
        if any {
            // lint:allow(hot-path-purity, reason = "BTreeMap keyed by core: first touch per core allocates its node once; refires overwrite in place")
            self.last_refire.insert(core, now);
        }
        any
    }

    /// Runs a *confirmation retest* on `core`: draws over every fault on
    /// the core that is latent **or already detected** and visible at
    /// `level`, using the same `coverage * refire` probability as a
    /// regular test. Returns true if any fault manifested.
    ///
    /// Unlike [`FaultLog::on_test_complete`], confirmation neither counts
    /// toward [`FaultLog::detections`] nor reports detection telemetry —
    /// it answers one question: *does the symptom reproduce?* A latent
    /// fault that manifests here is promoted to `Detected` (the retest
    /// found it first). Because the draw is taken only over faults
    /// actually present on the core, a fault-free core can never confirm:
    /// false-positive detections always clear.
    pub fn confirm(
        &mut self,
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
    ) -> bool {
        let Some(indices) = self.by_core.get(&core) else {
            return false;
        };
        let mut any = false;
        for &i in indices {
            let f = &mut self.faults[i];
            let present = matches!(f.state, FaultState::Latent | FaultState::Detected { .. });
            if present
                && f.visible_at(level)
                && rng.gen_bool(routine.coverage * f.effective_refire(now))
            {
                if matches!(f.state, FaultState::Latent) {
                    f.state = FaultState::Detected { at: now };
                }
                any = true;
            }
        }
        if any {
            // lint:allow(hot-path-purity, reason = "BTreeMap keyed by core: first touch per core allocates its node once; refires overwrite in place")
            self.last_refire.insert(core, now);
        }
        any
    }

    /// Runs one background re-admission *probe* on `core` at `level`:
    /// draws over every present fault visible at that level with
    /// probability `coverage * effective_refire(now)` — the same physics
    /// as a confirmation retest. A manifest records the refire on the
    /// core's cool-down clock but neither promotes fault state nor counts
    /// as a detection: probation failures re-quarantine without opening a
    /// new suspicion. Returns true if any fault manifested.
    pub fn probe(
        &mut self,
        core: usize,
        coverage: f64,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
    ) -> bool {
        let Some(indices) = self.by_core.get(&core) else {
            return false;
        };
        let mut any = false;
        for &i in indices {
            let f = &self.faults[i];
            let present = matches!(f.state, FaultState::Latent | FaultState::Detected { .. });
            if present && f.visible_at(level) && rng.gen_bool(coverage * f.effective_refire(now))
            {
                any = true;
            }
        }
        if any {
            // lint:allow(hot-path-purity, reason = "BTreeMap keyed by core: first touch per core allocates its node once; refires overwrite in place")
            self.last_refire.insert(core, now);
        }
        any
    }

    /// The last time any fault on `core` manifested to a test, retest or
    /// probe (the cool-down clock the re-admission lane waits on).
    pub fn last_refire_at(&self, core: usize) -> Option<f64> {
        self.last_refire.get(&core).copied()
    }

    /// Returns every detected fault on `core` to `Latent`, forgetting its
    /// detection time. Called when confirmation retests fail to reproduce
    /// a symptom and the core is cleared back to healthy — the fault (if
    /// any) is still there, still undetected as far as the platform knows.
    pub fn demote_to_latent(&mut self, core: usize) {
        if let Some(indices) = self.by_core.get(&core) {
            for &i in indices {
                let f = &mut self.faults[i];
                if matches!(f.state, FaultState::Detected { .. }) {
                    f.state = FaultState::Latent;
                }
            }
        }
    }

    /// True if `core` carries at least one fault already injected by
    /// `now` (latent or detected).
    pub fn has_active_fault(&self, core: usize, now: f64) -> bool {
        self.by_core.get(&core).is_some_and(|idx| {
            idx.iter().any(|&i| {
                let f = &self.faults[i];
                f.inject_at <= now && !matches!(f.state, FaultState::Pending)
            })
        })
    }

    /// True if `core` carries an active **solid** fault (`refire == 1`)
    /// by `now`. Quarantining a core whose only faults are intermittent
    /// is counted as a *false quarantine* by the degradation report.
    pub fn has_solid_active_fault(&self, core: usize, now: f64) -> bool {
        self.by_core.get(&core).is_some_and(|idx| {
            idx.iter().any(|&i| {
                let f = &self.faults[i];
                f.inject_at <= now && !matches!(f.state, FaultState::Pending) && f.is_solid()
            })
        })
    }

    /// Overlap, in seconds, of the span `[t0, t1]` with the core's
    /// *corrupting* spans — the union over its activated faults of
    /// `[inject_at, refire_until)`. This is what the exposure accrual
    /// charges: work on a core whose faults have all cooled is safe.
    ///
    /// Up to 8 faults per core are merged exactly (zero allocations);
    /// beyond that the convex hull is used, which can only over-count —
    /// the conservative direction for an exposure metric.
    pub fn corrupting_overlap(&self, core: usize, t0: f64, t1: f64) -> f64 {
        let Some(indices) = self.by_core.get(&core) else {
            return 0.0;
        };
        let mut spans = [(0.0f64, 0.0f64); 8];
        let mut n = 0usize;
        let (mut hull_lo, mut hull_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in indices {
            let f = &self.faults[i];
            let lo = f.inject_at.max(t0);
            let hi = f.corrupting_until().min(t1);
            if lo >= hi {
                continue;
            }
            hull_lo = hull_lo.min(lo);
            hull_hi = hull_hi.max(hi);
            if n < spans.len() {
                spans[n] = (lo, hi);
                n += 1;
            } else {
                // Too many faults to merge exactly: fall back to the hull.
                return (hull_hi - hull_lo).max(0.0);
            }
        }
        if n == 0 {
            return 0.0;
        }
        spans[..n].sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = 0.0;
        let (mut cur_lo, mut cur_hi) = spans[0];
        for &(lo, hi) in &spans[1..n] {
            if lo <= cur_hi {
                cur_hi = cur_hi.max(hi);
            } else {
                total += cur_hi - cur_lo;
                (cur_lo, cur_hi) = (lo, hi);
            }
        }
        total + (cur_hi - cur_lo)
    }

    /// Earliest injection time of any fault on `core`, if one exists.
    pub fn first_inject_at(&self, core: usize) -> Option<f64> {
        self.by_core.get(&core).and_then(|idx| {
            idx.iter()
                .map(|&i| self.faults[i].inject_at)
                .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.min(t))))
        })
    }

    /// Total detection occurrences (see the field doc on why this can
    /// exceed [`FaultLog::detected_count`]).
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// All faults in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.state, FaultState::Detected { .. }))
            .count()
    }

    /// Number of faults still latent at the end of the run.
    pub fn latent_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f.state, FaultState::Latent))
            .count()
    }

    /// Mean detection latency over detected faults, seconds.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let latencies: Vec<f64> = self
            .faults
            .iter()
            .filter_map(Fault::detection_latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        }
    }

    /// Worst detection latency over detected faults, seconds.
    pub fn max_detection_latency(&self) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(Fault::detection_latency)
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routine::RoutineLibrary;

    use crate::routine::RoutineId;

    fn routine() -> TestRoutine {
        RoutineLibrary::standard().routine(RoutineId(0)).clone()
    }

    fn certain_routine() -> TestRoutine {
        TestRoutine::new("perfect", 1_000, 0.8, 1.0)
    }

    #[test]
    fn lifecycle_pending_latent_detected() {
        let mut log = FaultLog::new();
        log.inject(0, 1.0);
        assert!(matches!(log.faults()[0].state, FaultState::Pending));
        log.activate_due(0.5);
        assert!(matches!(log.faults()[0].state, FaultState::Pending));
        log.activate_due(1.0);
        assert!(matches!(log.faults()[0].state, FaultState::Latent));
        let mut rng = SimRng::seed_from(1);
        let hit = log.on_test_complete(0, &certain_routine(), VfLevel(0), 2.5, &mut rng);
        assert!(hit);
        assert_eq!(log.detected_count(), 1);
        assert_eq!(log.faults()[0].detection_latency(), Some(1.5));
    }

    #[test]
    fn tests_on_other_cores_do_not_detect() {
        let mut log = FaultLog::new();
        log.inject(3, 0.0);
        log.activate_due(1.0);
        let mut rng = SimRng::seed_from(2);
        assert!(!log.on_test_complete(4, &certain_routine(), VfLevel(0), 2.0, &mut rng));
        assert_eq!(log.latent_count(), 1);
    }

    #[test]
    fn pending_faults_are_not_detectable() {
        let mut log = FaultLog::new();
        log.inject(0, 10.0);
        let mut rng = SimRng::seed_from(3);
        assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng));
        assert_eq!(log.detected_count(), 0);
    }

    #[test]
    fn detection_is_probabilistic_with_partial_coverage() {
        // coverage 0.95 over many trials: most but not all single attempts
        // succeed.
        let mut hits = 0;
        for seed in 0..200 {
            let mut log = FaultLog::new();
            log.inject(0, 0.0);
            log.activate_due(0.0);
            let mut rng = SimRng::seed_from(seed);
            if log.on_test_complete(0, &routine(), VfLevel(0), 1.0, &mut rng) {
                hits += 1;
            }
        }
        assert!((170..=200).contains(&hits), "hits = {hits}");
        assert!(hits < 200 || routine().coverage == 1.0);
    }

    #[test]
    fn latency_statistics() {
        let mut log = FaultLog::new();
        log.inject(0, 0.0);
        log.inject(1, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(4);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng);
        log.on_test_complete(1, &certain_routine(), VfLevel(0), 3.0, &mut rng);
        assert_eq!(log.mean_detection_latency(), Some(2.0));
        assert_eq!(log.max_detection_latency(), Some(3.0));
    }

    #[test]
    fn empty_log_statistics() {
        let log = FaultLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_detection_latency(), None);
        assert_eq!(log.max_detection_latency(), None);
        assert_eq!(log.detected_count(), 0);
    }

    #[test]
    fn level_window_gates_detection() {
        let mut log = FaultLog::new();
        // Observable only at levels 0..=1 (a near-threshold-only fault).
        log.inject_windowed(0, 0.0, VfLevel(0), VfLevel(1));
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(9);
        // Testing at nominal (level 4) cannot see it.
        assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(4), 1.0, &mut rng));
        assert_eq!(log.latent_count(), 1);
        // Testing inside the window catches it.
        assert!(log.on_test_complete(0, &certain_routine(), VfLevel(1), 2.0, &mut rng));
        assert_eq!(log.detected_count(), 1);
    }

    #[test]
    fn unwindowed_faults_are_visible_everywhere() {
        let f = Fault::new(3, 0.0);
        for level in 0..=10u8 {
            assert!(f.visible_at(VfLevel(level)));
        }
    }

    #[test]
    #[should_panic(expected = "window inverted")]
    fn inverted_window_panics() {
        Fault::with_level_window(0, 0.0, VfLevel(3), VfLevel(1));
    }

    #[test]
    fn telemetry_hooks_see_activations_and_detections() {
        let mut log = FaultLog::new();
        log.inject(2, 1.0);
        log.inject(5, 3.0);
        let mut activated = Vec::new();
        log.activate_due_with(2.0, |core| activated.push(core));
        assert_eq!(activated, vec![2], "only the due fault activates");
        let mut rng = SimRng::seed_from(6);
        let mut detections = Vec::new();
        let hit = log.on_test_complete_with(
            2,
            &certain_routine(),
            VfLevel(0),
            4.5,
            &mut rng,
            |core, latency| detections.push((core, latency)),
        );
        assert!(hit);
        assert_eq!(detections, vec![(2, 3.5)]);
    }

    /// The historical implementation of `on_test_complete_with`: a scan
    /// over *every* injected fault. Kept verbatim (modulo the refire
    /// factor, which is 1.0 for all faults in this test) as the reference
    /// for the determinism proof below.
    fn reference_full_scan(
        faults: &mut [Fault],
        core: usize,
        routine: &TestRoutine,
        level: VfLevel,
        now: f64,
        rng: &mut SimRng,
    ) -> bool {
        let mut any = false;
        for f in faults.iter_mut() {
            if f.core == core
                && matches!(f.state, FaultState::Latent)
                && f.visible_at(level)
                && rng.gen_bool(routine.coverage * f.refire)
            {
                f.state = FaultState::Detected { at: now };
                any = true;
            }
        }
        any
    }

    #[test]
    fn indexed_scan_preserves_rng_draw_order_of_full_scan() {
        // Many faults spread over a few cores, tested in an interleaved
        // order: the per-core index must consume exactly the same RNG
        // draws as the whole-log scan, leaving both the fault states and
        // the *downstream* RNG stream identical.
        let plan: Vec<(usize, f64)> = (0..24).map(|i| (i % 5, 0.001 * i as f64)).collect();
        let mut indexed = FaultLog::new();
        let mut reference: Vec<Fault> = Vec::new();
        for &(core, at) in &plan {
            indexed.inject(core, at);
            reference.push(Fault::new(core, at));
        }
        indexed.activate_due(1.0);
        for f in &mut reference {
            f.state = FaultState::Latent;
        }
        let r = routine(); // partial coverage: draws actually matter
        let mut rng_a = SimRng::seed_from(42);
        let mut rng_b = SimRng::seed_from(42);
        for step in 0..40 {
            let core = (step * 3) % 5;
            let level = VfLevel((step % 3) as u8);
            let now = 2.0 + step as f64;
            let a = indexed.on_test_complete(core, &r, level, now, &mut rng_a);
            let b = reference_full_scan(&mut reference, core, &r, level, now, &mut rng_b);
            assert_eq!(a, b, "outcome diverged at step {step}");
        }
        assert_eq!(indexed.faults(), reference.as_slice(), "fault states diverged");
        for i in 0..16 {
            assert_eq!(rng_a.next_f64(), rng_b.next_f64(), "RNG stream diverged at draw {i}");
        }
    }

    #[test]
    fn try_with_level_window_rejects_inverted_windows() {
        let err = Fault::try_with_level_window(0, 0.0, VfLevel(3), VfLevel(1)).unwrap_err();
        assert_eq!(err, LevelWindowInverted { from: VfLevel(3), to: VfLevel(1) });
        assert!(err.to_string().contains("level window inverted"));
        assert!(Fault::try_with_level_window(0, 0.0, VfLevel(1), VfLevel(1)).is_ok());
    }

    #[test]
    fn intermittent_faults_dodge_some_observations() {
        // refire 0.0: the fault never manifests, even to a perfect routine.
        let mut log = FaultLog::new();
        log.inject_fault(Fault::new(0, 0.0).with_refire(0.0));
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(7);
        for step in 0..20 {
            assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0 + step as f64, &mut rng));
        }
        assert_eq!(log.latent_count(), 1);
    }

    #[test]
    fn confirm_reproduces_solid_faults_and_never_fires_on_clean_cores() {
        let mut log = FaultLog::new();
        log.inject(2, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(8);
        // Detected by a normal test, then confirmed by a retest.
        assert!(log.on_test_complete(2, &certain_routine(), VfLevel(0), 1.0, &mut rng));
        assert!(log.confirm(2, &certain_routine(), VfLevel(0), 1.5, &mut rng));
        // A fault-free core cannot confirm, no matter the routine or seed.
        assert!(!log.confirm(3, &certain_routine(), VfLevel(0), 1.5, &mut rng));
        assert_eq!(log.detections(), 1, "confirmation is not a new detection");
    }

    #[test]
    fn demote_returns_detected_faults_to_latent_but_keeps_the_occurrence_count() {
        let mut log = FaultLog::new();
        log.inject(1, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(9);
        assert!(log.on_test_complete(1, &certain_routine(), VfLevel(0), 1.0, &mut rng));
        assert_eq!((log.detected_count(), log.detections()), (1, 1));
        log.demote_to_latent(1);
        assert_eq!(log.detected_count(), 0);
        assert_eq!(log.latent_count(), 1);
        assert_eq!(log.detections(), 1, "occurrences survive the demotion");
        // The fault can be re-detected later — a second occurrence.
        assert!(log.on_test_complete(1, &certain_routine(), VfLevel(0), 2.0, &mut rng));
        assert_eq!(log.detections(), 2);
    }

    #[test]
    fn active_fault_queries_respect_time_and_solidity() {
        let mut log = FaultLog::new();
        log.inject(0, 5.0);
        log.inject_fault(Fault::new(1, 0.0).with_refire(0.3));
        log.activate_due(1.0);
        assert!(!log.has_active_fault(0, 1.0), "not yet activated");
        assert!(log.has_active_fault(1, 1.0));
        assert!(!log.has_solid_active_fault(1, 1.0), "intermittent is not solid");
        log.activate_due(6.0);
        assert!(log.has_solid_active_fault(0, 6.0));
        assert_eq!(log.first_inject_at(0), Some(5.0));
        assert_eq!(log.first_inject_at(9), None);
    }

    #[test]
    fn cooled_faults_stop_manifesting_and_probes_track_the_clock() {
        let mut log = FaultLog::new();
        // An intermittent that burns in at t = 5.0.
        log.inject_fault(Fault::new(0, 0.0).with_refire(1.0).with_refire_until(5.0));
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(11);
        // Before the cool-down it manifests to probes (coverage 1).
        assert!(log.probe(0, 1.0, VfLevel(0), 1.0, &mut rng));
        assert_eq!(log.last_refire_at(0), Some(1.0));
        assert_eq!(log.detections(), 0, "probes are not detections");
        assert_eq!(log.detected_count(), 0, "probes do not promote state");
        // After the cool-down it never manifests again, to probes or tests.
        for step in 0..20 {
            let t = 5.0 + step as f64;
            assert!(!log.probe(0, 1.0, VfLevel(0), t, &mut rng));
            assert!(!log.on_test_complete(0, &certain_routine(), VfLevel(0), t, &mut rng));
        }
        assert_eq!(log.last_refire_at(0), Some(1.0), "clock untouched by quiet probes");
        assert_eq!(log.latent_count(), 1);
    }

    #[test]
    fn probes_on_clean_cores_never_manifest() {
        let mut log = FaultLog::new();
        log.inject(2, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(12);
        assert!(!log.probe(5, 1.0, VfLevel(0), 1.0, &mut rng));
        assert_eq!(log.last_refire_at(5), None);
    }

    #[test]
    fn corrupting_overlap_respects_cool_down_and_merges_spans() {
        let mut log = FaultLog::new();
        // Two disjoint corrupting spans on core 0: [1, 2) and [5, 7).
        log.inject_fault(Fault::new(0, 1.0).with_refire_until(2.0));
        log.inject_fault(Fault::new(0, 5.0).with_refire_until(7.0));
        // One eternal fault on core 1.
        log.inject(1, 3.0);
        assert!((log.corrupting_overlap(0, 0.0, 10.0) - 3.0).abs() < 1e-12);
        assert!((log.corrupting_overlap(0, 1.5, 5.5) - 1.0).abs() < 1e-12);
        assert_eq!(log.corrupting_overlap(0, 2.0, 5.0), 0.0);
        assert!((log.corrupting_overlap(1, 0.0, 10.0) - 7.0).abs() < 1e-12);
        assert_eq!(log.corrupting_overlap(9, 0.0, 10.0), 0.0);
        // Overlapping spans merge rather than double-count.
        let mut log = FaultLog::new();
        log.inject_fault(Fault::new(0, 1.0).with_refire_until(4.0));
        log.inject_fault(Fault::new(0, 2.0).with_refire_until(6.0));
        assert!((log.corrupting_overlap(0, 0.0, 10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn already_detected_faults_stay_detected() {
        let mut log = FaultLog::new();
        log.inject(0, 0.0);
        log.activate_due(0.0);
        let mut rng = SimRng::seed_from(5);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 1.0, &mut rng);
        log.on_test_complete(0, &certain_routine(), VfLevel(0), 9.0, &mut rng);
        assert_eq!(log.faults()[0].detection_latency(), Some(1.0));
    }
}
