//! Structured decision telemetry: observer hooks, typed events, sinks.
//!
//! End-of-run aggregates tell you *what* a run produced; they cannot tell
//! you *why* — which epoch denied a test for power, what the headroom was
//! at that instant, which application displaced a session. This module is
//! the telemetry backbone: the control loop emits one [`SimEvent`] per
//! decision through an [`Observer`], and sinks turn the stream into
//! whatever a consumer needs:
//!
//! * [`NullObserver`] — the default; every hook compiles to a no-op so
//!   the hot path stays allocation-free.
//! * [`EventLog`] — a bounded in-memory sink returned on the report.
//!   Per-kind counts stay **exact** even when the sample buffer is full,
//!   so aggregate invariants can always be checked against the report.
//! * [`JsonlWriter`] — streams one JSON object per event to any
//!   [`std::io::Write`] (files, pipes, test buffers).
//! * [`CounterRegistry`] — named counters plus fixed-bucket
//!   [`Histogram`]s with deterministic iteration order, for summaries.
//!
//! Events are plain `Copy` data: emitting one never touches the heap, and
//! JSON is rendered only inside sinks that asked for it.

use crate::stats::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

/// Why an SBST session was torn down before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The mapper claimed the core for an arriving application.
    MappedOver,
    /// A task of the core's owning application became ready mid-session.
    TaskPreempted,
}

impl AbortReason {
    /// Stable lower-snake name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::MappedOver => "mapped_over",
            AbortReason::TaskPreempted => "task_preempted",
        }
    }
}

/// One structured decision made by the epoch control loop or resolved in
/// the event plane. Stack-only (`Copy`): constructing and emitting an
/// event allocates nothing.
///
/// Times are *not* part of the payload — every observer hook receives the
/// event's timestamp separately, so sinks that do not need it pay nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// An application entered the pending queue.
    AppArrived {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
    },
    /// An application can never fit the platform and was dropped.
    AppRejected {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
    },
    /// An application was admitted and placed.
    AppMapped {
        /// Application id.
        app: u64,
        /// Task count of its graph.
        tasks: u32,
        /// Dense node index of task 0's core.
        first_node: u32,
        /// Bounding-box width of the mapping, in mesh columns.
        region_w: u16,
        /// Bounding-box height of the mapping, in mesh rows.
        region_h: u16,
        /// DVFS level the app was admitted at.
        level: u8,
        /// Communication-weighted hop cost of the placement.
        hop_cost: f64,
        /// Seconds the app waited in the pending queue.
        queue_wait: f64,
        /// Power headroom left *after* the app's reservation, watts.
        headroom: f64,
    },
    /// An admitted application finished its last task.
    AppCompleted {
        /// Application id.
        app: u64,
        /// Arrival-to-completion latency, seconds.
        latency: f64,
    },
    /// An SBST session started.
    TestLaunched {
        /// Core under test.
        core: u32,
        /// Routine id.
        routine: u16,
        /// DVFS level tested at.
        level: u8,
        /// Reserved session power, watts.
        power: f64,
        /// Headroom left after the reservation, watts.
        headroom: f64,
    },
    /// The scheduler wanted to test a core but the headroom was exhausted.
    TestDeniedPower {
        /// Core that was denied.
        core: u32,
        /// Watts the session would have needed.
        needed: f64,
        /// Watts that were actually left at the denial.
        headroom: f64,
    },
    /// A session was torn down before completing.
    TestAborted {
        /// Core whose session died.
        core: u32,
        /// What displaced it.
        reason: AbortReason,
    },
    /// A session ran to completion.
    TestCompleted {
        /// Core that was tested.
        core: u32,
        /// Routine that completed.
        routine: u16,
        /// DVFS level tested at.
        level: u8,
        /// DVFS levels on this core with ≥ 1 completed test afterwards.
        covered_levels: u8,
        /// Seconds since this core's previous completion (< 0 = first).
        interval: f64,
    },
    /// The governor moved the admission cap.
    CapAdjusted {
        /// New cap, watts.
        cap: f64,
        /// Last epoch's measured power, watts.
        measured: f64,
        /// Headroom under the new cap, watts.
        headroom: f64,
        /// Live power reservations at that instant.
        reservations: u32,
    },
    /// A core's operating level changed (−1 = power-gated).
    DvfsTransition {
        /// The core.
        core: u32,
        /// Previous ladder index, −1 when the core was off.
        from: i16,
        /// New ladder index, −1 when the core turns off.
        to: i16,
    },
    /// An injected fault became present (latent) on a core.
    FaultActivated {
        /// The faulty core.
        core: u32,
    },
    /// A completed test routine caught a latent fault.
    FaultDetected {
        /// The faulty core.
        core: u32,
        /// Injection-to-detection latency, seconds.
        latency: f64,
    },
    /// A detection moved a core into the `Suspect` health state; K
    /// confirmation retests were queued at the detecting V/f level.
    CoreSuspected {
        /// The suspect core.
        core: u32,
        /// DVFS ladder index the detection happened at.
        level: u8,
    },
    /// Confirmation retests upheld the detection: the core is withdrawn
    /// from mapping and power-gated for the rest of the run.
    CoreQuarantined {
        /// The quarantined core.
        core: u32,
        /// Confirmation retests that completed before the verdict.
        retests: u32,
    },
    /// Confirmation retests failed to reproduce the detection; the core
    /// returns to `Healthy`.
    CoreCleared {
        /// The cleared core.
        core: u32,
        /// Confirmation retests that completed before the verdict.
        retests: u32,
    },
    /// A quarantine killed an application outright (`Abort` policy).
    AppAborted {
        /// Application id.
        app: u64,
        /// The quarantined core that carried it.
        core: u32,
    },
    /// A quarantine sent an application back to the pending queue for a
    /// fresh placement (`RestartElsewhere` policy).
    AppRestarted {
        /// Application id.
        app: u64,
        /// The quarantined core that carried it.
        core: u32,
    },
    /// A quarantine remapped an application in place onto healthy nodes
    /// (`MigrateRegion` policy).
    AppMigrated {
        /// Application id.
        app: u64,
        /// The quarantined core it was moved off.
        core: u32,
        /// Tasks whose placement changed.
        moved_tasks: u32,
        /// State-transfer delay charged to the app, seconds.
        delay: f64,
    },
}

impl SimEvent {
    /// Number of event kinds (array size for exact per-kind counters).
    pub const KIND_COUNT: usize = 18;

    /// All kind names, in [`SimEvent::kind_index`] order.
    pub const KINDS: [&'static str; Self::KIND_COUNT] = [
        "AppArrived",
        "AppRejected",
        "AppMapped",
        "AppCompleted",
        "TestLaunched",
        "TestDeniedPower",
        "TestAborted",
        "TestCompleted",
        "CapAdjusted",
        "DvfsTransition",
        "FaultActivated",
        "FaultDetected",
        "CoreSuspected",
        "CoreQuarantined",
        "CoreCleared",
        "AppAborted",
        "AppRestarted",
        "AppMigrated",
    ];

    /// Dense index of this event's kind, for fixed-size counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            SimEvent::AppArrived { .. } => 0,
            SimEvent::AppRejected { .. } => 1,
            SimEvent::AppMapped { .. } => 2,
            SimEvent::AppCompleted { .. } => 3,
            SimEvent::TestLaunched { .. } => 4,
            SimEvent::TestDeniedPower { .. } => 5,
            SimEvent::TestAborted { .. } => 6,
            SimEvent::TestCompleted { .. } => 7,
            SimEvent::CapAdjusted { .. } => 8,
            SimEvent::DvfsTransition { .. } => 9,
            SimEvent::FaultActivated { .. } => 10,
            SimEvent::FaultDetected { .. } => 11,
            SimEvent::CoreSuspected { .. } => 12,
            SimEvent::CoreQuarantined { .. } => 13,
            SimEvent::CoreCleared { .. } => 14,
            SimEvent::AppAborted { .. } => 15,
            SimEvent::AppRestarted { .. } => 16,
            SimEvent::AppMigrated { .. } => 17,
        }
    }

    /// The event's kind name (stable, used as the JSON `kind` field).
    pub fn kind(&self) -> &'static str {
        Self::KINDS[self.kind_index()]
    }

    /// Appends this event as one JSON object (no trailing newline) to
    /// `out`. Floats use Rust's shortest-round-trip `Display`, which is
    /// deterministic, so identical runs render byte-identical JSON.
    pub fn write_json(&self, t: f64, out: &mut String) {
        let kind = self.kind();
        let _ = write!(out, "{{\"t\":{t},\"kind\":\"{kind}\"");
        match *self {
            SimEvent::AppArrived { app, tasks } | SimEvent::AppRejected { app, tasks } => {
                let _ = write!(out, ",\"app\":{app},\"tasks\":{tasks}");
            }
            SimEvent::AppMapped {
                app,
                tasks,
                first_node,
                region_w,
                region_h,
                level,
                hop_cost,
                queue_wait,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"tasks\":{tasks},\"first_node\":{first_node},\
                     \"region_w\":{region_w},\"region_h\":{region_h},\"level\":{level},\
                     \"hop_cost\":{hop_cost},\"queue_wait\":{queue_wait},\"headroom\":{headroom}"
                );
            }
            SimEvent::AppCompleted { app, latency } => {
                let _ = write!(out, ",\"app\":{app},\"latency\":{latency}");
            }
            SimEvent::TestLaunched {
                core,
                routine,
                level,
                power,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"routine\":{routine},\"level\":{level},\
                     \"power\":{power},\"headroom\":{headroom}"
                );
            }
            SimEvent::TestDeniedPower {
                core,
                needed,
                headroom,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"needed\":{needed},\"headroom\":{headroom}"
                );
            }
            SimEvent::TestAborted { core, reason } => {
                let _ = write!(out, ",\"core\":{core},\"reason\":\"{}\"", reason.as_str());
            }
            SimEvent::TestCompleted {
                core,
                routine,
                level,
                covered_levels,
                interval,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"routine\":{routine},\"level\":{level},\
                     \"covered_levels\":{covered_levels},\"interval\":{interval}"
                );
            }
            SimEvent::CapAdjusted {
                cap,
                measured,
                headroom,
                reservations,
            } => {
                let _ = write!(
                    out,
                    ",\"cap\":{cap},\"measured\":{measured},\"headroom\":{headroom},\
                     \"reservations\":{reservations}"
                );
            }
            SimEvent::DvfsTransition { core, from, to } => {
                let _ = write!(out, ",\"core\":{core},\"from\":{from},\"to\":{to}");
            }
            SimEvent::FaultActivated { core } => {
                let _ = write!(out, ",\"core\":{core}");
            }
            SimEvent::FaultDetected { core, latency } => {
                let _ = write!(out, ",\"core\":{core},\"latency\":{latency}");
            }
            SimEvent::CoreSuspected { core, level } => {
                let _ = write!(out, ",\"core\":{core},\"level\":{level}");
            }
            SimEvent::CoreQuarantined { core, retests }
            | SimEvent::CoreCleared { core, retests } => {
                let _ = write!(out, ",\"core\":{core},\"retests\":{retests}");
            }
            SimEvent::AppAborted { app, core } | SimEvent::AppRestarted { app, core } => {
                let _ = write!(out, ",\"app\":{app},\"core\":{core}");
            }
            SimEvent::AppMigrated {
                app,
                core,
                moved_tasks,
                delay,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"core\":{core},\"moved_tasks\":{moved_tasks},\
                     \"delay\":{delay}"
                );
            }
        }
        out.push('}');
    }
}

/// A decision-event sink. The control loop calls [`Observer::on_event`]
/// once per decision; the default implementation of every other method is
/// a no-op so trivial sinks stay trivial.
pub trait Observer {
    /// Receives one event emitted at simulated time `t` (seconds).
    fn on_event(&mut self, t: f64, ev: &SimEvent);

    /// Hands over an [`EventLog`] if this observer accumulated one
    /// (called once, when a run finalizes its report).
    fn take_log(&mut self) -> Option<EventLog> {
        None
    }
}

/// The default observer: drops every event. Keeps the epoch control loop
/// free of observer overhead — the counting-allocator test in
/// `crates/bench/tests/map_context_allocs.rs` holds the emission path to
/// zero heap allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_event(&mut self, _t: f64, _ev: &SimEvent) {}
}

/// A bounded in-memory event sink.
///
/// Stores up to `capacity` timestamped events; further events are counted
/// but not stored (`dropped`). Per-kind counts are maintained for **all**
/// events, stored or dropped, so count-based invariants (`TestLaunched ==
/// TestCompleted + TestAborted + in-flight`, …) reconcile exactly with
/// the report even when the sample buffer saturates.
///
/// # Examples
///
/// ```
/// use manytest_sim::obs::{EventLog, Observer, SimEvent};
///
/// let mut log = EventLog::bounded(16);
/// log.on_event(0.5, &SimEvent::FaultActivated { core: 3 });
/// assert_eq!(log.count("FaultActivated"), 1);
/// assert!(log.to_jsonl().contains("\"kind\":\"FaultActivated\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<(f64, SimEvent)>,
    capacity: usize,
    dropped: u64,
    kind_counts: [u64; SimEvent::KIND_COUNT],
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            events: Vec::new(),
            capacity: usize::MAX,
            dropped: 0,
            kind_counts: [0; SimEvent::KIND_COUNT],
        }
    }
}

impl EventLog {
    /// An unbounded log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that stores at most `capacity` events (but counts them all).
    pub fn bounded(capacity: usize) -> Self {
        EventLog {
            capacity,
            ..Self::default()
        }
    }

    /// Records one event.
    pub fn push(&mut self, t: f64, ev: SimEvent) {
        self.kind_counts[ev.kind_index()] += 1;
        if self.events.len() < self.capacity {
            self.events.push((t, ev));
        } else {
            self.dropped += 1;
        }
    }

    /// The stored `(t, event)` samples, in emission order.
    pub fn events(&self) -> &[(f64, SimEvent)] {
        &self.events
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events observed but not stored because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact count of events of the named kind (stored *and* dropped).
    /// Unknown names count zero.
    pub fn count(&self, kind: &str) -> u64 {
        SimEvent::KINDS
            .iter()
            .position(|&k| k == kind)
            .map_or(0, |i| self.kind_counts[i])
    }

    /// `(kind, exact count)` pairs for every kind, in stable order.
    pub fn kind_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        SimEvent::KINDS.iter().zip(self.kind_counts).map(|(&k, c)| (k, c))
    }

    /// Total events observed (stored and dropped).
    pub fn total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Renders the stored samples as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for (t, ev) in &self.events {
            ev.write_json(*t, &mut out);
            out.push('\n');
        }
        out
    }

    /// Streams the stored samples as JSON Lines to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the writer.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        for (t, ev) in &self.events {
            line.clear();
            ev.write_json(*t, &mut line);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Renders the stored samples as a two-column CSV (`t,kind`), a
    /// compact form for spreadsheet-side counting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,kind\n");
        for (t, ev) in &self.events {
            let _ = writeln!(out, "{t},{}", ev.kind());
        }
        out
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, t: f64, ev: &SimEvent) {
        self.push(t, *ev);
    }

    fn take_log(&mut self) -> Option<EventLog> {
        Some(std::mem::take(self))
    }
}

/// Streams each event as one JSON line into any writer the moment it is
/// emitted (no buffering of the run in memory). The first I/O error is
/// remembered and surfaced by [`JsonlWriter::finish`].
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write> {
    inner: W,
    line: String,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        JsonlWriter {
            inner,
            line: String::with_capacity(128),
            error: None,
        }
    }

    /// Unwraps the inner writer, reporting any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered while streaming.
    pub fn finish(self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.inner),
        }
    }
}

impl<W: io::Write> Observer for JsonlWriter<W> {
    fn on_event(&mut self, t: f64, ev: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        ev.write_json(t, &mut self.line);
        self.line.push('\n');
        if let Err(e) = self.inner.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Named counters plus named fixed-bucket histograms with deterministic
/// (sorted) iteration order. As an [`Observer`] it counts events by kind;
/// richer consumers record derived quantities through
/// [`CounterRegistry::record`].
///
/// # Examples
///
/// ```
/// use manytest_sim::obs::CounterRegistry;
///
/// let mut reg = CounterRegistry::new();
/// reg.declare_histogram("queue_wait_ms", 0.0, 10.0, 5);
/// reg.record("queue_wait_ms", 2.5);
/// reg.incr("launches");
/// assert_eq!(reg.counter("launches"), 1);
/// assert_eq!(reg.histogram("queue_wait_ms").unwrap().total(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to the named counter (creating it at 0).
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Declares (or replaces) a histogram spanning `[lo, hi)` with `bins`
    /// equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` (see [`Histogram::new`]).
    pub fn declare_histogram(&mut self, name: &str, lo: f64, hi: f64, bins: usize) {
        self.histograms
            .insert(name.to_owned(), Histogram::new(lo, hi, bins));
    }

    /// Records one sample into a declared histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram was never declared — an undeclared record
    /// is a telemetry wiring bug, not a runtime condition.
    pub fn record(&mut self, name: &str, x: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram '{name}' was never declared"))
            .push(x);
    }

    /// The named histogram, if declared.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Plain-text summary: one `name = value` line per counter, then one
    /// block per histogram with per-bucket bars. Deterministic order.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{name}: {} samples ({} under, {} over)",
                h.total(),
                h.underflow(),
                h.overflow()
            );
            let peak = h.bins().iter().copied().max().unwrap_or(0).max(1);
            for (center, count) in h.centers() {
                let bar = "#".repeat((count * 40 / peak) as usize);
                let _ = writeln!(out, "  {center:>10.3} | {count:>6} {bar}");
            }
        }
        out
    }
}

impl Observer for CounterRegistry {
    fn on_event(&mut self, _t: f64, ev: &SimEvent) {
        self.incr(ev.kind());
    }
}

/// Counts `"kind"` occurrences per line of a JSON-Lines event stream
/// (the inverse of [`EventLog::to_jsonl`], good enough for validation
/// without a JSON parser — the workspace deliberately has none).
pub fn jsonl_kind_counts(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for line in text.lines() {
        let Some(pos) = line.find("\"kind\":\"") else {
            continue;
        };
        let rest = &line[pos + 8..];
        let Some(end) = rest.find('"') else { continue };
        *counts.entry(rest[..end].to_owned()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(f64, SimEvent)> {
        vec![
            (0.001, SimEvent::AppArrived { app: 0, tasks: 4 }),
            (
                0.002,
                SimEvent::AppMapped {
                    app: 0,
                    tasks: 4,
                    first_node: 17,
                    region_w: 2,
                    region_h: 2,
                    level: 4,
                    hop_cost: 6.0,
                    queue_wait: 0.001,
                    headroom: 12.5,
                },
            ),
            (
                0.003,
                SimEvent::TestLaunched {
                    core: 3,
                    routine: 1,
                    level: 0,
                    power: 0.25,
                    headroom: 3.5,
                },
            ),
            (
                0.004,
                SimEvent::TestAborted {
                    core: 3,
                    reason: AbortReason::MappedOver,
                },
            ),
            (0.005, SimEvent::FaultDetected { core: 3, latency: 0.004 }),
            (0.006, SimEvent::CoreSuspected { core: 3, level: 2 }),
            (0.007, SimEvent::CoreQuarantined { core: 3, retests: 3 }),
            (0.008, SimEvent::CoreCleared { core: 5, retests: 3 }),
            (0.009, SimEvent::AppAborted { app: 1, core: 3 }),
            (0.010, SimEvent::AppRestarted { app: 2, core: 3 }),
            (
                0.011,
                SimEvent::AppMigrated {
                    app: 3,
                    core: 3,
                    moved_tasks: 4,
                    delay: 0.0002,
                },
            ),
        ]
    }

    #[test]
    fn kind_index_matches_kind_table() {
        for (t, ev) in sample_events() {
            assert_eq!(SimEvent::KINDS[ev.kind_index()], ev.kind(), "at t={t}");
        }
    }

    #[test]
    fn json_lines_carry_kind_and_fields() {
        let mut log = EventLog::new();
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 11);
        assert!(jsonl.contains("\"kind\":\"AppMapped\""));
        assert!(jsonl.contains("\"region_w\":2"));
        assert!(jsonl.contains("\"reason\":\"mapped_over\""));
        assert!(jsonl.contains("\"kind\":\"CoreQuarantined\""));
        assert!(jsonl.contains("\"retests\":3"));
        assert!(jsonl.contains("\"moved_tasks\":4"));
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"t\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn bounded_log_keeps_exact_counts_while_dropping_samples() {
        let mut log = EventLog::bounded(2);
        for _ in 0..10 {
            log.push(1.0, SimEvent::FaultActivated { core: 0 });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 8);
        assert_eq!(log.count("FaultActivated"), 10);
        assert_eq!(log.total(), 10);
    }

    #[test]
    fn jsonl_and_csv_round_trip_the_kind_counts() {
        let mut log = EventLog::new();
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        let from_jsonl = jsonl_kind_counts(&log.to_jsonl());
        // CSV rows carry the same kinds; count them independently.
        let csv = log.to_csv();
        let mut from_csv: BTreeMap<String, u64> = BTreeMap::new();
        for line in csv.lines().skip(1) {
            let kind = line.split(',').nth(1).expect("t,kind row");
            *from_csv.entry(kind.to_owned()).or_insert(0) += 1;
        }
        assert_eq!(from_jsonl, from_csv);
        for (kind, n) in log.kind_counts() {
            assert_eq!(from_jsonl.get(kind).copied().unwrap_or(0), n, "kind {kind}");
        }
    }

    #[test]
    fn jsonl_writer_streams_identical_bytes() {
        let mut log = EventLog::new();
        let mut sink = JsonlWriter::new(Vec::new());
        for (t, ev) in sample_events() {
            log.push(t, ev);
            sink.on_event(t, &ev);
        }
        let streamed = sink.finish().expect("vec never fails");
        assert_eq!(String::from_utf8(streamed).unwrap(), log.to_jsonl());
    }

    #[test]
    fn take_log_drains_the_observer() {
        let mut log = EventLog::new();
        log.on_event(1.0, &SimEvent::FaultActivated { core: 1 });
        let taken = log.take_log().expect("event log yields itself");
        assert_eq!(taken.len(), 1);
        assert_eq!(log.len(), 0, "taking must leave an empty log behind");
    }

    #[test]
    fn registry_counts_events_and_renders_summary() {
        let mut reg = CounterRegistry::new();
        for (t, ev) in sample_events() {
            reg.on_event(t, &ev);
        }
        assert_eq!(reg.counter("AppArrived"), 1);
        assert_eq!(reg.counter("nonexistent"), 0);
        reg.declare_histogram("wait_ms", 0.0, 4.0, 4);
        reg.record("wait_ms", 1.0);
        reg.record("wait_ms", 9.0); // overflow
        let s = reg.summary();
        assert!(s.contains("AppArrived = 1"));
        assert!(s.contains("wait_ms: 2 samples (0 under, 1 over)"));
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn recording_into_undeclared_histogram_panics() {
        CounterRegistry::new().record("missing", 1.0);
    }

    #[test]
    fn null_observer_is_a_noop() {
        let mut obs = NullObserver;
        obs.on_event(0.0, &SimEvent::FaultActivated { core: 0 });
        assert!(obs.take_log().is_none());
    }

    #[test]
    fn kind_counts_survive_when_only_counts_remain() {
        // A log with capacity 0 stores nothing but still reconciles.
        let mut log = EventLog::bounded(0);
        for (t, ev) in sample_events() {
            log.push(t, ev);
        }
        assert!(log.is_empty());
        assert_eq!(log.total(), 11);
        assert_eq!(log.count("TestLaunched"), 1);
        assert_eq!(log.count("CoreSuspected"), 1);
    }
}
