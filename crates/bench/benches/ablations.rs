//! Criterion bench timing the A1–A3 ablation studies at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{a1_intrusiveness, a2_criticality_weights, a3_abort_overhead, a4_level_rotation, a5_thermal_model, a6_contention, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("a1_intrusiveness", |b| {
        b.iter(|| std::hint::black_box(a1_intrusiveness(Scale::Quick, 1)))
    });
    group.bench_function("a2_criticality_weights", |b| {
        b.iter(|| std::hint::black_box(a2_criticality_weights(Scale::Quick, 1)))
    });
    group.bench_function("a3_abort_overhead", |b| {
        b.iter(|| std::hint::black_box(a3_abort_overhead(Scale::Quick, 1)))
    });
    group.bench_function("a4_level_rotation", |b| {
        b.iter(|| std::hint::black_box(a4_level_rotation(Scale::Quick, 1)))
    });
    group.bench_function("a5_thermal_model", |b| {
        b.iter(|| std::hint::black_box(a5_thermal_model(Scale::Quick, 1)))
    });
    group.bench_function("a6_contention", |b| {
        b.iter(|| std::hint::black_box(a6_contention(Scale::Quick, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
