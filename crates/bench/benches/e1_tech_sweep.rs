//! Criterion bench regenerating E1 (throughput penalty vs technology node) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e1_tech_sweep, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_tech_sweep");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e1_tech_sweep(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
