//! Link-utilisation accounting.
//!
//! The mapper's quality shows up as congestion: contiguous mappings keep
//! traffic local and link loads low. [`TrafficMatrix`] charges each hop of a
//! route with the bits it carries and reports per-link and aggregate load
//! statistics, which the evaluation uses as the congestion proxy.

use crate::coord::Coord;
use crate::routing::{xy_route, Direction};
use crate::topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// Accumulated bits carried by every directed link of a mesh.
///
/// # Examples
///
/// ```
/// use manytest_noc::prelude::*;
///
/// let mesh = Mesh2D::new(4, 4);
/// let mut tm = TrafficMatrix::new(mesh);
/// tm.charge_route(Coord::new(0, 0), Coord::new(3, 0), 1_000.0);
/// assert_eq!(tm.total_bits(), 3_000.0); // three hops
/// assert!(tm.max_link_bits() >= 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    mesh: Mesh2D,
    // One slot per (node, direction): index = node_id * 4 + dir.
    link_bits: Vec<f64>,
    messages: u64,
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::West => 0,
        Direction::East => 1,
        Direction::South => 2,
        Direction::North => 3,
    }
}

impl TrafficMatrix {
    /// Creates an empty accounting matrix for `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        TrafficMatrix {
            mesh,
            link_bits: vec![0.0; mesh.node_count() * 4],
            messages: 0,
        }
    }

    /// The mesh being accounted.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Charges the links of the XY route from `src` to `dst` with `bits`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the mesh or `bits` is negative.
    pub fn charge_route(&mut self, src: Coord, dst: Coord, bits: f64) {
        assert!(self.mesh.contains(src) && self.mesh.contains(dst), "endpoint outside mesh");
        assert!(bits >= 0.0, "bits must be non-negative");
        for hop in xy_route(src, dst) {
            let idx = self.mesh.node_id(hop.from).index() * 4 + dir_index(hop.dir);
            self.link_bits[idx] += bits;
        }
        self.messages += 1;
    }

    /// Bits accumulated on the link leaving `from` in direction `dir`.
    pub fn link_bits(&self, from: Coord, dir: Direction) -> f64 {
        self.link_bits[self.mesh.node_id(from).index() * 4 + dir_index(dir)]
    }

    /// Sum of bits over all links (total bit-hops).
    pub fn total_bits(&self) -> f64 {
        self.link_bits.iter().sum()
    }

    /// The most heavily loaded link's bits (0 for an empty matrix).
    pub fn max_link_bits(&self) -> f64 {
        self.link_bits.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Mean load over links that carried any traffic (0 if none did).
    pub fn mean_active_link_bits(&self) -> f64 {
        let active: Vec<f64> = self
            .link_bits
            .iter()
            .copied()
            .filter(|&b| b > 0.0)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Number of messages charged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Resets all accumulated traffic.
    pub fn clear(&mut self) {
        self.link_bits.iter_mut().for_each(|b| *b = 0.0);
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hop_charges_one_link() {
        let mesh = Mesh2D::new(3, 3);
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(Coord::new(0, 0), Coord::new(1, 0), 64.0);
        assert_eq!(tm.link_bits(Coord::new(0, 0), Direction::East), 64.0);
        assert_eq!(tm.total_bits(), 64.0);
        assert_eq!(tm.messages(), 1);
    }

    #[test]
    fn self_message_charges_nothing() {
        let mesh = Mesh2D::new(3, 3);
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(Coord::new(1, 1), Coord::new(1, 1), 512.0);
        assert_eq!(tm.total_bits(), 0.0);
        assert_eq!(tm.messages(), 1);
    }

    #[test]
    fn total_bits_is_bits_times_hops() {
        let mesh = Mesh2D::new(6, 6);
        let mut tm = TrafficMatrix::new(mesh);
        let src = Coord::new(0, 0);
        let dst = Coord::new(4, 3);
        tm.charge_route(src, dst, 100.0);
        assert_eq!(tm.total_bits(), 100.0 * src.manhattan(dst) as f64);
    }

    #[test]
    fn overlapping_routes_accumulate() {
        let mesh = Mesh2D::new(4, 1);
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(Coord::new(0, 0), Coord::new(3, 0), 10.0);
        tm.charge_route(Coord::new(1, 0), Coord::new(3, 0), 10.0);
        // Link 1→2 East carries both.
        assert_eq!(tm.link_bits(Coord::new(1, 0), Direction::East), 20.0);
        assert_eq!(tm.max_link_bits(), 20.0);
    }

    #[test]
    fn mean_active_ignores_idle_links() {
        let mesh = Mesh2D::new(4, 4);
        let mut tm = TrafficMatrix::new(mesh);
        assert_eq!(tm.mean_active_link_bits(), 0.0);
        tm.charge_route(Coord::new(0, 0), Coord::new(2, 0), 30.0);
        assert_eq!(tm.mean_active_link_bits(), 30.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mesh = Mesh2D::new(3, 3);
        let mut tm = TrafficMatrix::new(mesh);
        tm.charge_route(Coord::new(0, 0), Coord::new(2, 2), 5.0);
        tm.clear();
        assert_eq!(tm.total_bits(), 0.0);
        assert_eq!(tm.messages(), 0);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn charge_outside_panics() {
        let mesh = Mesh2D::new(2, 2);
        TrafficMatrix::new(mesh).charge_route(Coord::new(0, 0), Coord::new(5, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bits_panics() {
        let mesh = Mesh2D::new(2, 2);
        TrafficMatrix::new(mesh).charge_route(Coord::new(0, 0), Coord::new(1, 0), -1.0);
    }
}
