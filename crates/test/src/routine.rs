//! The SBST routine library.
//!
//! A software-based self-test routine is an instruction sequence targeting
//! one functional block. Published SBST suites run from hundreds of kilo-
//! to a few mega-instructions per block (milliseconds of core time) with
//! structural fault coverages around 90–95 %. The library below models a
//! five-block suite; a *full pass* over a core means running every routine
//! once.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a routine in its [`RoutineLibrary`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RoutineId(pub u16);

impl RoutineId {
    /// The id as a vector index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One SBST routine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestRoutine {
    /// Functional block the routine exercises.
    pub name: String,
    /// Instruction count of the routine.
    pub instructions: u64,
    /// Switching activity while the routine runs (higher than workload).
    pub activity: f64,
    /// Structural fault coverage of the targeted block, in `[0, 1]`.
    pub coverage: f64,
    /// Probability that a completed run reports a fault on a *healthy*
    /// core — signature aliasing, marginal timing at the test V/f point,
    /// sensor noise. Zero (the default) models an ideal routine; nonzero
    /// values exercise the confirmation-retest path.
    pub false_positive_rate: f64,
}

impl TestRoutine {
    /// Creates a routine.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero, or `activity`/`coverage` are
    /// outside `[0, 1]`.
    pub fn new(name: impl Into<String>, instructions: u64, activity: f64, coverage: f64) -> Self {
        assert!(instructions > 0, "routine must execute instructions");
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0,1]"
        );
        TestRoutine {
            name: name.into(),
            instructions,
            activity,
            coverage,
            false_positive_rate: 0.0,
        }
    }

    /// Sets the false-positive rate (see the field doc).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    pub fn with_false_positive_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "false-positive rate must be in [0,1]"
        );
        self.false_positive_rate = rate;
        self
    }

    /// Wall time of the routine on a core running at `frequency` Hz with
    /// the given instructions-per-cycle, in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless both `frequency` and `ipc` are strictly positive.
    pub fn duration(&self, frequency: f64, ipc: f64) -> f64 {
        assert!(frequency > 0.0 && ipc > 0.0, "frequency and IPC must be positive");
        self.instructions as f64 / (frequency * ipc)
    }
}

/// An ordered set of routines; a full pass runs them all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutineLibrary {
    routines: Vec<TestRoutine>,
}

impl RoutineLibrary {
    /// The five-block suite used throughout the evaluation: ALU, FPU,
    /// load/store unit, register file and branch/control logic. Routine
    /// lengths put one session at roughly 0.7–3 ms of core time depending
    /// on the DVFS level — the millisecond scale published SBST suites
    /// take, and long enough to span control epochs (which is what makes
    /// testing *cost* something the scheduler must manage).
    pub fn standard() -> Self {
        RoutineLibrary {
            routines: vec![
                TestRoutine::new("alu", 1_440_000, 0.85, 0.95),
                TestRoutine::new("fpu", 2_400_000, 0.90, 0.92),
                TestRoutine::new("lsu", 1_800_000, 0.75, 0.90),
                TestRoutine::new("regfile", 960_000, 0.70, 0.97),
                TestRoutine::new("control", 1_200_000, 0.80, 0.88),
            ],
        }
    }

    /// Builds a library from explicit routines.
    ///
    /// # Panics
    ///
    /// Panics if `routines` is empty.
    pub fn from_routines(routines: Vec<TestRoutine>) -> Self {
        assert!(!routines.is_empty(), "library needs at least one routine");
        RoutineLibrary { routines }
    }

    /// Number of routines (= routines per full pass).
    pub fn len(&self) -> usize {
        self.routines.len()
    }

    /// A library is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The routine with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn routine(&self, id: RoutineId) -> &TestRoutine {
        &self.routines[id.index()]
    }

    /// All routines in pass order.
    pub fn iter(&self) -> impl Iterator<Item = (RoutineId, &TestRoutine)> {
        self.routines
            .iter()
            .enumerate()
            .map(|(i, r)| (RoutineId(i as u16), r))
    }

    /// The routine after `id` in the rotation (wraps to the first).
    pub fn next_in_rotation(&self, id: RoutineId) -> RoutineId {
        RoutineId(((id.0 as usize + 1) % self.routines.len()) as u16)
    }

    /// Total instruction volume of one full pass.
    pub fn pass_instructions(&self) -> u64 {
        self.routines.iter().map(|r| r.instructions).sum()
    }

    /// Returns the library with every routine's false-positive rate set
    /// to `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    pub fn with_false_positive_rate(mut self, rate: f64) -> Self {
        self.routines = self
            .routines
            .into_iter()
            .map(|r| r.with_false_positive_rate(rate))
            .collect();
        self
    }

    /// Highest activity factor over the library (worst-case test power).
    pub fn peak_activity(&self) -> f64 {
        self.routines
            .iter()
            .map(|r| r.activity)
            .fold(0.0, f64::max)
    }
}

impl Default for RoutineLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_shape() {
        let lib = RoutineLibrary::standard();
        assert_eq!(lib.len(), 5);
        assert_eq!(lib.pass_instructions(), 7_800_000);
        assert!(lib.peak_activity() >= 0.9);
    }

    #[test]
    fn duration_scales_inversely_with_frequency() {
        let r = TestRoutine::new("x", 1_000_000, 0.8, 0.9);
        let slow = r.duration(1.0e9, 1.0);
        let fast = r.duration(2.0e9, 1.0);
        assert!((slow - 2.0 * fast).abs() < 1e-12);
        assert!((slow - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn duration_scales_inversely_with_ipc() {
        let r = TestRoutine::new("x", 1_000_000, 0.8, 0.9);
        assert!(r.duration(1.0e9, 2.0) < r.duration(1.0e9, 1.0));
    }

    #[test]
    fn rotation_wraps() {
        let lib = RoutineLibrary::standard();
        let last = RoutineId((lib.len() - 1) as u16);
        assert_eq!(lib.next_in_rotation(last), RoutineId(0));
        assert_eq!(lib.next_in_rotation(RoutineId(0)), RoutineId(1));
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let lib = RoutineLibrary::standard();
        let ids: Vec<RoutineId> = lib.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, (0..5).map(RoutineId).collect::<Vec<_>>());
    }

    #[test]
    fn routines_have_test_grade_activity() {
        // SBST routines toggle more than typical workload (α ≈ 0.5).
        for (_, r) in RoutineLibrary::standard().iter() {
            assert!(r.activity >= 0.7, "{} activity too low", r.name);
            assert!(r.coverage >= 0.85, "{} coverage too low", r.name);
        }
    }

    #[test]
    #[should_panic(expected = "instructions")]
    fn zero_instruction_routine_panics() {
        TestRoutine::new("bad", 0, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn invalid_coverage_panics() {
        TestRoutine::new("bad", 10, 0.5, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one routine")]
    fn empty_library_panics() {
        RoutineLibrary::from_routines(vec![]);
    }

    #[test]
    fn display_id() {
        assert_eq!(RoutineId(3).to_string(), "r3");
    }

    #[test]
    fn false_positive_rate_defaults_to_zero_and_applies_library_wide() {
        let lib = RoutineLibrary::standard();
        for (_, r) in lib.iter() {
            assert_eq!(r.false_positive_rate, 0.0);
        }
        let noisy = lib.with_false_positive_rate(0.02);
        for (_, r) in noisy.iter() {
            assert_eq!(r.false_positive_rate, 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "false-positive rate")]
    fn invalid_false_positive_rate_panics() {
        TestRoutine::new("x", 10, 0.5, 0.5).with_false_positive_rate(1.5);
    }
}
