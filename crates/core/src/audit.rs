//! Consistency checks between captured telemetry and report aggregates.
//!
//! Every decision the control loop makes is double-entried: once as a
//! structured [`manytest_sim::SimEvent`] and once in the aggregate
//! counters the report is built from. [`validate_events`] reconciles the
//! two — if a count diverges, either an emission point is missing/doubled
//! or an aggregate is wrong, and both are bugs worth failing a CI run
//! over. The event log keeps per-kind counts exact even when its sample
//! buffer saturates, so these invariants hold at any capture capacity.

use crate::metrics::Report;
use std::fmt::Write as _;

/// Checks every event-count invariant against the report's aggregates.
///
/// Invariants (all exact equalities):
///
/// * `TestLaunched == tests_completed + tests_aborted + tests_in_flight`
/// * `TestCompleted == tests_completed`, `TestAborted == tests_aborted`
/// * `TestDeniedPower == tests_denied_power`
/// * `AppArrived == apps_arrived`, `AppRejected == apps_rejected`,
///   `AppCompleted == apps_completed`
/// * `AppMapped == apps_completed + apps_in_flight − apps_pending`
///   (everything admitted is either done or still running; pending apps
///   were never mapped)
/// * `FaultDetected == faults_detected`
///
/// # Errors
///
/// Returns one line per violated invariant, joined with newlines. A
/// report with no captured events (the default) trivially passes only if
/// its aggregates are all zero-consistent — call this on runs built with
/// `SystemBuilder::capture_events`.
pub fn validate_events(report: &Report) -> Result<(), String> {
    let ev = &report.events;
    let checks: [(&str, u64, u64); 9] = [
        (
            "TestLaunched == tests_completed + tests_aborted + tests_in_flight",
            ev.count("TestLaunched"),
            report.tests_completed + report.tests_aborted + report.tests_in_flight,
        ),
        (
            "TestCompleted == tests_completed",
            ev.count("TestCompleted"),
            report.tests_completed,
        ),
        (
            "TestAborted == tests_aborted",
            ev.count("TestAborted"),
            report.tests_aborted,
        ),
        (
            "TestDeniedPower == tests_denied_power",
            ev.count("TestDeniedPower"),
            report.tests_denied_power,
        ),
        (
            "AppArrived == apps_arrived",
            ev.count("AppArrived"),
            report.apps_arrived,
        ),
        (
            "AppRejected == apps_rejected",
            ev.count("AppRejected"),
            report.apps_rejected,
        ),
        (
            "AppCompleted == apps_completed",
            ev.count("AppCompleted"),
            report.apps_completed,
        ),
        (
            "AppMapped == apps_completed + apps_in_flight - apps_pending",
            ev.count("AppMapped"),
            report.apps_completed + report.apps_in_flight - report.apps_pending,
        ),
        (
            "FaultDetected == faults_detected",
            ev.count("FaultDetected"),
            report.faults_detected,
        ),
    ];
    let mut errors = String::new();
    for (invariant, from_events, from_report) in checks {
        if from_events != from_report {
            let _ = writeln!(
                errors,
                "event-count invariant violated: {invariant} \
                 (events say {from_events}, report says {from_report})"
            );
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.trim_end().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manytest_sim::SimEvent;

    #[test]
    fn empty_report_passes() {
        validate_events(&Report::default()).expect("all-zero report reconciles");
    }

    #[test]
    fn consistent_counts_pass() {
        let mut r = Report::default();
        r.tests_completed = 2;
        r.tests_aborted = 1;
        r.apps_arrived = 1;
        for _ in 0..3 {
            r.events.push(
                0.0,
                SimEvent::TestLaunched {
                    core: 0,
                    routine: 0,
                    level: 0,
                    power: 1.0,
                    headroom: 1.0,
                },
            );
        }
        for _ in 0..2 {
            r.events.push(
                0.0,
                SimEvent::TestCompleted {
                    core: 0,
                    routine: 0,
                    level: 0,
                    covered_levels: 1,
                    interval: -1.0,
                },
            );
        }
        r.events.push(
            0.0,
            SimEvent::TestAborted {
                core: 0,
                reason: manytest_sim::AbortReason::MappedOver,
            },
        );
        r.events.push(0.0, SimEvent::AppArrived { app: 0, tasks: 1 });
        validate_events(&r).expect("consistent counts");
    }

    #[test]
    fn divergent_counts_name_the_invariant() {
        let mut r = Report::default();
        r.events.push(0.0, SimEvent::AppArrived { app: 0, tasks: 1 });
        // apps_arrived stays 0 → mismatch.
        let err = validate_events(&r).unwrap_err();
        assert!(err.contains("AppArrived == apps_arrived"), "got: {err}");
        assert!(err.contains("events say 1, report says 0"), "got: {err}");
    }
}
