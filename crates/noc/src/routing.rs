//! Dimension-ordered (XY) routing.
//!
//! XY routing first corrects the X coordinate, then the Y coordinate. It is
//! deadlock-free on a mesh and is what the paper's platform (like most
//! academic manycore NoCs) uses. Routes are produced as iterators of [`Hop`]s
//! so the traffic accounting can charge each traversed link.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unit move between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `x − 1`
    West,
    /// `x + 1`
    East,
    /// `y − 1`
    South,
    /// `y + 1`
    North,
}

/// One hop of a route: the link leaving `from` in direction `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// Router the hop leaves from.
    pub from: Coord,
    /// Direction of travel.
    pub dir: Direction,
}

impl Hop {
    /// The router this hop arrives at.
    pub fn to(self) -> Coord {
        let Coord { x, y } = self.from;
        match self.dir {
            Direction::West => Coord { x: x - 1, y },
            Direction::East => Coord { x: x + 1, y },
            Direction::South => Coord { x, y: y - 1 },
            Direction::North => Coord { x, y: y + 1 },
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::West => "W",
            Direction::East => "E",
            Direction::South => "S",
            Direction::North => "N",
        };
        f.write_str(s)
    }
}

/// Iterator over the hops of an XY route. Created by [`xy_route`].
#[derive(Debug, Clone)]
pub struct XyRoute {
    at: Coord,
    dst: Coord,
}

impl Iterator for XyRoute {
    type Item = Hop;

    fn next(&mut self) -> Option<Hop> {
        let dir = if self.at.x < self.dst.x {
            Direction::East
        } else if self.at.x > self.dst.x {
            Direction::West
        } else if self.at.y < self.dst.y {
            Direction::North
        } else if self.at.y > self.dst.y {
            Direction::South
        } else {
            return None;
        };
        let hop = Hop { from: self.at, dir };
        self.at = hop.to();
        Some(hop)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.at.manhattan(self.dst) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for XyRoute {}

/// Returns the XY (dimension-ordered) route from `src` to `dst`.
///
/// The route is minimal: it has exactly `src.manhattan(dst)` hops.
///
/// # Examples
///
/// ```
/// use manytest_noc::routing::xy_route;
/// use manytest_noc::coord::Coord;
///
/// let hops: Vec<_> = xy_route(Coord::new(0, 0), Coord::new(2, 1)).collect();
/// assert_eq!(hops.len(), 3);
/// // X is corrected first.
/// assert_eq!(hops[0].from, Coord::new(0, 0));
/// assert_eq!(hops.last().unwrap().to(), Coord::new(2, 1));
/// ```
pub fn xy_route(src: Coord, dst: Coord) -> XyRoute {
    XyRoute { at: src, dst }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2D;

    #[test]
    fn route_is_minimal_everywhere() {
        let mesh = Mesh2D::new(6, 6);
        for a in mesh.coords() {
            for b in mesh.coords() {
                let hops: Vec<Hop> = xy_route(a, b).collect();
                assert_eq!(hops.len() as u32, a.manhattan(b));
            }
        }
    }

    #[test]
    fn route_is_connected_and_arrives() {
        let mesh = Mesh2D::new(5, 4);
        for a in mesh.coords() {
            for b in mesh.coords() {
                let mut at = a;
                for hop in xy_route(a, b) {
                    assert_eq!(hop.from, at);
                    at = hop.to();
                    assert!(mesh.contains(at), "route left the mesh at {at}");
                }
                assert_eq!(at, b);
            }
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let hops: Vec<Hop> = xy_route(Coord::new(0, 0), Coord::new(3, 3)).collect();
        let first_y_move = hops
            .iter()
            .position(|h| matches!(h.dir, Direction::North | Direction::South))
            .unwrap();
        assert!(hops[..first_y_move]
            .iter()
            .all(|h| matches!(h.dir, Direction::East | Direction::West)));
        assert!(hops[first_y_move..]
            .iter()
            .all(|h| matches!(h.dir, Direction::North | Direction::South)));
    }

    #[test]
    fn empty_route_for_same_node() {
        assert_eq!(xy_route(Coord::new(2, 2), Coord::new(2, 2)).count(), 0);
    }

    #[test]
    fn all_directions_occur() {
        let west = xy_route(Coord::new(3, 0), Coord::new(0, 0)).next().unwrap();
        assert_eq!(west.dir, Direction::West);
        let south = xy_route(Coord::new(0, 3), Coord::new(0, 0)).next().unwrap();
        assert_eq!(south.dir, Direction::South);
    }

    #[test]
    fn size_hint_is_exact() {
        let r = xy_route(Coord::new(0, 0), Coord::new(4, 3));
        assert_eq!(r.size_hint(), (7, Some(7)));
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn hop_to_inverts_direction_pairs() {
        let c = Coord::new(2, 2);
        for dir in [
            Direction::East,
            Direction::West,
            Direction::North,
            Direction::South,
        ] {
            let hop = Hop { from: c, dir };
            assert_eq!(hop.to().manhattan(c), 1);
        }
    }

    #[test]
    fn display_directions() {
        assert_eq!(format!("{}", Direction::East), "E");
        assert_eq!(format!("{}", Direction::North), "N");
    }
}
