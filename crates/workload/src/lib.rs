//! Dynamic workloads: task-graph applications, generators and arrivals.
//!
//! The paper evaluates under "dynamic workloads": applications arrive at
//! runtime, each one a task graph that the runtime mapper places onto a
//! contiguous region of cores; tasks execute, communicate over the NoC and
//! leave, freeing their cores (whose *idle periods* the test scheduler then
//! exploits). This crate provides:
//!
//! * [`task`] — the task-graph data model ([`TaskGraph`]): a validated DAG
//!   of compute volumes (instructions) and communication volumes (bits).
//! * [`gen`] — a TGFF-style random generator ([`TaskGraphGenerator`]) of
//!   layered DAGs, the standard way this literature builds synthetic
//!   dynamic workloads.
//! * [`presets`] — the classic NoC benchmark graphs (VOPD, MPEG-4 decoder,
//!   MWD, PIP) with their published communication structures.
//! * [`arrival`] — Poisson application arrivals ([`ArrivalProcess`]) and
//!   weighted application mixes ([`WorkloadMix`]).
//!
//! # Examples
//!
//! ```
//! use manytest_workload::prelude::*;
//! use manytest_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(7);
//! let generator = TaskGraphGenerator::default();
//! let graph = generator.generate(&mut rng, "app0");
//! assert!(graph.validate().is_ok());
//! assert!(graph.task_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod gen;
pub mod presets;
pub mod task;

pub use arrival::{AppId, Application, ArrivalProcess, WorkloadMix};
pub use gen::TaskGraphGenerator;
pub use task::{GraphError, Task, TaskGraph, TaskId};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::arrival::{AppId, Application, ArrivalProcess, WorkloadMix};
    pub use crate::gen::TaskGraphGenerator;
    pub use crate::presets;
    pub use crate::task::{GraphError, Task, TaskGraph, TaskId};
}
