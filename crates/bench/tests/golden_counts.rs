//! Telemetry regression gate: the per-kind event counts of two probes
//! are pinned against golden JSON files checked into the repository.
//!
//! A deterministic simulator plus a deterministic probe configuration
//! means these counts are exact constants — any drift is a real
//! behavioural change (an emission point added/removed, an RNG stream
//! perturbed, a scheduler decision reordered) and must be reviewed, not
//! absorbed. To accept an intentional change, regenerate the goldens:
//!
//! ```sh
//! MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test golden_counts
//! git diff crates/bench/tests/golden/   # review, then commit
//! ```

use manytest_bench::events::run_probe;
use manytest_bench::Scale;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One steady-state probe, the fault-response probe, and the lifecycle
/// probe: between them every event kind the control loop emits is
/// represented (e12 covers the probe-lane and checkpoint kinds).
const GOLDEN_IDS: [&str; 3] = ["e3", "e11", "e12"];

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.quick.json"))
}

/// Renders counts as a stable, human-diffable JSON object (sorted keys,
/// one pair per line). Zero counts are kept so a kind that stops firing
/// shows up as a `N -> 0` diff rather than a vanished line.
fn to_json(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    for (i, (kind, count)) in counts.iter().enumerate() {
        let sep = if i + 1 == counts.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{kind}\": {count}{sep}");
    }
    out.push_str("}\n");
    out
}

/// Minimal parser for the flat object `to_json` writes. Panics (failing
/// the test) on anything it does not recognise — goldens are
/// machine-written, so leniency would only hide corruption.
fn parse_json(text: &str) -> BTreeMap<String, u64> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("golden file is a JSON object");
    body.split(',')
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .map(|line| {
            let (key, value) = line.split_once(':').expect("golden line is `\"kind\": count`");
            let kind = key
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .expect("golden key is quoted");
            let count: u64 = value.trim().parse().expect("golden count is an integer");
            (kind.to_owned(), count)
        })
        .collect()
}

#[test]
fn per_kind_event_counts_match_the_golden_files() {
    let update = std::env::var_os("MANYTEST_UPDATE_GOLDEN").is_some();
    for id in GOLDEN_IDS {
        let report = run_probe(id, Scale::Quick).expect("known probe id");
        let counts: BTreeMap<String, u64> = report
            .events
            .kind_counts()
            .map(|(kind, count)| (kind.to_owned(), count))
            .collect();
        let path = golden_path(id);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
            std::fs::write(&path, to_json(&counts)).expect("write golden file");
            continue;
        }
        let golden = parse_json(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); regenerate with \
                 MANYTEST_UPDATE_GOLDEN=1 cargo test -p manytest-bench --test golden_counts",
                path.display()
            )
        }));
        assert_eq!(
            counts,
            golden,
            "probe {id}: per-kind event counts drifted from {}; if intentional, \
             regenerate with MANYTEST_UPDATE_GOLDEN=1 and commit the diff",
            path.display()
        );
    }
}

#[test]
fn golden_json_round_trips() {
    let mut counts = BTreeMap::new();
    counts.insert("AppArrived".to_owned(), 12u64);
    counts.insert("TestLaunched".to_owned(), 0u64);
    assert_eq!(parse_json(&to_json(&counts)), counts);
}
