//! Run-level metrics and the final report.

use manytest_sim::wire::{Wire, WireError, WireReader, WireWriter};
use manytest_sim::{EventLog, OnlineStats, PhaseProfile, StateTimeline, Trace};
use serde::{Deserialize, Serialize};

/// Everything a finished run reports; the bench harness regenerates the
/// paper's figures from these fields plus [`Report::trace`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Applications that arrived.
    pub apps_arrived: u64,
    /// Applications admitted and completed.
    pub apps_completed: u64,
    /// Applications still pending/running at the end.
    pub apps_in_flight: u64,
    /// Applications still waiting in the pending queue at the end
    /// (a subset of [`Report::apps_in_flight`]).
    pub apps_pending: u64,
    /// Applications rejected because they can never fit the mesh.
    pub apps_rejected: u64,
    /// Total workload instructions executed.
    pub instructions_executed: u64,
    /// Workload throughput, million instructions per second.
    pub throughput_mips: f64,
    /// Mean application latency (arrival → completion), seconds.
    pub mean_app_latency: f64,
    /// Mean time an admitted app waited in the pending queue, seconds.
    pub mean_queue_wait: f64,

    /// Mean chip power over the run, watts.
    pub mean_power: f64,
    /// Hottest epoch's mean power, watts.
    pub peak_power: f64,
    /// Configured TDP, watts.
    pub tdp: f64,
    /// Epochs whose measured power exceeded the TDP (with 1 % tolerance).
    pub cap_violations: u64,
    /// Admission-cap moves by the governor (one per control epoch);
    /// reconciles with `CapAdjusted` telemetry events.
    pub cap_adjustments: u64,
    /// Fraction of consumed energy spent on SBST testing.
    pub test_energy_share: f64,
    /// Fraction of consumed energy spent on the NoC.
    pub noc_energy_share: f64,

    /// SBST sessions completed.
    pub tests_completed: u64,
    /// SBST sessions aborted by arriving work (non-intrusive preemption).
    pub tests_aborted: u64,
    /// SBST sessions still running when the horizon ended.
    pub tests_in_flight: u64,
    /// Launches denied because the power headroom was exhausted.
    pub tests_denied_power: u64,
    /// Completed full routine-library passes per core, minimum over cores.
    pub min_tests_per_core: u64,
    /// Completed routines per core, maximum over cores.
    pub max_tests_per_core: u64,
    /// Mean interval between consecutive test completions on the same
    /// core, seconds (NaN-free: 0 when no core was tested twice).
    pub mean_test_interval: f64,
    /// Largest observed same-core test interval, seconds.
    pub max_test_interval: f64,
    /// True if every core completed ≥ 1 routine at every DVFS level.
    pub full_vf_coverage: bool,
    /// Completed routines per DVFS level (lowest first).
    pub tests_per_level: Vec<u64>,
    /// Completed routines per core (dense core index order).
    pub tests_per_core: Vec<u64>,
    /// Lifetime damage per core (dense core index order).
    pub damage_per_core: Vec<f64>,

    /// Faults injected.
    pub faults_injected: u64,
    /// Faults in the `Detected` state at the end of the run.
    pub faults_detected: u64,
    /// Detection *occurrences* over the run. A cleared suspect demotes
    /// its fault back to latent, so a fault can be detected more than
    /// once; this counter — not [`Report::faults_detected`] — reconciles
    /// with `FaultDetected` telemetry events.
    pub fault_detections: u64,
    /// Fault activation *occurrences* (injected faults becoming latent
    /// on their core); reconciles with `FaultActivated` events.
    pub fault_activations: u64,
    /// Mean fault detection latency, seconds (0 when none detected).
    pub mean_detection_latency: f64,

    /// Cores that entered `Suspect` (detections that opened a
    /// confirmation round).
    pub cores_suspected: u64,
    /// Cores confirmed faulty and withdrawn.
    pub cores_quarantined: u64,
    /// Suspects cleared back to healthy after K unconfirmed retests.
    pub cores_cleared: u64,
    /// Quarantines of cores with no *solid* active fault (intermittent
    /// symptoms confirmed by chance) — the cost of believing retests.
    pub false_quarantines: u64,
    /// Confirmation retest sessions completed.
    pub confirmation_retests: u64,
    /// Probe sessions launched by the background re-admission lane;
    /// reconciles with `CoreProbeLaunched` telemetry events.
    pub probes_launched: u64,
    /// Quarantined cores re-admitted to service after a clean probation
    /// streak; reconciles with `CoreReadmitted` events.
    pub cores_readmitted: u64,
    /// Probation rounds that failed and returned the core to quarantine
    /// with a longer retry backoff; reconciles with `CoreRequarantined`.
    pub cores_requarantined: u64,
    /// Configured cap on concurrent probe sessions (the lane budget),
    /// echoed so the audit can hold `CoreProbeLaunched` events to it.
    pub probe_budget: u64,
    /// Cores still healthy when the run ended (probation counts as
    /// withdrawn: the core is not mappable until `CoreReadmitted`).
    pub healthy_cores_end: u64,
    /// Applications killed outright by a quarantine (`Abort` policy).
    pub apps_aborted: u64,
    /// Applications re-queued for a fresh placement (`RestartElsewhere`).
    pub apps_restarted: u64,
    /// Applications remapped in place (`MigrateRegion`).
    pub apps_migrated: u64,
    /// Checkpoint images written by running applications (under
    /// `MigrateRegion` with a nonzero checkpoint interval); reconciles
    /// with `AppCheckpointed` telemetry events.
    pub apps_checkpointed: u64,
    /// Corruption exposure: core-seconds of application work executed on
    /// a core while a fault was actively corrupting (from activation
    /// until the fault cools or the core is withdrawn). The quantity the
    /// paper's test-frequency tuning implicitly minimises.
    pub corruption_exposure: f64,

    /// Mean utilisation over cores at the end of the run.
    pub mean_utilization: f64,
    /// Dark-silicon fraction of the node (static, for context).
    pub dark_fraction: f64,
    /// Mean weighted hop cost per admitted application.
    pub mean_hop_cost: f64,

    /// Deterministic self-profile of the control loop: per-phase event
    /// counters and scratch-buffer high-water marks (never wall-clock).
    pub profile: PhaseProfile,
    /// Flight-recorder timeline of per-epoch state snapshots. Empty
    /// unless the run opted in via `SystemBuilder::record_state`.
    pub state: StateTimeline,
    /// Epoch-resolution time series (power, cap, tests in flight, …).
    pub trace: Trace,
    /// Structured decision telemetry captured during the run. Empty
    /// unless the run opted in via `SystemBuilder::capture_events`; the
    /// per-kind counts are exact even if the sample buffer saturated.
    pub events: EventLog,
}

impl Report {
    /// Relative throughput difference versus a baseline run:
    /// `(baseline − self) / baseline`, i.e. positive = this run is slower.
    ///
    /// # Panics
    ///
    /// Panics if the baseline throughput is zero.
    pub fn throughput_penalty_vs(&self, baseline: &Report) -> f64 {
        assert!(
            baseline.throughput_mips > 0.0,
            "baseline throughput must be positive"
        );
        (baseline.throughput_mips - self.throughput_mips) / baseline.throughput_mips
    }

    /// Renders the report as a two-column Markdown table (trace omitted),
    /// for pasting into lab notebooks and issues.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<(&str, String)> = vec![
            ("simulated seconds", format!("{:.3}", self.sim_seconds)),
            ("apps arrived", self.apps_arrived.to_string()),
            ("apps completed", self.apps_completed.to_string()),
            ("apps in flight", self.apps_in_flight.to_string()),
            ("apps rejected", self.apps_rejected.to_string()),
            ("throughput (MIPS)", format!("{:.0}", self.throughput_mips)),
            ("mean app latency (ms)", format!("{:.2}", self.mean_app_latency * 1e3)),
            ("mean queue wait (ms)", format!("{:.2}", self.mean_queue_wait * 1e3)),
            ("mean power (W)", format!("{:.2}", self.mean_power)),
            ("peak power (W)", format!("{:.2}", self.peak_power)),
            ("TDP (W)", format!("{:.0}", self.tdp)),
            ("cap violations", self.cap_violations.to_string()),
            ("test energy share", format!("{:.2} %", self.test_energy_share * 100.0)),
            ("tests completed", self.tests_completed.to_string()),
            ("tests aborted", self.tests_aborted.to_string()),
            ("mean test interval (ms)", format!("{:.1}", self.mean_test_interval * 1e3)),
            ("max test interval (ms)", format!("{:.1}", self.max_test_interval * 1e3)),
            ("full V/f coverage", self.full_vf_coverage.to_string()),
            ("faults detected", format!("{}/{}", self.faults_detected, self.faults_injected)),
            ("cores quarantined", format!(
                "{} ({} false)",
                self.cores_quarantined, self.false_quarantines
            )),
            ("cores readmitted/requarantined", format!(
                "{}/{} ({} probes)",
                self.cores_readmitted, self.cores_requarantined, self.probes_launched
            )),
            ("apps aborted/restarted/migrated", format!(
                "{}/{}/{}",
                self.apps_aborted, self.apps_restarted, self.apps_migrated
            )),
            ("corruption exposure (core-ms)", format!("{:.2}", self.corruption_exposure * 1e3)),
            ("dark fraction", format!("{:.1} %", self.dark_fraction * 100.0)),
        ];
        let mut out = String::from("| metric | value |\n|---|---|\n");
        for (name, value) in rows {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
        out
    }

    /// Pretty one-screen summary.
    pub fn summary(&self) -> String {
        format!(
            "sim {:.3}s | apps {}/{} done | {:.0} MIPS | power {:.1}/{:.1} W (peak {:.1}, {} cap violations) | \
             tests {} done / {} aborted ({:.2}% energy) | test interval mean {:.1} ms max {:.1} ms | \
             V/f coverage {}",
            self.sim_seconds,
            self.apps_completed,
            self.apps_arrived,
            self.throughput_mips,
            self.mean_power,
            self.tdp,
            self.peak_power,
            self.cap_violations,
            self.tests_completed,
            self.tests_aborted,
            self.test_energy_share * 100.0,
            self.mean_test_interval * 1e3,
            self.max_test_interval * 1e3,
            if self.full_vf_coverage { "full" } else { "partial" },
        )
    }
}

impl Wire for Report {
    fn encode(&self, w: &mut WireWriter) {
        // Exhaustive destructuring: adding a Report field without
        // extending the codec is a compile error, which is what keeps
        // ledger cache replays byte-identical to cold runs.
        let Report {
            sim_seconds,
            apps_arrived,
            apps_completed,
            apps_in_flight,
            apps_pending,
            apps_rejected,
            instructions_executed,
            throughput_mips,
            mean_app_latency,
            mean_queue_wait,
            mean_power,
            peak_power,
            tdp,
            cap_violations,
            cap_adjustments,
            test_energy_share,
            noc_energy_share,
            tests_completed,
            tests_aborted,
            tests_in_flight,
            tests_denied_power,
            min_tests_per_core,
            max_tests_per_core,
            mean_test_interval,
            max_test_interval,
            full_vf_coverage,
            tests_per_level,
            tests_per_core,
            damage_per_core,
            faults_injected,
            faults_detected,
            fault_detections,
            fault_activations,
            mean_detection_latency,
            cores_suspected,
            cores_quarantined,
            cores_cleared,
            false_quarantines,
            confirmation_retests,
            probes_launched,
            cores_readmitted,
            cores_requarantined,
            probe_budget,
            healthy_cores_end,
            apps_aborted,
            apps_restarted,
            apps_migrated,
            apps_checkpointed,
            corruption_exposure,
            mean_utilization,
            dark_fraction,
            mean_hop_cost,
            profile,
            state,
            trace,
            events,
        } = self;
        w.f64(*sim_seconds);
        w.u64(*apps_arrived);
        w.u64(*apps_completed);
        w.u64(*apps_in_flight);
        w.u64(*apps_pending);
        w.u64(*apps_rejected);
        w.u64(*instructions_executed);
        w.f64(*throughput_mips);
        w.f64(*mean_app_latency);
        w.f64(*mean_queue_wait);
        w.f64(*mean_power);
        w.f64(*peak_power);
        w.f64(*tdp);
        w.u64(*cap_violations);
        w.u64(*cap_adjustments);
        w.f64(*test_energy_share);
        w.f64(*noc_energy_share);
        w.u64(*tests_completed);
        w.u64(*tests_aborted);
        w.u64(*tests_in_flight);
        w.u64(*tests_denied_power);
        w.u64(*min_tests_per_core);
        w.u64(*max_tests_per_core);
        w.f64(*mean_test_interval);
        w.f64(*max_test_interval);
        w.bool(*full_vf_coverage);
        tests_per_level.encode(w);
        tests_per_core.encode(w);
        damage_per_core.encode(w);
        w.u64(*faults_injected);
        w.u64(*faults_detected);
        w.u64(*fault_detections);
        w.u64(*fault_activations);
        w.f64(*mean_detection_latency);
        w.u64(*cores_suspected);
        w.u64(*cores_quarantined);
        w.u64(*cores_cleared);
        w.u64(*false_quarantines);
        w.u64(*confirmation_retests);
        w.u64(*probes_launched);
        w.u64(*cores_readmitted);
        w.u64(*cores_requarantined);
        w.u64(*probe_budget);
        w.u64(*healthy_cores_end);
        w.u64(*apps_aborted);
        w.u64(*apps_restarted);
        w.u64(*apps_migrated);
        w.u64(*apps_checkpointed);
        w.f64(*corruption_exposure);
        w.f64(*mean_utilization);
        w.f64(*dark_fraction);
        w.f64(*mean_hop_cost);
        profile.encode(w);
        state.encode(w);
        trace.encode(w);
        events.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Report {
            sim_seconds: r.f64()?,
            apps_arrived: r.u64()?,
            apps_completed: r.u64()?,
            apps_in_flight: r.u64()?,
            apps_pending: r.u64()?,
            apps_rejected: r.u64()?,
            instructions_executed: r.u64()?,
            throughput_mips: r.f64()?,
            mean_app_latency: r.f64()?,
            mean_queue_wait: r.f64()?,
            mean_power: r.f64()?,
            peak_power: r.f64()?,
            tdp: r.f64()?,
            cap_violations: r.u64()?,
            cap_adjustments: r.u64()?,
            test_energy_share: r.f64()?,
            noc_energy_share: r.f64()?,
            tests_completed: r.u64()?,
            tests_aborted: r.u64()?,
            tests_in_flight: r.u64()?,
            tests_denied_power: r.u64()?,
            min_tests_per_core: r.u64()?,
            max_tests_per_core: r.u64()?,
            mean_test_interval: r.f64()?,
            max_test_interval: r.f64()?,
            full_vf_coverage: r.bool()?,
            tests_per_level: Vec::<u64>::decode(r)?,
            tests_per_core: Vec::<u64>::decode(r)?,
            damage_per_core: Vec::<f64>::decode(r)?,
            faults_injected: r.u64()?,
            faults_detected: r.u64()?,
            fault_detections: r.u64()?,
            fault_activations: r.u64()?,
            mean_detection_latency: r.f64()?,
            cores_suspected: r.u64()?,
            cores_quarantined: r.u64()?,
            cores_cleared: r.u64()?,
            false_quarantines: r.u64()?,
            confirmation_retests: r.u64()?,
            probes_launched: r.u64()?,
            cores_readmitted: r.u64()?,
            cores_requarantined: r.u64()?,
            probe_budget: r.u64()?,
            healthy_cores_end: r.u64()?,
            apps_aborted: r.u64()?,
            apps_restarted: r.u64()?,
            apps_migrated: r.u64()?,
            apps_checkpointed: r.u64()?,
            corruption_exposure: r.f64()?,
            mean_utilization: r.f64()?,
            dark_fraction: r.f64()?,
            mean_hop_cost: r.f64()?,
            profile: PhaseProfile::decode(r)?,
            state: StateTimeline::decode(r)?,
            trace: Trace::decode(r)?,
            events: EventLog::decode(r)?,
        })
    }
}

impl Report {
    /// Serialises the full report to the `manytest-wire` text format.
    /// Decoding the result with [`Report::decode_wire`] reproduces a
    /// report equal to `self` down to f64 bit patterns, so every
    /// renderer downstream (markdown, Prometheus, JSONL) emits bytes
    /// identical to a fresh run's.
    pub fn encode_wire(&self) -> String {
        manytest_sim::wire::encode_to_string(self)
    }

    /// Decodes a report previously produced by [`Report::encode_wire`].
    pub fn decode_wire(text: &str) -> Result<Self, WireError> {
        manytest_sim::wire::decode_from_str(text)
    }
}

/// Accumulates per-run statistics the [`Report`] is assembled from.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    /// Application latencies (arrival → completion).
    pub app_latency: OnlineStats,
    /// Queue waits (arrival → admission).
    pub queue_wait: OnlineStats,
    /// Same-core test intervals.
    pub test_interval: OnlineStats,
    /// Weighted hop cost per admitted app.
    pub hop_cost: OnlineStats,
    /// Arrived / completed counters.
    pub apps_arrived: u64,
    /// Completed applications.
    pub apps_completed: u64,
    /// Executed instructions.
    pub instructions: u64,
    /// Completed sessions.
    pub tests_completed: u64,
    /// Aborted sessions.
    pub tests_aborted: u64,
    /// Epochs violating the cap.
    pub cap_violations: u64,
    /// Governor cap moves (one per control epoch).
    pub cap_adjustments: u64,
    /// Fault activation occurrences.
    pub fault_activations: u64,
    /// Cores that entered `Suspect`.
    pub cores_suspected: u64,
    /// Cores confirmed faulty and withdrawn.
    pub cores_quarantined: u64,
    /// Suspects cleared back to healthy.
    pub cores_cleared: u64,
    /// Quarantines with no solid active fault on the core.
    pub false_quarantines: u64,
    /// Confirmation retest sessions completed.
    pub confirmation_retests: u64,
    /// Probe sessions launched by the re-admission lane.
    pub probes_launched: u64,
    /// Quarantined cores re-admitted after a clean probation streak.
    pub cores_readmitted: u64,
    /// Failed probation rounds (core returned to quarantine).
    pub cores_requarantined: u64,
    /// Applications killed by quarantine.
    pub apps_aborted: u64,
    /// Applications re-queued by quarantine.
    pub apps_restarted: u64,
    /// Applications remapped in place by quarantine.
    pub apps_migrated: u64,
    /// Checkpoint images written by running applications.
    pub apps_checkpointed: u64,
    /// Core-seconds of app work on fault-active, not-yet-quarantined cores.
    pub corruption_exposure: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_computation() {
        let mut base = Report::default();
        base.throughput_mips = 100.0;
        let mut tested = Report::default();
        tested.throughput_mips = 99.0;
        let p = tested.throughput_penalty_vs(&base);
        assert!((p - 0.01).abs() < 1e-12);
        // Faster than baseline → negative penalty.
        let mut faster = Report::default();
        faster.throughput_mips = 101.0;
        assert!(faster.throughput_penalty_vs(&base) < 0.0);
    }

    #[test]
    #[should_panic(expected = "baseline throughput")]
    fn penalty_vs_zero_baseline_panics() {
        let base = Report::default();
        let mut r = Report::default();
        r.throughput_mips = 1.0;
        let _ = r.throughput_penalty_vs(&base);
    }

    #[test]
    fn summary_is_nonempty_and_mentions_tests() {
        let mut r = Report::default();
        r.tests_completed = 42;
        let s = r.summary();
        assert!(s.contains("42"));
        assert!(s.contains("MIPS"));
    }

    #[test]
    fn markdown_report_lists_key_metrics() {
        let mut r = Report::default();
        r.throughput_mips = 1234.0;
        r.tests_completed = 7;
        r.tdp = 80.0;
        let md = r.to_markdown();
        assert!(md.starts_with("| metric | value |"));
        assert!(md.contains("| throughput (MIPS) | 1234 |"));
        assert!(md.contains("| tests completed | 7 |"));
        assert!(md.lines().count() >= 20);
    }

    #[test]
    fn collector_defaults_to_zero() {
        let c = MetricsCollector::default();
        assert_eq!(c.apps_arrived, 0);
        assert_eq!(c.app_latency.count(), 0);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut r = Report::default();
        r.sim_seconds = 1.25;
        r.apps_arrived = 42;
        r.throughput_mips = 1234.5678901234;
        r.mean_power = -0.0; // sign bit must survive
        r.full_vf_coverage = true;
        r.tests_per_level = vec![1, 2, 3];
        r.damage_per_core = vec![0.1, 0.2];
        let text = r.encode_wire();
        let back = Report::decode_wire(&text).expect("decodes");
        assert_eq!(back, r);
        // Re-encoding must reproduce the exact bytes (bit-stable f64s).
        assert_eq!(back.encode_wire(), text);
    }

    #[test]
    fn wire_round_trip_survives_nan() {
        let mut r = Report::default();
        r.mean_app_latency = f64::NAN;
        let text = r.encode_wire();
        let back = Report::decode_wire(&text).expect("decodes");
        assert!(back.mean_app_latency.is_nan());
        assert_eq!(back.encode_wire(), text);
    }

    #[test]
    fn wire_decode_rejects_truncation() {
        let mut r = Report::default();
        r.apps_arrived = 7;
        let text = r.encode_wire();
        let cut = &text[..text.len() / 2];
        assert!(Report::decode_wire(cut).is_err());
    }
}
