//! Criterion bench regenerating E8 (PID vs naive power budgeting) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e8_pid_vs_naive, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_pid_vs_naive");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e8_pid_vs_naive(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
