//! Transient RC thermal model of the die.
//!
//! The default aging pipeline uses a *steady-state* proxy
//! (`T = T_amb + R_th·P`, see [`crate::model`]), which ignores thermal
//! capacitance (heating takes time) and lateral heat spreading (hot tiles
//! warm their neighbours). This module provides the standard lumped-RC
//! alternative — one thermal node per tile, a vertical resistance to
//! ambient through the heat-sink path, a capacitance giving the tile a
//! realistic ~100 ms time constant, and lateral resistances to the four
//! mesh neighbours:
//!
//! ```text
//! C · dT_i/dt = P_i − (T_i − T_amb)/R_v − Σ_j (T_i − T_j)/R_l
//! ```
//!
//! integrated with sub-stepped explicit Euler (the step size is clamped
//! well below the stability limit). The grid plugs into the same
//! Arrhenius acceleration as the proxy, so the two models are directly
//! comparable (ablation A5 in the bench crate does exactly that).

use serde::{Deserialize, Serialize};

/// Physical constants of the per-tile RC network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Vertical resistance tile → ambient (heat-sink path), kelvin/watt.
    pub r_vertical: f64,
    /// Tile thermal capacitance, joules/kelvin.
    pub capacitance: f64,
    /// Lateral resistance between adjacent tiles, kelvin/watt.
    pub r_lateral: f64,
    /// Ambient temperature, kelvin.
    pub t_ambient: f64,
}

impl ThermalParams {
    /// Constants for a small manycore tile: 30 K/W to ambient (matching
    /// the steady-state proxy so the two models agree in equilibrium),
    /// a ~100 ms time constant, and 10 K/W lateral spreading.
    pub fn new() -> Self {
        ThermalParams {
            r_vertical: 30.0,
            capacitance: 3.3e-3,
            r_lateral: 10.0,
            t_ambient: 318.15, // 45 °C
        }
    }

    /// Largest explicit-Euler step that is stable for an interior tile
    /// (4 lateral neighbours), seconds.
    pub fn stable_step(&self) -> f64 {
        self.capacitance / (1.0 / self.r_vertical + 4.0 / self.r_lateral)
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self::new()
    }
}

/// A `width × height` grid of tile temperatures.
///
/// # Examples
///
/// ```
/// use manytest_aging::thermal::{ThermalGrid, ThermalParams};
///
/// let mut grid = ThermalGrid::new(4, 4, ThermalParams::default());
/// let mut powers = vec![0.0; 16];
/// powers[5] = 2.0; // one hot tile
/// for _ in 0..200 {
///     grid.step(&powers, 1e-3);
/// }
/// // The hot tile is hottest; its neighbour is warmer than a far corner.
/// assert!(grid.temperature(5) > grid.temperature(6));
/// assert!(grid.temperature(6) > grid.temperature(15));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalGrid {
    width: usize,
    height: usize,
    params: ThermalParams,
    temps: Vec<f64>,
    // Flattened neighbor adjacency (CSR layout), precomputed once at
    // construction: tile `i`'s neighbors are
    // `neighbor_idx[neighbor_off[i]..neighbor_off[i + 1]]`. The epoch
    // loop substeps the grid thousands of times per run; rebuilding the
    // four-way neighbor iterator per tile per substep dominated `step`'s
    // index arithmetic before this.
    neighbor_idx: Vec<u32>,
    neighbor_off: Vec<u32>,
    // Double-buffer for the explicit-Euler update, reused across steps.
    scratch: Vec<f64>,
}

// The derived scratch/adjacency fields are construction invariants;
// equality is the physical state (geometry, constants, temperatures).
impl PartialEq for ThermalGrid {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.height == other.height
            && self.params == other.params
            && self.temps == other.temps
    }
}

impl ThermalGrid {
    /// Creates a grid with every tile at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, params: ThermalParams) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        let tiles = width * height;
        let mut neighbor_idx = Vec::with_capacity(4 * tiles);
        let mut neighbor_off = Vec::with_capacity(tiles + 1);
        neighbor_off.push(0);
        for i in 0..tiles {
            let x = i % width;
            let y = i / width;
            if x > 0 {
                neighbor_idx.push((i - 1) as u32);
            }
            if x + 1 < width {
                neighbor_idx.push((i + 1) as u32);
            }
            if y > 0 {
                neighbor_idx.push((i - width) as u32);
            }
            if y + 1 < height {
                neighbor_idx.push((i + width) as u32);
            }
            neighbor_off.push(neighbor_idx.len() as u32);
        }
        ThermalGrid {
            width,
            height,
            params,
            temps: vec![params.t_ambient; tiles],
            neighbor_idx,
            neighbor_off,
            scratch: vec![params.t_ambient; tiles],
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// A grid is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The model parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Temperature of tile `i`, kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn temperature(&self, i: usize) -> f64 {
        self.temps[i]
    }

    /// All temperatures in tile order.
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Hottest tile temperature, kelvin.
    pub fn max_temperature(&self) -> f64 {
        self.temps.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// Mean tile temperature, kelvin.
    pub fn mean_temperature(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Neighbor tile indices of tile `i` (precomputed at construction).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let lo = self.neighbor_off[i] as usize;
        let hi = self.neighbor_off[i + 1] as usize;
        &self.neighbor_idx[lo..hi]
    }

    /// Advances the grid by `dt` seconds with the given per-tile powers
    /// (watts), sub-stepping as needed for numerical stability. Uses the
    /// precomputed adjacency and an internal double-buffer, so stepping
    /// never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `powers` does not have one entry per tile or `dt` is
    /// negative.
    pub fn step(&mut self, powers: &[f64], dt: f64) {
        assert_eq!(powers.len(), self.temps.len(), "one power per tile");
        assert!(dt >= 0.0, "time must advance forwards");
        if dt == 0.0 {
            return;
        }
        let max_step = 0.25 * self.params.stable_step();
        let substeps = (dt / max_step).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        let p = self.params;
        for _ in 0..substeps {
            for i in 0..self.temps.len() {
                let t = self.temps[i];
                let mut flow = powers[i] - (t - p.t_ambient) / p.r_vertical;
                let lo = self.neighbor_off[i] as usize;
                let hi = self.neighbor_off[i + 1] as usize;
                for &j in &self.neighbor_idx[lo..hi] {
                    flow -= (t - self.temps[j as usize]) / p.r_lateral;
                }
                self.scratch[i] = t + h * flow / p.capacitance;
            }
            std::mem::swap(&mut self.temps, &mut self.scratch);
        }
    }

    /// The steady-state temperature an *isolated* tile would reach at
    /// `power` watts (for cross-checking against the proxy model).
    pub fn isolated_steady_state(&self, power: f64) -> f64 {
        self.params.t_ambient + self.params.r_vertical * power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: usize, h: usize) -> ThermalGrid {
        ThermalGrid::new(w, h, ThermalParams::default())
    }

    #[test]
    fn starts_at_ambient() {
        let g = grid(3, 3);
        for i in 0..9 {
            assert_eq!(g.temperature(i), g.params().t_ambient);
        }
        assert!((g.mean_temperature() - g.params().t_ambient).abs() < 1e-9);
    }

    #[test]
    fn uniform_power_converges_to_uniform_steady_state() {
        let mut g = grid(4, 4);
        let powers = vec![1.0; 16];
        for _ in 0..5_000 {
            g.step(&powers, 1e-3);
        }
        // Uniform heating: no lateral flow, every tile at T_amb + R_v·P.
        let expected = g.isolated_steady_state(1.0);
        for i in 0..16 {
            assert!(
                (g.temperature(i) - expected).abs() < 0.01,
                "tile {i}: {} vs {expected}",
                g.temperature(i)
            );
        }
    }

    #[test]
    fn heating_follows_an_exponential_transient() {
        let mut g = grid(1, 1);
        let tau = g.params().r_vertical * g.params().capacitance;
        let powers = vec![1.0];
        g.step(&powers, tau); // one time constant
        let rise = g.temperature(0) - g.params().t_ambient;
        let full = g.params().r_vertical * 1.0;
        let expected = full * (1.0 - (-1.0f64).exp());
        assert!(
            (rise - expected).abs() < 0.05 * full,
            "rise {rise} vs expected {expected}"
        );
    }

    #[test]
    fn heat_spreads_to_neighbors() {
        let mut g = grid(5, 1);
        let mut powers = vec![0.0; 5];
        powers[0] = 2.0;
        for _ in 0..2_000 {
            g.step(&powers, 1e-3);
        }
        // Monotone decay away from the source.
        for i in 0..4 {
            assert!(
                g.temperature(i) > g.temperature(i + 1),
                "temperature must decay with distance"
            );
        }
        assert!(g.temperature(4) > g.params().t_ambient);
    }

    #[test]
    fn cooling_returns_to_ambient() {
        let mut g = grid(2, 2);
        g.step(&vec![5.0; 4], 0.5);
        assert!(g.max_temperature() > g.params().t_ambient + 1.0);
        g.step(&vec![0.0; 4], 5.0);
        assert!(
            (g.max_temperature() - g.params().t_ambient).abs() < 0.01,
            "die must cool back to ambient"
        );
    }

    #[test]
    fn energy_is_not_created() {
        // Temperatures never exceed the hottest achievable steady state.
        let mut g = grid(3, 3);
        let powers = vec![2.0; 9];
        let t_max = g.isolated_steady_state(2.0);
        for _ in 0..10_000 {
            g.step(&powers, 1e-3);
            assert!(g.max_temperature() <= t_max + 0.01);
        }
    }

    #[test]
    fn zero_dt_is_a_noop() {
        let mut g = grid(2, 2);
        let before = g.temperatures().to_vec();
        g.step(&vec![3.0; 4], 0.0);
        assert_eq!(g.temperatures(), &before[..]);
    }

    #[test]
    fn substepping_matches_fine_stepping() {
        let powers: Vec<f64> = (0..9).map(|i| i as f64 * 0.3).collect();
        let mut coarse = grid(3, 3);
        coarse.step(&powers, 0.05); // forces substeps internally
        let mut fine = grid(3, 3);
        for _ in 0..500 {
            fine.step(&powers, 1e-4);
        }
        for i in 0..9 {
            // Explicit Euler is first order: the two step sizes agree to
            // within a few tenths of a kelvin over a 50 ms transient.
            assert!(
                (coarse.temperature(i) - fine.temperature(i)).abs() < 0.3,
                "tile {i} diverged: {} vs {}",
                coarse.temperature(i),
                fine.temperature(i)
            );
        }
    }

    #[test]
    fn stable_step_is_positive_and_small() {
        let p = ThermalParams::default();
        assert!(p.stable_step() > 0.0);
        assert!(p.stable_step() < 0.1);
    }

    #[test]
    #[should_panic(expected = "one power per tile")]
    fn wrong_power_length_panics() {
        grid(2, 2).step(&[1.0; 3], 1e-3);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        ThermalGrid::new(0, 3, ThermalParams::default());
    }
}
