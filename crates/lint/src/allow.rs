//! Inline suppressions: `// lint:allow(<rule>, reason = "…")`.
//!
//! An allow comment silences findings of `<rule>` on its *target line*:
//! the comment's own line when it trails code, otherwise the next line
//! that carries any code token (so an allow can sit directly above a
//! `.expect(…)` link in a method chain). The audit is two-sided — an
//! allow that silences nothing is itself reported (`unused-allow`), and
//! one without a parseable rule id and non-empty reason is reported as
//! `malformed-allow`.

use crate::lexer::{Token, TokenKind};

/// One parsed (or rejected) suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id being allowed, e.g. `hot-path-purity`.
    pub rule: String,
    /// The mandatory human rationale.
    pub reason: String,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// The line whose findings this allow suppresses.
    pub target_line: u32,
    /// Why parsing failed, when it did (`rule`/`reason` are empty then).
    pub malformed: Option<String>,
}

/// Extracts every `lint:allow` comment from a token stream and resolves
/// its target line.
pub fn parse_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let body = tok.text.trim();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let trails_code = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.kind != TokenKind::Comment);
        let target_line = if trails_code {
            tok.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::Comment)
                .map(|t| t.line)
                .unwrap_or(tok.line)
        };
        let mut allow = Allow {
            rule: String::new(),
            reason: String::new(),
            line: tok.line,
            col: tok.col,
            target_line,
            malformed: None,
        };
        match parse_body(rest) {
            Ok((rule, reason)) => {
                allow.rule = rule;
                allow.reason = reason;
            }
            Err(msg) => allow.malformed = Some(msg),
        }
        allows.push(allow);
    }
    allows
}

/// Parses `(<rule>, reason = "…")` (whitespace-tolerant).
fn parse_body(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `lint:allow`".into());
    };
    let Some(close) = rest.rfind(')') else {
        return Err("missing closing `)`".into());
    };
    let inner = &rest[..close];
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("expected `lint:allow(<rule>, reason = \"…\")`".into());
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("invalid rule id `{rule}`"));
    }
    let reason_part = reason_part.trim();
    let Some(reason_part) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"…\"`".into());
    };
    let reason_part = reason_part.trim_start();
    let Some(reason_part) = reason_part.strip_prefix('=') else {
        return Err("expected `=` after `reason`".into());
    };
    let reason_part = reason_part.trim();
    let reason = reason_part
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let toks = lex("let x = v.pop().unwrap(); // lint:allow(hot-path-purity, reason = \"checked\")\n");
        let allows = parse_allows(&toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "hot-path-purity");
        assert_eq!(allows[0].reason, "checked");
        assert_eq!(allows[0].target_line, 1);
        assert!(allows[0].malformed.is_none());
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// lint:allow(wall-clock, reason = \"bench only\")\n// another comment\nlet t = Instant::now();\n";
        let allows = parse_allows(&lex(src));
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 3);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let allows = parse_allows(&lex("// lint:allow(wall-clock)\nx();\n"));
        assert_eq!(allows.len(), 1);
        assert!(allows[0].malformed.is_some());
        let allows = parse_allows(&lex("// lint:allow(wall-clock, reason = \"\")\nx();\n"));
        assert!(allows[0].malformed.is_some());
    }

    #[test]
    fn allow_above_chain_link_reaches_the_expect_line() {
        let src = "let r = slot\n    .take()\n    // lint:allow(hot-path-purity, reason = \"invariant\")\n    .expect(\"held\");\n";
        let allows = parse_allows(&lex(src));
        assert_eq!(allows[0].target_line, 4);
    }
}
