//! Rendered run reports: a self-contained HTML page with inline SVG
//! panels plus a Prometheus-style text file, generated from one probe's
//! flight recording (`repro report <id>`).
//!
//! The renderer consumes only the deterministic [`Report`] — the trace,
//! the flight-recorder timeline, the event log and the phase profile —
//! so the emitted bytes are identical across worker counts and reruns.
//! Wall-clock phase times exist too, but they are measured bench-side
//! through [`WallPhaseTimer`] and go to stderr only, never into a file.

use crate::events::probe_builder;
use crate::Scale;
use manytest_core::prelude::*;
use manytest_sim::{HealthCode, Phase, PhaseObserver, StateSnapshot};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Flight-recorder ring capacity used by report probes: small enough to
/// keep the heatmap panels readable, large enough that quick probes
/// (250+ epochs) exercise the stride-doubling decimation.
pub const REPORT_SNAPSHOT_CAPACITY: usize = 192;

/// Widest panel dimension, SVG user units.
const PANEL_W: f64 = 760.0;
/// Chart margin inside a panel.
const MARGIN: f64 = 34.0;

/// Every metric name `metrics.prom` emits, in emission order. The lint
/// `golden-schema` rule checks that any `manytest_*` metric the docs
/// mention is in this list, and a unit test checks the list matches what
/// [`render_prometheus`] actually writes.
pub const METRIC_KEYS: [&str; 25] = [
    "manytest_sim_seconds",
    "manytest_apps_arrived",
    "manytest_apps_completed",
    "manytest_throughput_mips",
    "manytest_mean_power_watts",
    "manytest_peak_power_watts",
    "manytest_tdp_watts",
    "manytest_cap_violations_total",
    "manytest_test_energy_share",
    "manytest_tests_completed_total",
    "manytest_tests_aborted_total",
    "manytest_tests_denied_power_total",
    "manytest_mean_test_interval_seconds",
    "manytest_faults_injected_total",
    "manytest_fault_detections_total",
    "manytest_cores_quarantined_total",
    "manytest_healthy_cores_end",
    "manytest_corruption_exposure_core_seconds",
    "manytest_event_log_dropped_total",
    "manytest_event_log_saturated",
    "manytest_state_snapshots_total",
    "manytest_profile_epochs_total",
    "manytest_profile_events_processed_total",
    "manytest_profile_sched_launches_total",
    "manytest_profile_batch_high_water",
];

/// The probe configuration for `id` with the flight recorder enabled on
/// top of the standard event capture. `None` for unknown ids.
pub fn report_builder(id: &str, scale: Scale) -> Option<SystemBuilder> {
    Some(probe_builder(id, scale)?.record_state(REPORT_SNAPSHOT_CAPACITY))
}

/// Runs the report probe for `id` to completion (through the run-ledger
/// funnel). `None` for unknown ids.
pub fn run_report_probe(id: &str, scale: Scale) -> Option<Report> {
    Some(crate::ledger::run_system(
        &format!("report/{id}"),
        report_builder(id, scale)?,
    ))
}

/// Wall-clock phase timer, bench-side only: implements [`PhaseObserver`]
/// so the control loop's `enter`/`exit` brackets accumulate real seconds
/// per [`Phase`]. The accumulator is shared out through an `Arc` because
/// `System::run` consumes the system (and the observer with it).
///
/// Wall times are diagnostics for stderr; they must never be written
/// into report files, which are byte-compared across worker counts.
pub struct WallPhaseTimer {
    acc: Arc<Mutex<[f64; Phase::COUNT]>>,
    started: [Option<Instant>; Phase::COUNT],
}

impl WallPhaseTimer {
    /// A fresh timer plus the shared accumulator to read afterwards.
    pub fn new() -> (Self, Arc<Mutex<[f64; Phase::COUNT]>>) {
        let acc = Arc::new(Mutex::new([0.0; Phase::COUNT]));
        let timer = WallPhaseTimer {
            acc: Arc::clone(&acc),
            started: [None; Phase::COUNT],
        };
        (timer, acc)
    }
}

impl PhaseObserver for WallPhaseTimer {
    fn enter(&mut self, phase: Phase) {
        self.started[phase.index()] = Some(Instant::now());
    }

    fn exit(&mut self, phase: Phase) {
        if let Some(t0) = self.started[phase.index()].take() {
            if let Ok(mut acc) = self.acc.lock() {
                acc[phase.index()] += t0.elapsed().as_secs_f64();
            }
        }
    }
}

/// Runs the report probe with a [`WallPhaseTimer`] installed, returning
/// the (deterministic) report plus the (non-deterministic) per-phase
/// wall seconds. `None` for unknown ids.
pub fn run_report_probe_timed(id: &str, scale: Scale) -> Option<(Report, [f64; Phase::COUNT])> {
    let mut system = report_builder(id, scale)?
        .build()
        .expect("probe config is valid");
    let (timer, acc) = WallPhaseTimer::new();
    system.set_phase_observer(Box::new(timer));
    let report = system.run();
    let wall = *acc.lock().expect("timer accumulator is never poisoned");
    Some((report, wall))
}

/// One stderr-friendly table of per-phase wall seconds.
pub fn wall_phase_table(wall: &[f64; Phase::COUNT]) -> String {
    let total: f64 = wall.iter().sum();
    let mut out = String::from("# phase      wall_s   share\n");
    for phase in Phase::ALL {
        let s = wall[phase.index()];
        let share = if total > 0.0 { s / total * 100.0 } else { 0.0 };
        let _ = writeln!(out, "# {:<9} {:>8.4}  {:>5.1}%", phase.as_str(), s, share);
    }
    let _ = writeln!(out, "# total     {total:>8.4}");
    out
}

/// Validates the probe's telemetry and writes `DIR/<id>.html`,
/// `DIR/metrics.prom` and `DIR/<id>.trace.json` (the Perfetto trace the
/// HTML links to), creating `DIR` if missing. Returns the HTML and
/// Prometheus paths.
///
/// # Errors
///
/// I/O errors, plus a synthesized [`io::ErrorKind::InvalidData`] error
/// when the probe's event counts fail to reconcile with its report.
pub fn write_report_files(dir: &Path, id: &str, report: &Report) -> io::Result<(PathBuf, PathBuf)> {
    validate_events(report)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("probe {id}: {e}")))?;
    fs::create_dir_all(dir)?;
    let html_path = dir.join(format!("{id}.html"));
    let prom_path = dir.join("metrics.prom");
    fs::write(&html_path, render_html(id, report))?;
    fs::write(&prom_path, render_prometheus(id, report))?;
    crate::trace::write_trace_file(dir, id, report)?;
    Ok((html_path, prom_path))
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

/// `(name, help, value)` rows backing `metrics.prom`, in [`METRIC_KEYS`]
/// order. Values use Rust's shortest-round-trip float formatting, the
/// workspace's standard for deterministic output.
fn metric_rows(r: &Report) -> Vec<(&'static str, &'static str, String)> {
    let f = |v: f64| format!("{v}");
    let u = |v: u64| format!("{v}");
    vec![
        ("manytest_sim_seconds", "Simulated seconds covered by the run.", f(r.sim_seconds)),
        ("manytest_apps_arrived", "Applications that arrived.", u(r.apps_arrived)),
        ("manytest_apps_completed", "Applications admitted and completed.", u(r.apps_completed)),
        ("manytest_throughput_mips", "Workload throughput, million instructions per second.", f(r.throughput_mips)),
        ("manytest_mean_power_watts", "Mean chip power over the run.", f(r.mean_power)),
        ("manytest_peak_power_watts", "Hottest epoch's mean power.", f(r.peak_power)),
        ("manytest_tdp_watts", "Configured thermal design power.", f(r.tdp)),
        ("manytest_cap_violations_total", "Epochs whose measured power exceeded the TDP.", u(r.cap_violations)),
        ("manytest_test_energy_share", "Fraction of consumed energy spent on SBST testing.", f(r.test_energy_share)),
        ("manytest_tests_completed_total", "SBST sessions completed.", u(r.tests_completed)),
        ("manytest_tests_aborted_total", "SBST sessions aborted by arriving work.", u(r.tests_aborted)),
        ("manytest_tests_denied_power_total", "Launches denied for lack of power headroom.", u(r.tests_denied_power)),
        ("manytest_mean_test_interval_seconds", "Mean same-core interval between test completions.", f(r.mean_test_interval)),
        ("manytest_faults_injected_total", "Faults injected.", u(r.faults_injected)),
        ("manytest_fault_detections_total", "Fault detection occurrences.", u(r.fault_detections)),
        ("manytest_cores_quarantined_total", "Cores confirmed faulty and withdrawn.", u(r.cores_quarantined)),
        ("manytest_healthy_cores_end", "Cores still healthy when the run ended.", u(r.healthy_cores_end)),
        ("manytest_corruption_exposure_core_seconds", "Core-seconds of app work on fault-carrying cores.", f(r.corruption_exposure)),
        ("manytest_event_log_dropped_total", "Telemetry samples dropped by the bounded event log.", u(r.events.dropped())),
        ("manytest_event_log_saturated", "1 when the bounded event log dropped at least one record.", u((r.events.dropped() > 0) as u64)),
        ("manytest_state_snapshots_total", "State snapshots offered to the flight recorder.", u(r.state.seen())),
        ("manytest_profile_epochs_total", "Control epochs executed.", u(r.profile.epochs)),
        ("manytest_profile_events_processed_total", "Queue events drained by the control loop.", u(r.profile.events_processed)),
        ("manytest_profile_sched_launches_total", "Test sessions launched by the scheduler.", u(r.profile.sched_launches)),
        ("manytest_profile_batch_high_water", "Largest single event batch drained in one epoch.", u(r.profile.batch_high_water)),
    ]
}

/// Renders the Prometheus-style text exposition (`metrics.prom`): one
/// `# HELP`/`# TYPE`/sample triple per [`METRIC_KEYS`] entry, labelled
/// with the probe id. Byte-deterministic.
pub fn render_prometheus(id: &str, report: &Report) -> String {
    let mut out = String::new();
    for (name, help, value) in metric_rows(report) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{{probe=\"{id}\"}} {value}");
    }
    out
}

// ---------------------------------------------------------------------------
// HTML / SVG rendering.
// ---------------------------------------------------------------------------

/// Renders the self-contained HTML report for one probe run: power vs.
/// TDP trace, thermal/power heatmap timeline, core-health Gantt, V/f
/// residency stacked area, phase-profile table and the metric table.
/// Byte-deterministic (no wall time, no dates, no environment).
pub fn render_html(id: &str, report: &Report) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>manytest run report — probe {id}</title>");
    out.push_str(
        "<style>\n\
         body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 820px; color: #222; }\n\
         h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }\n\
         svg { background: #fafafa; border: 1px solid #ddd; }\n\
         table { border-collapse: collapse; } td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }\n\
         th { background: #f0f0f0; } td:first-child, th:first-child { text-align: left; }\n\
         .caption { color: #666; font-size: 12px; }\n\
         pre { background: #f6f6f6; padding: 8px; overflow-x: auto; }\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = writeln!(out, "<h1>manytest run report — probe {id}</h1>");
    let cores = if report.state.core_count() > 0 {
        report.state.core_count()
    } else {
        report.tests_per_core.len()
    };
    let _ = writeln!(
        out,
        "<p class=\"caption\">{:.3} s simulated · {} cores · {} control epochs · \
         flight recorder kept {} of {} snapshots (stride {})</p>",
        report.sim_seconds,
        cores,
        report.profile.epochs,
        report.state.snapshots().len(),
        report.state.seen(),
        report.state.stride()
    );
    if let Some(warning) = report.events.saturation_warning() {
        let _ = writeln!(out, "<p class=\"caption\">{warning}</p>");
    }
    let _ = writeln!(
        out,
        "<p class=\"caption\">causal trace: <a href=\"{id}.trace.json\">{id}.trace.json</a> \
         (load in <a href=\"https://ui.perfetto.dev\">ui.perfetto.dev</a> — one track per core, \
         flow arrows follow the cause links)</p>"
    );
    render_power_panel(&mut out, report);
    render_heatmap_panel(&mut out, report);
    render_health_panel(&mut out, report, cores);
    render_vf_panel(&mut out, report);
    render_profile_panel(&mut out, report);
    out.push_str("<h2>run metrics</h2>\n<pre>");
    out.push_str(&report.to_markdown());
    out.push_str("</pre>\n</body>\n</html>\n");
    out
}

/// Maps `t ∈ [0, t_max]` to an x pixel inside the chart area.
fn x_px(t: f64, t_max: f64) -> f64 {
    MARGIN + (t / t_max.max(1e-12)) * (PANEL_W - 2.0 * MARGIN)
}

/// Maps `v ∈ [0, v_max]` to a y pixel (origin at the bottom).
fn y_px(v: f64, v_max: f64, panel_h: f64) -> f64 {
    panel_h - MARGIN - (v / v_max.max(1e-12)) * (panel_h - 2.0 * MARGIN)
}

fn polyline(out: &mut String, pts: &[(f64, f64)], t_max: f64, v_max: f64, h: f64, color: &str, dash: &str) {
    if pts.is_empty() {
        return;
    }
    let _ = write!(out, "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"{dash} points=\"");
    for &(t, v) in pts {
        let _ = write!(out, "{:.1},{:.1} ", x_px(t, t_max), y_px(v, v_max, h));
    }
    out.push_str("\"/>\n");
}

/// Power vs. TDP trace with the test-power share underneath.
fn render_power_panel(out: &mut String, report: &Report) {
    let h = 240.0;
    out.push_str("<h2>power vs. TDP</h2>\n");
    let series: [(&str, &str, &str); 4] = [
        ("power_w", "#1f6fb2", ""),
        ("test_power_w", "#e8871e", ""),
        ("cap_w", "#2a9d3a", " stroke-dasharray=\"5 3\""),
        ("tdp_w", "#d62828", " stroke-dasharray=\"2 3\""),
    ];
    let t_max = report.sim_seconds.max(1e-9);
    let mut v_max = report.tdp;
    for (name, _, _) in series {
        if let Some(s) = report.trace.series(name) {
            v_max = v_max.max(s.max_value().unwrap_or(0.0));
        }
    }
    v_max *= 1.06;
    let _ = writeln!(out, "<svg viewBox=\"0 0 {PANEL_W} {h}\" width=\"{PANEL_W}\" height=\"{h}\">");
    axes(out, h, t_max, v_max, "W");
    for (name, color, dash) in series {
        if let Some(s) = report.trace.series(name) {
            polyline(out, s.points(), t_max, v_max, h, color, dash);
        }
    }
    let labels = ["chip power", "test power", "PID cap", "TDP"];
    for (i, ((_, color, _), label)) in series.iter().zip(labels).enumerate() {
        let x = MARGIN + 8.0 + i as f64 * 110.0;
        let _ = writeln!(
            out,
            "<rect x=\"{x:.1}\" y=\"8\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"17\" font-size=\"11\">{label}</text>",
            x + 14.0
        );
    }
    out.push_str("</svg>\n");
    let _ = writeln!(
        out,
        "<p class=\"caption\">test power averages {:.2}% of consumed energy \
         (peak chip power {:.2} W against a {:.0} W TDP, {} cap violations).</p>",
        report.test_energy_share * 100.0,
        report.peak_power,
        report.tdp,
        report.cap_violations
    );
}

/// Simple axis frame with min/max tick labels.
fn axes(out: &mut String, h: f64, t_max: f64, v_max: f64, unit: &str) {
    let (x0, x1, y0, y1) = (MARGIN, PANEL_W - MARGIN, h - MARGIN, MARGIN);
    let _ = writeln!(
        out,
        "<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"#999\"/>\
         <line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x0}\" y2=\"{y1}\" stroke=\"#999\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{x0}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">0</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">{:.0} ms</text>\
         <text x=\"{:.1}\" y=\"{y1}\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">{v_max:.0} {unit}</text>",
        y0 + 12.0,
        x1,
        y0 + 12.0,
        t_max * 1e3,
        x0 - 3.0,
    );
}

/// Blue→red colour ramp for normalised `v ∈ [0, 1]`.
fn ramp(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    let r = (40.0 + 215.0 * v).round() as u8;
    let g = (60.0 + 40.0 * (1.0 - v)).round() as u8;
    let b = (235.0 * (1.0 - v) + 20.0).round() as u8;
    format!("rgb({r},{g},{b})")
}

/// Per-core thermal (or power, when the transient grid is off) heatmap
/// over the recorded timeline. Core rows are grouped when the mesh is
/// large so the panel stays a readable size.
fn render_heatmap_panel(out: &mut String, report: &Report) {
    let snaps = report.state.snapshots();
    if snaps.is_empty() {
        return;
    }
    let cores = report.state.core_count();
    let thermal = snaps.iter().any(|s| s.cores.iter().any(|c| c.temp_k > 0.0));
    let value = |c: &manytest_sim::CoreState| if thermal { c.temp_k } else { c.power_w };
    // Downsample columns and group core rows to bound the cell count.
    let col_stride = snaps.len().div_ceil(96);
    let cols: Vec<&StateSnapshot> = snaps.iter().step_by(col_stride).collect();
    let group = cores.div_ceil(64);
    let rows = cores.div_ceil(group);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &cols {
        for c in &s.cores {
            lo = lo.min(value(c));
            hi = hi.max(value(c));
        }
    }
    let span = (hi - lo).max(1e-12);
    let cell_h: f64 = if rows <= 32 { 6.0 } else { 3.0 };
    let h = rows as f64 * cell_h + 2.0 * MARGIN;
    let cell_w = (PANEL_W - 2.0 * MARGIN) / cols.len() as f64;
    let _ = writeln!(
        out,
        "<h2>{} timeline</h2>\n<svg viewBox=\"0 0 {PANEL_W} {h:.1}\" width=\"{PANEL_W}\" height=\"{h:.1}\">",
        if thermal { "thermal" } else { "per-core power" }
    );
    for (ci, snap) in cols.iter().enumerate() {
        let x = MARGIN + ci as f64 * cell_w;
        for row in 0..rows {
            let start = row * group;
            let end = (start + group).min(cores);
            let mean = snap.cores[start..end].iter().map(value).sum::<f64>() / (end - start) as f64;
            let y = MARGIN + row as f64 * cell_h;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{cell_h}\" fill=\"{}\"/>",
                cell_w + 0.05,
                ramp((mean - lo) / span)
            );
        }
    }
    let unit = if thermal { "K" } else { "W" };
    let _ = writeln!(
        out,
        "<text x=\"{MARGIN}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">t = 0</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">{:.0} ms</text>\
         <text x=\"{:.1}\" y=\"{MARGIN}\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">{lo:.2}–{hi:.2} {unit}</text>",
        h - MARGIN + 12.0,
        PANEL_W - MARGIN,
        h - MARGIN + 12.0,
        snaps.last().map_or(0.0, |s| s.t) * 1e3,
        PANEL_W - MARGIN,
    );
    out.push_str("</svg>\n");
    let _ = writeln!(
        out,
        "<p class=\"caption\">{} cores in {} rows ({} cores per row), \
         {} of {} snapshots shown, blue = {lo:.2} {unit}, red = {hi:.2} {unit}.</p>",
        cores,
        rows,
        group,
        cols.len(),
        snaps.len()
    );
}

/// Core-health Gantt from the event log's suspicion lifecycle.
fn render_health_panel(out: &mut String, report: &Report, cores: usize) {
    // Reconstruct per-core health transitions from the decision telemetry.
    let mut transitions: Vec<(u32, f64, HealthCode)> = Vec::new();
    for rec in report.events.events() {
        let (t, ev) = (rec.t, rec.ev);
        match ev {
            SimEvent::CoreSuspected { core, .. } => {
                transitions.push((core, t, HealthCode::Suspect));
            }
            SimEvent::CoreQuarantined { core, .. } => {
                transitions.push((core, t, HealthCode::Quarantined));
            }
            SimEvent::CoreCleared { core, .. } => {
                transitions.push((core, t, HealthCode::Healthy));
            }
            SimEvent::CoreProbeLaunched { core, streak, .. } if streak == 0 => {
                // Only the round's first probe opens the probation span;
                // later streak probes would just repaint the same colour.
                transitions.push((core, t, HealthCode::Probation));
            }
            SimEvent::CoreReadmitted { core, .. } => {
                transitions.push((core, t, HealthCode::Healthy));
            }
            SimEvent::CoreRequarantined { core, .. } => {
                transitions.push((core, t, HealthCode::Quarantined));
            }
            // lint:allow(event-match-exhaustiveness, reason = "subset contract: the health timeline only tracks the four core-lifecycle transitions")
            _ => {}
        }
    }
    out.push_str("<h2>core health</h2>\n");
    if transitions.is_empty() {
        let _ = writeln!(
            out,
            "<p class=\"caption\">all {cores} cores stayed healthy for the whole run.</p>"
        );
        return;
    }
    let mut touched: Vec<u32> = transitions.iter().map(|&(c, _, _)| c).collect();
    touched.sort_unstable();
    touched.dedup();
    let row_h = 14.0;
    let h = touched.len() as f64 * row_h + 2.0 * MARGIN;
    let t_max = report.sim_seconds.max(1e-9);
    let color = |hc: HealthCode| match hc {
        HealthCode::Healthy => "#2a9d3a",
        HealthCode::Suspect => "#e9c46a",
        HealthCode::Probation => "#f4845f",
        HealthCode::Quarantined => "#d62828",
    };
    let _ = writeln!(out, "<svg viewBox=\"0 0 {PANEL_W} {h:.1}\" width=\"{PANEL_W}\" height=\"{h:.1}\">");
    for (row, &core) in touched.iter().enumerate() {
        let y = MARGIN + row as f64 * row_h;
        let mut segments: Vec<(f64, HealthCode)> = vec![(0.0, HealthCode::Healthy)];
        segments.extend(
            transitions
                .iter()
                .filter(|&&(c, _, _)| c == core)
                .map(|&(_, t, hc)| (t, hc)),
        );
        for (i, &(t0, hc)) in segments.iter().enumerate() {
            let t1 = segments.get(i + 1).map_or(t_max, |&(t, _)| t);
            let (x0, x1) = (x_px(t0, t_max), x_px(t1, t_max));
            let _ = writeln!(
                out,
                "<rect x=\"{x0:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\"/>",
                (x1 - x0).max(0.5),
                row_h - 3.0,
                color(hc)
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#444\" text-anchor=\"end\">core {core}</text>",
            MARGIN - 4.0,
            y + row_h - 5.0
        );
    }
    out.push_str("</svg>\n");
    let _ = writeln!(
        out,
        "<p class=\"caption\">green = healthy, amber = suspect (confirmation retests open), \
         red = quarantined. {} of {cores} cores shown; the rest stayed healthy. \
         Final tally: {} healthy, {} quarantined ({} false), {} suspicions cleared.</p>",
        touched.len(),
        report.healthy_cores_end,
        report.cores_quarantined,
        report.false_quarantines,
        report.cores_cleared
    );
}

/// V/f residency stacked area: fraction of cores at each ladder level
/// (plus power-gated) per recorded snapshot.
fn render_vf_panel(out: &mut String, report: &Report) {
    let snaps = report.state.snapshots();
    if snaps.is_empty() {
        return;
    }
    let cores = report.state.core_count().max(1);
    let max_level = snaps
        .iter()
        .flat_map(|s| s.cores.iter().map(|c| c.vf_level))
        .max()
        .unwrap_or(0)
        .max(0);
    // Level bands: index 0 = gated (−1), then levels 0..=max_level.
    let bands = max_level as usize + 2;
    let palette = [
        "#4d4d4d", "#1f6fb2", "#4fa3d8", "#7fc6ae", "#b7dd8f", "#e9c46a", "#e8871e", "#d62828",
    ];
    let h = 220.0;
    let t_max = report.sim_seconds.max(1e-9);
    out.push_str("<h2>V/f residency</h2>\n");
    let _ = writeln!(out, "<svg viewBox=\"0 0 {PANEL_W} {h}\" width=\"{PANEL_W}\" height=\"{h}\">");
    // Cumulative core fraction per band, bottom (gated) to top.
    let cum = |snap: &StateSnapshot, band: usize| -> f64 {
        snap.cores
            .iter()
            .filter(|c| ((c.vf_level + 1).max(0) as usize) < band)
            .count() as f64
            / cores as f64
    };
    for band in 0..bands {
        let _ = write!(out, "<polygon fill=\"{}\" stroke=\"none\" points=\"", palette[band % palette.len()]);
        for snap in snaps {
            let _ = write!(out, "{:.1},{:.1} ", x_px(snap.t, t_max), y_px(cum(snap, band + 1), 1.0, h));
        }
        for snap in snaps.iter().rev() {
            let _ = write!(out, "{:.1},{:.1} ", x_px(snap.t, t_max), y_px(cum(snap, band), 1.0, h));
        }
        out.push_str("\"/>\n");
    }
    axes(out, h, t_max, 1.0, "of cores");
    for band in 0..bands {
        let x = MARGIN + 8.0 + band as f64 * 90.0;
        let label = if band == 0 {
            "gated".to_owned()
        } else {
            format!("level {}", band - 1)
        };
        let _ = writeln!(
            out,
            "<rect x=\"{x:.1}\" y=\"8\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"17\" font-size=\"11\">{label}</text>",
            palette[band % palette.len()],
            x + 14.0
        );
    }
    out.push_str("</svg>\n");
    let _ = writeln!(
        out,
        "<p class=\"caption\">stacked fraction of the {cores} cores resident at each \
         DVFS level per snapshot (band 0 = power-gated); the scheduler rotates test \
         sessions through the ladder to cover V/f-windowed faults.</p>"
    );
}

/// The deterministic phase-profile counter table.
fn render_profile_panel(out: &mut String, report: &Report) {
    out.push_str(
        "<h2>phase profile</h2>\n\
         <p class=\"caption\">deterministic self-profile: decisions and events counted \
         by the control loop itself (wall-clock per-phase times are printed to stderr \
         by <code>repro report</code> and deliberately kept out of this file).</p>\n\
         <table>\n<tr><th>counter</th><th>value</th></tr>\n",
    );
    for (name, value) in report.profile.entries() {
        let _ = writeln!(out, "<tr><td>{name}</td><td>{value}</td></tr>");
    }
    out.push_str("</table>\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_rows_match_metric_keys_exactly() {
        let rows = metric_rows(&Report::default());
        assert_eq!(rows.len(), METRIC_KEYS.len());
        for ((name, _, _), key) in rows.iter().zip(METRIC_KEYS) {
            assert_eq!(*name, key, "METRIC_KEYS order must match metric_rows");
        }
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = render_prometheus("e3", &Report::default());
        for key in METRIC_KEYS {
            assert!(
                text.contains(&format!("# HELP {key} ")),
                "missing HELP for {key}"
            );
            assert!(text.contains(&format!("{key}{{probe=\"e3\"}} ")), "missing sample for {key}");
        }
        // Every emitted metric name is declared in METRIC_KEYS.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split('{').next().unwrap_or_default();
            assert!(METRIC_KEYS.contains(&name), "undeclared metric `{name}`");
        }
    }

    #[test]
    fn html_report_renders_every_panel() {
        let report = run_report_probe("e3", Scale::Quick).expect("e3 is a known probe");
        let html = render_html("e3", &report);
        for needle in [
            "power vs. TDP",
            "timeline</h2>",
            "core health",
            "V/f residency",
            "phase profile",
            "run metrics",
            "</html>",
        ] {
            assert!(html.contains(needle), "missing `{needle}` in report HTML");
        }
        assert!(html.matches("<svg").count() >= 3, "expected at least 3 SVG panels");
    }

    #[test]
    fn unknown_probe_id_yields_none() {
        assert!(run_report_probe("zz", Scale::Quick).is_none());
        assert!(run_report_probe_timed("zz", Scale::Quick).is_none());
    }

    #[test]
    fn wall_phase_table_lists_every_phase() {
        let wall = [0.5, 0.0, 0.25, 0.125, 0.0625, 0.0625];
        let table = wall_phase_table(&wall);
        for phase in Phase::ALL {
            assert!(table.contains(phase.as_str()), "missing {}", phase.as_str());
        }
        assert!(table.contains("total"));
    }
}
