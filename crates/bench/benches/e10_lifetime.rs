//! Criterion bench regenerating E10 (weakest-link lifetime) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e10_lifetime, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_lifetime");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e10_lifetime(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
