//! The 2-D mesh topology.

use crate::coord::{Coord, NodeId};
use serde::{Deserialize, Serialize};

/// A rectangular 2-D mesh of `width × height` tiles.
///
/// The mesh is the single source of truth for the `Coord ↔ NodeId` mapping
/// and for neighbourhood queries.
///
/// # Examples
///
/// ```
/// use manytest_noc::topology::Mesh2D;
/// use manytest_noc::coord::Coord;
///
/// let mesh = Mesh2D::new(3, 2);
/// let id = mesh.node_id(Coord::new(2, 1));
/// assert_eq!(mesh.coord(id), Coord::new(2, 1));
/// assert_eq!(mesh.node_count(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh2D {
    width: u16,
    height: u16,
}

impl Mesh2D {
    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2D { width, height }
    }

    /// Number of columns.
    pub const fn width(self) -> u16 {
        self.width
    }

    /// Number of rows.
    pub const fn height(self) -> u16 {
        self.height
    }

    /// Total number of tiles.
    pub const fn node_count(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// True if `c` lies inside the mesh.
    pub const fn contains(self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Dense id of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn node_id(self, c: Coord) -> NodeId {
        assert!(self.contains(c), "coordinate {c} outside {self:?}");
        NodeId(c.y as u32 * self.width as u32 + c.x as u32)
    }

    /// Coordinate of a dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this mesh.
    pub fn coord(self, id: NodeId) -> Coord {
        assert!(
            (id.index()) < self.node_count(),
            "node id {id} outside {self:?}"
        );
        Coord {
            x: (id.0 % self.width as u32) as u16,
            y: (id.0 / self.width as u32) as u16,
        }
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(self) -> impl Iterator<Item = Coord> {
        let w = self.width;
        let h = self.height;
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord { x, y }))
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The 2–4 mesh neighbours of `c` (no wraparound).
    pub fn neighbors(self, c: Coord) -> impl Iterator<Item = Coord> {
        let candidates = [
            (c.x.checked_sub(1), Some(c.y)),
            (c.x.checked_add(1), Some(c.y)),
            (Some(c.x), c.y.checked_sub(1)),
            (Some(c.x), c.y.checked_add(1)),
        ];
        candidates
            .into_iter()
            .filter_map(|(x, y)| Some(Coord { x: x?, y: y? }))
            .filter(move |&n| self.contains(n))
    }

    /// Diameter of the mesh (longest minimal route).
    pub const fn diameter(self) -> u32 {
        (self.width as u32 - 1) + (self.height as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip_all_nodes() {
        let mesh = Mesh2D::new(5, 7);
        for c in mesh.coords() {
            assert_eq!(mesh.coord(mesh.node_id(c)), c);
        }
        for id in mesh.node_ids() {
            assert_eq!(mesh.node_id(mesh.coord(id)), id);
        }
    }

    #[test]
    fn coords_row_major_order() {
        let mesh = Mesh2D::new(3, 2);
        let all: Vec<Coord> = mesh.coords().collect();
        assert_eq!(all[0], Coord::new(0, 0));
        assert_eq!(all[1], Coord::new(1, 0));
        assert_eq!(all[3], Coord::new(0, 1));
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn corner_has_two_neighbors() {
        let mesh = Mesh2D::new(4, 4);
        assert_eq!(mesh.neighbors(Coord::new(0, 0)).count(), 2);
        assert_eq!(mesh.neighbors(Coord::new(3, 3)).count(), 2);
    }

    #[test]
    fn edge_has_three_neighbors() {
        let mesh = Mesh2D::new(4, 4);
        assert_eq!(mesh.neighbors(Coord::new(1, 0)).count(), 3);
        assert_eq!(mesh.neighbors(Coord::new(0, 2)).count(), 3);
    }

    #[test]
    fn interior_has_four_neighbors() {
        let mesh = Mesh2D::new(4, 4);
        assert_eq!(mesh.neighbors(Coord::new(2, 2)).count(), 4);
    }

    #[test]
    fn neighbors_are_adjacent_and_inside() {
        let mesh = Mesh2D::new(6, 3);
        for c in mesh.coords() {
            for n in mesh.neighbors(c) {
                assert!(mesh.contains(n));
                assert_eq!(c.manhattan(n), 1);
            }
        }
    }

    #[test]
    fn contains_rejects_outside() {
        let mesh = Mesh2D::new(2, 2);
        assert!(!mesh.contains(Coord::new(2, 0)));
        assert!(!mesh.contains(Coord::new(0, 2)));
        assert!(mesh.contains(Coord::new(1, 1)));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn node_id_panics_outside() {
        Mesh2D::new(2, 2).node_id(Coord::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        Mesh2D::new(0, 4);
    }

    #[test]
    fn diameter_of_known_meshes() {
        assert_eq!(Mesh2D::new(1, 1).diameter(), 0);
        assert_eq!(Mesh2D::new(4, 4).diameter(), 6);
        assert_eq!(Mesh2D::new(12, 12).diameter(), 22);
    }
}
