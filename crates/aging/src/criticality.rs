//! The test-criticality metric.
//!
//! Criticality answers "which core most urgently needs a test?". Following
//! the journal description, it combines two pressures:
//!
//! * **stress pressure** — damage accumulated since the last test,
//!   normalised by the damage a core at reference wear accumulates over one
//!   target test period; heavily used (hot) cores build this up faster, so
//!   the scheduler adapts the per-core test frequency to stress, and
//! * **staleness pressure** — wall-clock time since the last test relative
//!   to the target test period, which guarantees even a completely idle
//!   core is eventually re-tested (latent faults are not utilisation
//!   dependent).
//!
//! The resulting scalar is comparable across cores; the scheduler tests the
//! idle core with the highest value, and the test-aware mapper prefers to
//! *not* occupy high-criticality cores so they stay testable.

use crate::stress::CoreStress;
use serde::{Deserialize, Serialize};

/// Tunable weights of the criticality metric.
///
/// # Examples
///
/// ```
/// use manytest_aging::prelude::*;
///
/// let model = CriticalityModel::default();
/// let fresh = CoreStress::default();
/// // A never-tested core grows more critical as time passes.
/// let early = model.criticality(&fresh, 0.1);
/// let late = model.criticality(&fresh, 10.0);
/// assert!(late > early);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalityModel {
    /// Weight of the stress-pressure term.
    pub stress_weight: f64,
    /// Weight of the staleness-pressure term.
    pub time_weight: f64,
    /// Target test period, seconds: a core at reference wear should be
    /// tested about this often.
    pub target_period: f64,
    /// Damage a reference core accumulates per second (normalises the
    /// stress term); matches [`crate::model::AgingModel::base_rate`].
    pub reference_wear_rate: f64,
}

impl CriticalityModel {
    /// Creates a model with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative, or `target_period` /
    /// `reference_wear_rate` is not strictly positive.
    pub fn new(
        stress_weight: f64,
        time_weight: f64,
        target_period: f64,
        reference_wear_rate: f64,
    ) -> Self {
        assert!(
            stress_weight >= 0.0 && time_weight >= 0.0,
            "weights must be non-negative"
        );
        assert!(target_period > 0.0, "target period must be positive");
        assert!(
            reference_wear_rate > 0.0,
            "reference wear rate must be positive"
        );
        CriticalityModel {
            stress_weight,
            time_weight,
            target_period,
            reference_wear_rate,
        }
    }

    /// The criticality of a core in state `stress` at time `now` (seconds).
    ///
    /// A value of roughly 1 means "one target period worth of pressure has
    /// built up"; the scheduler's queue orders descending on this value.
    pub fn criticality(&self, stress: &CoreStress, now: f64) -> f64 {
        let reference_damage_per_period = self.reference_wear_rate * self.target_period;
        let stress_term = stress.damage_since_test / reference_damage_per_period;
        let time_term = stress.time_since_test(now) / self.target_period;
        self.stress_weight * stress_term + self.time_weight * time_term
    }

    /// True if the core is overdue: criticality exceeds `threshold`.
    pub fn is_overdue(&self, stress: &CoreStress, now: f64, threshold: f64) -> bool {
        self.criticality(stress, now) >= threshold
    }
}

impl Default for CriticalityModel {
    /// Balanced weights with a 100 ms target test period at unit
    /// reference wear. Together with the scheduler's default criticality
    /// threshold of 0.5 this retests a completely idle core roughly every
    /// 125 ms of simulated time; stressed cores retest sooner. (Real
    /// deployments test every few seconds; the period is compressed ~20×
    /// so half-second simulations cover several test rounds.)
    fn default() -> Self {
        CriticalityModel::new(0.6, 0.4, 0.1, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stressed(damage_since_test: f64, last_test_time: f64) -> CoreStress {
        CoreStress {
            total_damage: damage_since_test,
            damage_since_test,
            utilization: 0.5,
            last_test_time,
            tests_completed: 1,
            recoverable_damage: 0.0,
        }
    }

    #[test]
    fn criticality_grows_with_stress() {
        let m = CriticalityModel::default();
        let low = stressed(0.1, 0.0);
        let high = stressed(1.0, 0.0);
        assert!(m.criticality(&high, 1.0) > m.criticality(&low, 1.0));
    }

    #[test]
    fn criticality_grows_with_staleness() {
        let m = CriticalityModel::default();
        let s = stressed(0.5, 0.0);
        assert!(m.criticality(&s, 2.0) > m.criticality(&s, 1.0));
    }

    #[test]
    fn fresh_test_resets_pressure() {
        let m = CriticalityModel::default();
        let worn = stressed(2.0, 0.0);
        let just_tested = stressed(0.0, 1.0);
        assert!(m.criticality(&worn, 1.0) > m.criticality(&just_tested, 1.0));
        assert!(m.criticality(&just_tested, 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_core_is_eventually_overdue() {
        let m = CriticalityModel::default();
        // Zero stress, tested at t=0; only staleness drives criticality.
        let idle = stressed(0.0, 0.0);
        assert!(!m.is_overdue(&idle, 0.01, 1.0));
        assert!(m.is_overdue(&idle, 10.0, 1.0));
    }

    #[test]
    fn one_period_of_reference_wear_scores_about_one() {
        let m = CriticalityModel::default();
        // damage = reference rate × period, tested exactly one period ago.
        let s = stressed(m.reference_wear_rate * m.target_period, 0.0);
        let c = m.criticality(&s, m.target_period);
        assert!((c - (m.stress_weight + m.time_weight)).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_the_metric() {
        let stress_only = CriticalityModel::new(1.0, 0.0, 1.0, 1.0);
        let time_only = CriticalityModel::new(0.0, 1.0, 1.0, 1.0);
        let s = stressed(5.0, 0.0);
        assert_eq!(stress_only.criticality(&s, 100.0), 5.0);
        assert_eq!(time_only.criticality(&s, 100.0), 100.0);
    }

    #[test]
    fn never_tested_core_counts_from_origin() {
        let m = CriticalityModel::new(0.0, 1.0, 1.0, 1.0);
        let never = CoreStress::default();
        assert_eq!(m.criticality(&never, 7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "target period")]
    fn zero_period_panics() {
        CriticalityModel::new(1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        CriticalityModel::new(-0.1, 1.0, 1.0, 1.0);
    }
}
