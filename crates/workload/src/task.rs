//! The task-graph application model.
//!
//! An application is a DAG: nodes carry compute volume (instructions),
//! directed edges carry communication volume (bits) sent from producer to
//! consumer when the producer finishes. One task maps to one core, so an
//! application needs `task_count()` cores — the same granularity the
//! paper's runtime mapper works at.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Index of a task within its graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a vector index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task: a compute volume in instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Instructions this task must execute.
    pub instructions: u64,
}

/// A communication edge: `bits` flow from `from` to `to` when `from`
/// completes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer task.
    pub from: TaskId,
    /// Consumer task.
    pub to: TaskId,
    /// Message volume, bits.
    pub bits: f64,
}

/// Validation failure of a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The graph has no tasks.
    Empty,
    /// An edge references a task id outside the graph.
    DanglingEdge(Edge),
    /// An edge connects a task to itself.
    SelfLoop(TaskId),
    /// The edges form a cycle (not a DAG).
    Cycle,
    /// An edge has a negative or non-finite volume.
    InvalidVolume(Edge),
    /// A task has zero instructions.
    EmptyTask(TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::DanglingEdge(e) => {
                write!(f, "edge {} -> {} references a missing task", e.from, e.to)
            }
            GraphError::SelfLoop(t) => write!(f, "task {t} has a self-loop"),
            GraphError::Cycle => write!(f, "task graph contains a cycle"),
            GraphError::InvalidVolume(e) => {
                write!(f, "edge {} -> {} has invalid volume {}", e.from, e.to, e.bits)
            }
            GraphError::EmptyTask(t) => write!(f, "task {t} has zero instructions"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A named, validated task-graph application.
///
/// # Examples
///
/// ```
/// use manytest_workload::task::{Task, TaskGraph, TaskId};
///
/// let mut g = TaskGraph::new("pipeline");
/// let a = g.add_task(Task { instructions: 1_000_000 });
/// let b = g.add_task(Task { instructions: 2_000_000 });
/// g.add_edge(a, b, 64_000.0);
/// assert!(g.validate().is_ok());
/// assert_eq!(g.task_count(), 2);
/// assert_eq!(g.topological_order().unwrap(), vec![a, b]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl TaskGraph {
    /// Creates an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Adds a directed communication edge of `bits` bits.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, bits: f64) {
        self.edges.push(Edge { from, to, bits });
    }

    /// Number of tasks (= cores the application needs).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The task with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of direct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.to == id)
            .map(|e| e.from)
    }

    /// Ids of direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.from == id)
            .map(|e| e.to)
    }

    /// Outgoing edges of `id`.
    pub fn out_edges(&self, id: TaskId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// Total compute volume, instructions.
    pub fn total_instructions(&self) -> u64 {
        self.tasks.iter().map(|t| t.instructions).sum()
    }

    /// Total communication volume, bits.
    pub fn total_bits(&self) -> f64 {
        self.edges.iter().map(|e| e.bits).sum()
    }

    /// Tasks with no predecessors (the entry layer).
    // lint:effect(alloc, reason = "admission lane materializes the root set once per admitted app")
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.tasks.len() as u32)
            .map(TaskId)
            .filter(|&t| self.predecessors(t).next().is_none())
            .collect()
    }

    /// Checks every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.instructions == 0 {
                return Err(GraphError::EmptyTask(TaskId(i as u32)));
            }
        }
        for e in &self.edges {
            if e.from.index() >= self.tasks.len() || e.to.index() >= self.tasks.len() {
                return Err(GraphError::DanglingEdge(*e));
            }
            if e.from == e.to {
                return Err(GraphError::SelfLoop(e.from));
            }
            if !e.bits.is_finite() || e.bits < 0.0 {
                return Err(GraphError::InvalidVolume(*e));
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Kahn topological order of the tasks.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the edges form a cycle, or
    /// [`GraphError::DanglingEdge`] if an edge points outside the graph.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut in_degree = vec![0usize; n];
        for e in &self.edges {
            if e.to.index() >= n || e.from.index() >= n {
                return Err(GraphError::DanglingEdge(*e));
            }
            in_degree[e.to.index()] += 1;
        }
        let mut queue: VecDeque<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| in_degree[t.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for s in self.successors(t) {
                in_degree[s.index()] -= 1;
                if in_degree[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Length (in tasks) of the longest dependency chain.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; validate first.
    pub fn critical_path_len(&self) -> usize {
        let order = self.topological_order().expect("graph must be a DAG");
        let mut depth = vec![1usize; self.tasks.len()];
        for &t in &order {
            for s in self.successors(t) {
                depth[s.index()] = depth[s.index()].max(depth[t.index()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task(Task { instructions: 100 });
        let b = g.add_task(Task { instructions: 100 });
        let c = g.add_task(Task { instructions: 100 });
        let d = g.add_task(Task { instructions: 100 });
        g.add_edge(a, b, 10.0);
        g.add_edge(a, c, 20.0);
        g.add_edge(b, d, 30.0);
        g.add_edge(c, d, 40.0);
        g
    }

    #[test]
    fn diamond_validates() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    fn totals() {
        let g = diamond();
        assert_eq!(g.total_instructions(), 400);
        assert_eq!(g.total_bits(), 100.0);
        assert_eq!(g.task_count(), 4);
    }

    #[test]
    fn roots_and_neighbors() {
        let g = diamond();
        assert_eq!(g.roots(), vec![TaskId(0)]);
        let succ: Vec<TaskId> = g.successors(TaskId(0)).collect();
        assert_eq!(succ, vec![TaskId(1), TaskId(2)]);
        let preds: Vec<TaskId> = g.predecessors(TaskId(3)).collect();
        assert_eq!(preds, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for e in g.edges() {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn critical_path_of_diamond_is_three() {
        assert_eq!(diamond().critical_path_len(), 3);
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::new("cycle");
        let a = g.add_task(Task { instructions: 1 });
        let b = g.add_task(Task { instructions: 1 });
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, 1.0);
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn self_loop_is_detected() {
        let mut g = TaskGraph::new("loop");
        let a = g.add_task(Task { instructions: 1 });
        g.add_edge(a, a, 1.0);
        assert_eq!(g.validate(), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn dangling_edge_is_detected() {
        let mut g = TaskGraph::new("dangling");
        let a = g.add_task(Task { instructions: 1 });
        g.add_edge(a, TaskId(9), 1.0);
        assert!(matches!(g.validate(), Err(GraphError::DanglingEdge(_))));
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(TaskGraph::new("empty").validate(), Err(GraphError::Empty));
    }

    #[test]
    fn zero_instruction_task_is_rejected() {
        let mut g = TaskGraph::new("zero");
        g.add_task(Task { instructions: 0 });
        assert_eq!(g.validate(), Err(GraphError::EmptyTask(TaskId(0))));
    }

    #[test]
    fn negative_volume_is_rejected() {
        let mut g = TaskGraph::new("neg");
        let a = g.add_task(Task { instructions: 1 });
        let b = g.add_task(Task { instructions: 1 });
        g.add_edge(a, b, -5.0);
        assert!(matches!(g.validate(), Err(GraphError::InvalidVolume(_))));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(GraphError::Cycle.to_string().contains("cycle"));
        assert!(GraphError::Empty.to_string().contains("no tasks"));
    }

    #[test]
    fn independent_tasks_have_trivial_critical_path() {
        let mut g = TaskGraph::new("par");
        for _ in 0..5 {
            g.add_task(Task { instructions: 10 });
        }
        assert_eq!(g.critical_path_len(), 1);
        assert_eq!(g.roots().len(), 5);
    }
}
