//! Regenerates every figure/table of the (reconstructed) evaluation.
//!
//! ```sh
//! cargo run -p manytest-bench --bin repro --release            # everything
//! cargo run -p manytest-bench --bin repro --release -- e1 e5   # a subset (e1..e12, a1..a6)
//! cargo run -p manytest-bench --bin repro --release -- --quick
//! cargo run -p manytest-bench --bin repro --release -- --jobs 4
//! cargo run -p manytest-bench --bin repro --release -- e3 --events telemetry/
//! cargo run -p manytest-bench --bin repro --release -- explain e3
//! cargo run -p manytest-bench --bin repro --release -- report e11 --out report/
//! cargo run -p manytest-bench --bin repro --release -- bench kernels --grids 8,16,32,64
//! cargo run -p manytest-bench --bin repro --release -- trace e3 --out report/
//! cargo run -p manytest-bench --bin repro --release -- diff e3 e11
//! cargo run -p manytest-bench --bin repro --release -- diff e11 --seed2 111
//! cargo run -p manytest-bench --bin repro --release -- --quick --ledger --progress
//! cargo run -p manytest-bench --bin repro --release -- runs list
//! cargo run -p manytest-bench --bin repro --release -- runs show 3
//! cargo run -p manytest-bench --bin repro --release -- regress --quick
//! ```
//!
//! Worker count: `--jobs N` (or `--jobs=N`) > the `MANYTEST_JOBS`
//! environment variable > the machine's available parallelism. Tables go
//! to stdout and are byte-identical for every worker count; the timing
//! footer goes to stderr and `BENCH_repro.json`.
//!
//! `--events DIR` additionally runs one instrumented probe per selected
//! experiment and writes its decision telemetry to `DIR/<id>.jsonl`,
//! after validating the event counts against the run's report.
//! `explain <id>` replaces the tables entirely: it runs the probe for
//! one experiment and prints a human-readable decision timeline plus
//! counter/histogram summaries.
//! `report <id> [--out DIR]` runs the probe with the flight recorder on
//! and renders `DIR/<id>.html` (SVG panels) plus `DIR/metrics.prom`,
//! both byte-identical across worker counts; per-phase wall times land
//! on stderr.
//! `trace <id> [--out DIR]` exports the probe's event stream as a
//! Perfetto/Chrome trace (`DIR/<id>.trace.json`): one track per core,
//! one per control-loop phase, SBST sessions as duration slices, and a
//! flow arrow along every cause link. Byte-identical across worker
//! counts.
//! `diff <a> <b>` (or `diff <id> --seed2 S`) runs two probes and reports
//! the first diverging event with both causal chains, then the
//! downstream per-kind and aggregate drift. Identical runs print an
//! explicit zero-divergence verdict (CI's self-diff gate).
//!
//! `--ledger` (or `--ledger=DIR`, or the `MANYTEST_LEDGER_DIR`
//! environment variable) switches on the run ledger: every simulation
//! run writes a manifest under the ledger directory and its full report
//! into a content-addressed cache, and identical configurations replay
//! from cache byte-identically instead of re-simulating. `runs list`
//! (add `--failed` for failures only), `runs show <ref>` and `runs gc`
//! inspect and clean the ledger. `--progress` streams heartbeat frames
//! to stderr (percent/ETA per running job, event counts, and a STALLED
//! verdict for jobs silent longer than `MANYTEST_STALL_SECONDS`).
//! `regress` re-runs a small probe set at quick scale and exits nonzero
//! if any watched aggregate drifted from the committed baseline.

use manytest_bench::diff::{run_diff, DiffTarget};
use manytest_bench::events::{explain, write_event_logs, PROBE_IDS};
use manytest_bench::kernels::{
    kernels_json, print_kernels, run_kernels, wall_kernels_table, DEFAULT_GRIDS, QUICK_GRIDS,
};
use manytest_bench::report::{run_report_probe_timed, wall_phase_table, write_report_files};
use manytest_bench::runner::{
    default_jobs, job_stats, jobs_executed, panic_message, Batch, JobStats,
};
use manytest_bench::trace::{run_trace, write_trace_file};
use manytest_bench::{ledger, progress, regress};
use manytest_bench::*;
use manytest_core::Report;
use std::path::PathBuf;
use std::time::Instant;

/// Per-experiment timing record for `BENCH_repro.json`.
struct Timing {
    id: &'static str,
    /// Serial-equivalent simulation runs the experiment submitted.
    runs: u64,
    wall_seconds: f64,
    /// Summed per-job wall-clock seconds (serial-equivalent busy time).
    busy_seconds: f64,
    /// Mean number of jobs queued behind each job as it started.
    mean_queue_depth: f64,
}

fn parse_jobs(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

fn parse_events_dir(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--events" {
            return it.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--events=") {
            return Some(PathBuf::from(v));
        }
    }
    None
}

/// `--grids 8,16,32` / `--grids=8,16,32` / `--grid 64` (one edge).
/// Exits with usage on an unparsable edge list.
fn parse_grids(args: &[String]) -> Option<Vec<u16>> {
    let mut list: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--grids" || a == "--grid" {
            list = it.next().map(String::as_str);
        } else if let Some(v) = a.strip_prefix("--grids=").or_else(|| a.strip_prefix("--grid=")) {
            list = Some(v);
        }
    }
    let list = list?;
    let grids: Result<Vec<u16>, _> = list.split(',').map(|g| g.trim().parse::<u16>()).collect();
    match grids {
        Ok(g) if !g.is_empty() && g.iter().all(|&e| e >= 2) => Some(g),
        _ => {
            eprintln!("error: --grids wants a comma-separated list of mesh edges >= 2, got '{list}'");
            std::process::exit(2);
        }
    }
}

/// `--seed2 S` / `--seed2=S`. Exits with usage on an unparsable seed.
fn parse_seed2(args: &[String]) -> Option<u64> {
    let mut raw: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed2" {
            raw = it.next().map(String::as_str);
        } else if let Some(v) = a.strip_prefix("--seed2=") {
            raw = Some(v);
        }
    }
    let raw = raw?;
    match raw.parse() {
        Ok(s) => Some(s),
        Err(_) => {
            eprintln!("error: --seed2 wants an unsigned integer seed, got '{raw}'");
            std::process::exit(2);
        }
    }
}

/// `--ledger` (bare: `runs/`) or `--ledger=DIR`. The flag switches the
/// run ledger on; without it (and without `MANYTEST_LEDGER_DIR`) no
/// manifests or cache blobs are written.
fn parse_ledger(args: &[String]) -> Option<PathBuf> {
    let mut dir = None;
    for a in args {
        if a == "--ledger" {
            dir = Some(PathBuf::from("runs"));
        } else if let Some(v) = a.strip_prefix("--ledger=") {
            dir = Some(PathBuf::from(v));
        }
    }
    dir
}

fn parse_out_dir(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            return it.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--out=") {
            return Some(PathBuf::from(v));
        }
    }
    None
}

fn write_bench_json(path: &str, jobs: usize, scale: Scale, timings: &[Timing]) {
    let total_runs: u64 = timings.iter().map(|t| t.runs).sum();
    let total_wall: f64 = timings.iter().map(|t| t.wall_seconds).sum();
    let total_busy: f64 = timings.iter().map(|t| t.busy_seconds).sum();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if scale == Scale::Quick { "quick" } else { "full" }
    ));
    json.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"runs\": {}, \"wall_seconds\": {:.6}, \
             \"busy_seconds\": {:.6}, \"mean_queue_depth\": {:.3}}}{}\n",
            t.id,
            t.runs,
            t.wall_seconds,
            t.busy_seconds,
            t.mean_queue_depth,
            if i + 1 == timings.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_runs\": {total_runs},\n"));
    json.push_str(&format!("  \"total_wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!("  \"total_busy_seconds\": {total_busy:.6}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // 0 would mean "decide per batch"; resolving here keeps the footer and
    // JSON honest about the worker count actually used everywhere.
    let jobs = parse_jobs(&args).filter(|&n| n > 0).unwrap_or_else(default_jobs);
    if let Some(dir) = parse_ledger(&args) {
        ledger::set_dir(Some(dir));
    }
    ledger::set_jobs(jobs as u64);
    if args.iter().any(|a| a == "--progress") {
        progress::enable();
    }
    let events_dir = parse_events_dir(&args);
    let out_dir = parse_out_dir(&args);
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs"
            || a == "--events"
            || a == "--out"
            || a == "--grids"
            || a == "--grid"
            || a == "--seed2"
        {
            it.next(); // the flag's value is not an experiment id
        } else if !a.starts_with("--") {
            positional.push(a.as_str());
        }
    }

    // `repro explain <id>`: one probe, human-readable decision timeline.
    if positional.first() == Some(&"explain") {
        let Some(&id) = positional.get(1) else {
            eprintln!("usage: repro explain <experiment id> [--quick]");
            eprintln!("known ids: {}", PROBE_IDS.join(" "));
            std::process::exit(2);
        };
        match explain(id, scale) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("unknown experiment id '{id}'; known ids: {}", PROBE_IDS.join(" "));
                std::process::exit(2);
            }
        }
        return;
    }

    // `repro report <id> [--out DIR]`: one flight-recorded probe rendered
    // as a self-contained HTML report plus Prometheus-style metrics. The
    // files are byte-identical across worker counts and reruns; the
    // per-phase wall-clock table goes to stderr only.
    if positional.first() == Some(&"report") {
        let Some(&id) = positional.get(1) else {
            eprintln!("usage: repro report <experiment id> [--out DIR] [--quick]");
            eprintln!("known ids: {}", PROBE_IDS.join(" "));
            std::process::exit(2);
        };
        let Some((report, wall)) = run_report_probe_timed(id, scale) else {
            eprintln!("unknown experiment id '{id}'; known ids: {}", PROBE_IDS.join(" "));
            std::process::exit(2);
        };
        let dir = out_dir.unwrap_or_else(|| PathBuf::from("report"));
        match write_report_files(&dir, id, &report) {
            Ok((html, prom)) => {
                println!("{}", report.summary());
                eprintln!("# report -> {}", html.display());
                eprintln!("# metrics -> {}", prom.display());
                eprint!("{}", wall_phase_table(&wall));
            }
            Err(e) => {
                eprintln!("error: report generation failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // `repro trace <id> [--out DIR]`: one probe exported as a
    // Perfetto/Chrome trace with flow arrows along the cause links. The
    // file is byte-identical across worker counts (CI diffs it).
    if positional.first() == Some(&"trace") {
        let Some(&id) = positional.get(1) else {
            eprintln!("usage: repro trace <experiment id> [--out DIR] [--quick]");
            eprintln!("known ids: {}", PROBE_IDS.join(" "));
            std::process::exit(2);
        };
        let Some((report, _json)) = run_trace(id, scale) else {
            eprintln!("unknown experiment id '{id}'; known ids: {}", PROBE_IDS.join(" "));
            std::process::exit(2);
        };
        let dir = out_dir.unwrap_or_else(|| PathBuf::from("report"));
        match write_trace_file(&dir, id, &report) {
            Ok((path, flows)) => {
                println!("{}", report.summary());
                eprintln!("# trace -> {} ({} events, {flows} cause-link flows)", path.display(), report.events.len());
                eprintln!("# open in https://ui.perfetto.dev or chrome://tracing");
            }
            Err(e) => {
                eprintln!("error: trace export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // `repro diff <a> <b>` / `repro diff <id> --seed2 S`: first-divergence
    // run diff with causal chains and downstream drift.
    if positional.first() == Some(&"diff") {
        let seed2 = parse_seed2(&args);
        let (id, target) = match (positional.get(1), positional.get(2), seed2) {
            (Some(&id), None, Some(s)) => (id, DiffTarget::Seed(s)),
            (Some(&id), Some(&other), None) => (id, DiffTarget::Probe(other)),
            (Some(&id), None, None) => (id, DiffTarget::Probe(id)),
            _ => {
                eprintln!("usage: repro diff <id a> [<id b>] [--seed2 S] [--quick]");
                eprintln!("       (one id alone self-diffs; --seed2 re-runs <id a> reseeded)");
                eprintln!("known ids: {}", PROBE_IDS.join(" "));
                std::process::exit(2);
            }
        };
        match run_diff(id, target, scale) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("unknown experiment id; known ids: {}", PROBE_IDS.join(" "));
                std::process::exit(2);
            }
        }
        return;
    }

    // `repro runs list|show|gc`: inspect the on-disk run ledger.
    if positional.first() == Some(&"runs") {
        let Some(dir) = ledger::dir() else {
            eprintln!("error: no ledger directory — pass --ledger[=DIR] or set MANYTEST_LEDGER_DIR");
            std::process::exit(2);
        };
        match positional.get(1) {
            Some(&"list") => {
                let failed_only = args.iter().any(|a| a == "--failed");
                print!("{}", ledger::render_runs_list(&dir, failed_only));
            }
            Some(&"show") => {
                let Some(&reference) = positional.get(2) else {
                    eprintln!("usage: repro runs show <seq | config-hash prefix | probe id | label>");
                    std::process::exit(2);
                };
                match ledger::render_runs_show(&dir, reference) {
                    Some(text) => print!("{text}"),
                    None => {
                        eprintln!("error: no run matching '{reference}' in {}", dir.display());
                        std::process::exit(1);
                    }
                }
            }
            Some(&"gc") => print!("{}", ledger::gc(&dir)),
            _ => {
                eprintln!("usage: repro runs <list [--failed] | show <ref> | gc> [--ledger=DIR]");
                std::process::exit(2);
            }
        }
        return;
    }

    // `repro regress [--inject-drift]`: the cross-run regression watch.
    // Exits nonzero on drift so CI can gate on it; `--inject-drift` is
    // the self-test hook proving the gate can fail.
    if positional.first() == Some(&"regress") {
        let inject = args.iter().any(|a| a == "--inject-drift");
        let ok = regress::run_regress(jobs, inject);
        std::process::exit(if ok { 0 } else { 1 });
    }

    // `repro stall-demo`: a deliberately quiet job plus a deliberately
    // panicking one, with the heartbeat renderer forced on — exercises
    // the stall watchdog and failure manifests end to end. Exits 0 by
    // design (the panic is the fixture, not a failure of the demo).
    if positional.first() == Some(&"stall-demo") {
        progress::enable();
        let sleep_s: f64 = std::env::var("MANYTEST_STALL_DEMO_SECONDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let mut batch = Batch::new();
        batch.push("demo/sleeper", move || {
            std::thread::sleep(std::time::Duration::from_secs_f64(sleep_s));
            Report::default()
        });
        batch.push("demo/panic", || -> Report {
            panic!("deliberate stall-demo failure")
        });
        let (outcomes, _) = batch.run_outcomes(jobs.max(2));
        let failed = outcomes.iter().filter(|o| o.is_failed()).count();
        println!("stall-demo: {} job(s), {failed} failed as scripted", outcomes.len());
        return;
    }

    // `repro bench kernels [--grids 8,16,32,64 | --grid N]`: the
    // control-loop scaling sweep. The stdout table carries only the
    // deterministic phase-profile counters; wall-clock lands on stderr
    // and in BENCH_kernels.json.
    if positional.first() == Some(&"bench") {
        if positional.get(1) != Some(&"kernels") {
            eprintln!("usage: repro bench kernels [--grids N,N,...] [--grid N] [--quick]");
            std::process::exit(2);
        }
        let grids: Vec<u16> = parse_grids(&args).unwrap_or_else(|| {
            if quick {
                QUICK_GRIDS.to_vec()
            } else {
                DEFAULT_GRIDS.to_vec()
            }
        });
        let runs = run_kernels(&grids, scale);
        print_kernels(&runs, scale);
        eprint!("{}", wall_kernels_table(&runs));
        if let Err(e) = std::fs::write("BENCH_kernels.json", kernels_json(&runs, scale)) {
            eprintln!("warning: could not write BENCH_kernels.json: {e}");
        } else {
            eprintln!("# counters + wall -> BENCH_kernels.json");
        }
        return;
    }
    let wanted = positional;

    let all = wanted.is_empty();
    let want = |id: &str| all || wanted.contains(&id);

    println!("# manytest reproduction — DATE 2015 power-aware online testing");
    println!(
        "# scale: {:?} (pass --quick for short runs; select with ids e1..e12 and a1..a6)\n",
        scale
    );

    let mut timings: Vec<Timing> = Vec::new();
    // Panic isolation at the experiment level: a panicking experiment is
    // recorded here and the remaining experiments still run; the failure
    // table prints after the tables and the process exits nonzero. The
    // table is byte-identical across worker counts because the batch
    // runner re-raises the first panic in *submission* order.
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    let mut timed = |id: &'static str, run: &mut dyn FnMut()| {
        let jobs_before = jobs_executed();
        let stats_before: JobStats = job_stats();
        let start = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut *run));
        if let Err(payload) = outcome {
            failures.push((id, panic_message(payload.as_ref())));
        }
        let stats_after = job_stats();
        let runs = jobs_executed() - jobs_before;
        timings.push(Timing {
            id,
            runs,
            wall_seconds: start.elapsed().as_secs_f64(),
            busy_seconds: stats_after.busy_seconds - stats_before.busy_seconds,
            mean_queue_depth: if runs == 0 {
                0.0
            } else {
                (stats_after.queue_depth_sum - stats_before.queue_depth_sum) / runs as f64
            },
        });
    };

    if want("e1") {
        timed("e1", &mut || print_e1(&e1_tech_sweep(scale, jobs)));
    }
    if want("e2") {
        timed("e2", &mut || print_e2(&e2_power_trace(scale, jobs)));
    }
    if want("e3") {
        timed("e3", &mut || print_e3(&e3_test_power_share(scale, jobs)));
    }
    if want("e4") {
        timed("e4", &mut || print_e4(&e4_test_interval_vs_load(scale, jobs)));
    }
    if want("e5") {
        timed("e5", &mut || print_e5(&e5_mapping_compare(scale, jobs)));
    }
    if want("e6") {
        timed("e6", &mut || print_e6(&e6_criticality_adaptation(scale, jobs)));
    }
    if want("e7") {
        timed("e7", &mut || print_e7(&e7_vf_coverage(scale, jobs)));
    }
    if want("e8") {
        timed("e8", &mut || print_e8(&e8_pid_vs_naive(scale, jobs)));
    }
    if want("e9") {
        timed("e9", &mut || print_e9(&e9_dark_silicon(scale, jobs)));
    }
    if want("e10") {
        timed("e10", &mut || print_e10(&e10_lifetime(scale, jobs)));
    }
    if want("e11") {
        timed("e11", &mut || print_e11(&e11_fault_response(scale, jobs)));
    }
    if want("e12") {
        timed("e12", &mut || print_e12(&e12_core_lifecycle(scale, jobs)));
    }
    if want("a1") {
        timed("a1", &mut || print_a1(&a1_intrusiveness(scale, jobs)));
    }
    if want("a2") {
        timed("a2", &mut || print_a2(&a2_criticality_weights(scale, jobs)));
    }
    if want("a3") {
        timed("a3", &mut || print_a3(&a3_abort_overhead(scale, jobs)));
    }
    if want("a4") {
        timed("a4", &mut || print_a4(&a4_level_rotation(scale, jobs)));
    }
    if want("a5") {
        timed("a5", &mut || print_a5(&a5_thermal_model(scale, jobs)));
    }
    if want("a6") {
        timed("a6", &mut || print_a6(&a6_contention(scale, jobs)));
    }

    // Telemetry dump: one instrumented probe per selected experiment.
    // Runs after the tables so stdout stays byte-identical with and
    // without --events (the determinism test diffs stdout).
    if let Some(dir) = events_dir {
        let ids: Vec<&str> = PROBE_IDS.iter().copied().filter(|id| want(id)).collect();
        match write_event_logs(&dir, &ids, scale, jobs) {
            Ok(written) => {
                eprintln!("# event logs -> {}", dir.display());
                for (id, count) in written {
                    eprintln!("#   {id}.jsonl: {count} events (validated)");
                }
            }
            Err(e) => {
                eprintln!("error: event telemetry failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Timing lands on stderr + JSON so stdout stays byte-identical across
    // worker counts (the determinism test diffs stdout).
    let total_runs: u64 = timings.iter().map(|t| t.runs).sum();
    let total_wall: f64 = timings.iter().map(|t| t.wall_seconds).sum();
    let total_busy: f64 = timings.iter().map(|t| t.busy_seconds).sum();
    eprintln!("# timing (jobs = {jobs})");
    eprintln!("# id    runs  wall_s   busy_s  mean_qdepth");
    for t in &timings {
        eprintln!(
            "# {:<5} {:>4}  {:>7.3}  {:>7.3}  {:>11.2}",
            t.id, t.runs, t.wall_seconds, t.busy_seconds, t.mean_queue_depth
        );
    }
    eprintln!("# total {total_runs:>4}  {total_wall:>7.3}  {total_busy:>7.3}");
    write_bench_json("BENCH_repro.json", jobs, scale, &timings);
    if !failures.is_empty() {
        println!("## failed experiments ({} of {})", failures.len(), timings.len());
        for (id, msg) in &failures {
            println!("{id:<5}  {}", msg.lines().next().unwrap_or("<empty panic payload>"));
        }
        std::process::exit(1);
    }
}
