//! Runtime application mapping: baseline and test-aware strategies.
//!
//! When an application arrives, the runtime mapper must pick *which* free
//! cores execute its tasks. This crate implements the two strategies the
//! paper compares:
//!
//! * [`baseline::ConaMapper`] — the conventional contiguous mapper (CoNA /
//!   SHiC style): choose the smallest square region with enough free cores
//!   ([`manytest_noc::region`]), then place communicating tasks next to
//!   each other ([`contiguous`]). It is *oblivious* to core utilisation
//!   history and test criticality.
//! * [`firstfit::FirstFitMapper`] — the naive non-contiguous lower bound
//!   (task *i* on the *i*-th free core), showing what contiguity buys.
//! * [`tum::TestAwareMapper`] — the paper's **test-aware
//!   utilization-oriented mapping**: the same contiguous machinery, but
//!   node desirability now penalises (a) cores with high test criticality,
//!   so they remain idle and *testable*, and (b) cores with high recent
//!   utilisation, spreading stress.
//!
//! Both implement the [`Mapper`] trait and read the platform state through
//! a [`MapContext`] snapshot, so the simulator can swap them per run.
//!
//! # Examples
//!
//! ```
//! use manytest_map::prelude::*;
//! use manytest_noc::Mesh2D;
//! use manytest_workload::presets;
//!
//! let mesh = Mesh2D::new(8, 8);
//! let ctx = MapContext::all_free(mesh);
//! let app = presets::pip();
//! let mapping = ConaMapper::new().map(&ctx, &app).expect("fits");
//! assert_eq!(mapping.len(), app.task_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod contiguous;
pub mod firstfit;
pub mod context;
pub mod mapping;
pub mod tum;

pub use baseline::ConaMapper;
pub use firstfit::FirstFitMapper;
pub use context::MapContext;
pub use mapping::Mapping;
pub use tum::TestAwareMapper;

use manytest_workload::TaskGraph;

/// A runtime mapping strategy.
///
/// Returns `None` when the application cannot currently be admitted (not
/// enough free cores); the caller queues it and retries later.
pub trait Mapper {
    /// Maps `app` onto free cores described by `ctx`.
    fn map(&self, ctx: &MapContext, app: &TaskGraph) -> Option<Mapping>;

    /// Re-maps a *running* application displaced by a core quarantine.
    ///
    /// The caller builds `ctx` so that the app's own surviving nodes are
    /// marked free (they are available to the new placement) while the
    /// quarantined node is unhealthy. The default is a fresh [`Mapper::map`]
    /// — a contiguous placement on the healthy pool; strategies with
    /// migration-specific logic (e.g. minimising moved state) can
    /// override.
    fn remap(&self, ctx: &MapContext, app: &TaskGraph) -> Option<Mapping> {
        self.map(ctx, app)
    }

    /// Human-readable strategy name (for reports).
    fn name(&self) -> &str;
}

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::baseline::ConaMapper;
    pub use crate::firstfit::FirstFitMapper;
    pub use crate::context::MapContext;
    pub use crate::mapping::Mapping;
    pub use crate::tum::TestAwareMapper;
    pub use crate::Mapper;
}
