//! Classic NoC benchmark task graphs.
//!
//! These four applications appear throughout the runtime-mapping literature
//! this paper belongs to (CoNA, SHiC, MapPro all evaluate on them). The
//! communication structures and relative volumes follow the published
//! graphs (volumes originally in MB/s; we scale one "frame" of traffic to
//! bits). Compute volumes are synthesized proportional to each task's
//! traffic, which preserves the pipeline balance that matters to mapping.

use crate::task::{Task, TaskGraph, TaskId};

/// Scales a published MB/s figure to bits for one scheduling quantum.
fn mbps_to_bits(mbps: f64) -> f64 {
    // One millisecond of the published rate: 1 MB/s → 8000 bits/ms.
    mbps * 8_000.0
}

/// Instructions synthesized for a task that handles `mbps_total` MB/s of
/// traffic: heavier communicators compute more in these video pipelines.
fn instructions_for(mbps_total: f64) -> u64 {
    (1_000_000.0 + mbps_total * 20_000.0).round() as u64
}

fn build(name: &str, volumes: &[(u32, u32, f64)], task_count: u32) -> TaskGraph {
    let mut g = TaskGraph::new(name);
    let mut totals = vec![0.0f64; task_count as usize];
    for &(from, to, mbps) in volumes {
        totals[from as usize] += mbps;
        totals[to as usize] += mbps;
    }
    for t in 0..task_count {
        g.add_task(Task {
            instructions: instructions_for(totals[t as usize]),
        });
    }
    for &(from, to, mbps) in volumes {
        g.add_edge(TaskId(from), TaskId(to), mbps_to_bits(mbps));
    }
    debug_assert!(g.validate().is_ok(), "preset {name} must validate");
    g
}

/// Video Object Plane Decoder — 12 tasks, the most cited NoC benchmark.
pub fn vopd() -> TaskGraph {
    build(
        "vopd",
        &[
            (0, 1, 70.0),   // vld -> run-length decoder
            (1, 2, 362.0),  // rld -> inverse scan
            (2, 3, 362.0),  // iscan -> ac/dc prediction
            (3, 4, 362.0),  // acdc -> iquant
            (4, 5, 357.0),  // iquant -> idct
            (5, 6, 353.0),  // idct -> up-sampling
            (6, 7, 300.0),  // upsamp -> vop reconstruction
            (7, 8, 313.0),  // vop rec -> padding
            (8, 9, 313.0),  // padding -> vop memory
            (0, 10, 49.0),  // vld -> stripe memory
            (10, 3, 27.0),  // stripe memory -> acdc
            (9, 11, 500.0), // vop memory -> display/out
            (4, 11, 16.0),  // iquant side-channel -> out
        ],
        12,
    )
}

/// MPEG-4 decoder — 12 tasks with a memory-hub structure.
pub fn mpeg4() -> TaskGraph {
    build(
        "mpeg4",
        &[
            (0, 2, 60.0),   // vu -> med cpu
            (1, 2, 40.0),   // au -> med cpu
            (2, 3, 600.0),  // med cpu -> sdram
            (3, 4, 40.0),   // sdram -> rast
            (2, 5, 250.0),  // med cpu -> idct etc.
            (5, 3, 500.0),  // idct -> sdram
            (3, 6, 173.0),  // sdram -> up samp
            (6, 7, 500.0),  // up samp -> sram2
            (7, 8, 447.0),  // sram2 -> bab
            (8, 9, 90.0),   // bab -> risc
            (9, 10, 50.0),  // risc -> adsp
            (10, 11, 120.0),// adsp -> out
        ],
        12,
    )
}

/// Multi-Window Display — 12 tasks, two merging pipelines.
pub fn mwd() -> TaskGraph {
    build(
        "mwd",
        &[
            (0, 1, 64.0),  // in -> nr (noise reduction)
            (1, 2, 64.0),  // nr -> mem1
            (2, 3, 64.0),  // mem1 -> vs (vertical scale)
            (3, 4, 64.0),  // vs -> hs
            (4, 5, 64.0),  // hs -> mem2
            (5, 6, 64.0),  // mem2 -> hvs
            (6, 7, 64.0),  // hvs -> jug1
            (0, 8, 128.0), // in -> mem3
            (8, 9, 96.0),  // mem3 -> jug2
            (9, 10, 96.0), // jug2 -> se (sharpness)
            (7, 10, 32.0), // jug1 -> se
            (10, 11, 64.0),// se -> blend/out
        ],
        12,
    )
}

/// Picture-In-Picture — 8 tasks, the small application in the mix.
pub fn pip() -> TaskGraph {
    build(
        "pip",
        &[
            (0, 1, 128.0), // inp mem a -> horizontal scale
            (1, 2, 64.0),  // hs -> vertical scale
            (2, 3, 64.0),  // vs -> jug
            (0, 4, 64.0),  // inp mem a -> mem b
            (4, 5, 64.0),  // mem b -> jug2
            (3, 6, 64.0),  // jug -> op disp
            (5, 6, 64.0),  // jug2 -> op disp
            (6, 7, 128.0), // op disp -> out
        ],
        8,
    )
}

/// All presets in a fixed order: VOPD, MPEG-4, MWD, PIP.
pub fn all() -> Vec<TaskGraph> {
    vec![vopd(), mpeg4(), mwd(), pip()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for g in all() {
            assert!(g.validate().is_ok(), "{} invalid", g.name());
        }
    }

    #[test]
    fn preset_sizes_match_literature() {
        assert_eq!(vopd().task_count(), 12);
        assert_eq!(mpeg4().task_count(), 12);
        assert_eq!(mwd().task_count(), 12);
        assert_eq!(pip().task_count(), 8);
    }

    #[test]
    fn presets_are_connected_dags() {
        for g in all() {
            let order = g.topological_order().unwrap();
            assert_eq!(order.len(), g.task_count());
            // Every non-root task is reachable (has a predecessor).
            let roots = g.roots();
            for t in 0..g.task_count() as u32 {
                let id = TaskId(t);
                if !roots.contains(&id) {
                    assert!(g.predecessors(id).next().is_some());
                }
            }
        }
    }

    #[test]
    fn vopd_pipeline_depth() {
        // The main VOPD pipeline is 11 stages deep (vld..display).
        assert!(vopd().critical_path_len() >= 10);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = all().iter().map(|g| g.name().to_owned()).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn volumes_are_positive() {
        for g in all() {
            for e in g.edges() {
                assert!(e.bits > 0.0);
            }
            for t in g.tasks() {
                assert!(t.instructions > 0);
            }
        }
    }

    #[test]
    fn heavier_communicators_compute_more() {
        let g = mpeg4();
        // Task 3 (sdram hub) carries far more traffic than task 11 (out).
        assert!(g.task(TaskId(3)).instructions > g.task(TaskId(11)).instructions);
    }
}
