//! Chip-level power ledger with reservation-based admission control.
//!
//! The paper's scheduler never *reacts* to a TDP violation — it *prevents*
//! one: before a task starts or a test session launches, its projected power
//! is reserved against the current budget; if the reservation does not fit,
//! the action is deferred. [`PowerBudget`] is that ledger. The budget's cap
//! is not necessarily the TDP itself: the PID governor (see [`crate::pid`])
//! moves the cap around the TDP to compensate model/measurement error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to an active power reservation (returned by
/// [`PowerBudget::reserve`]); pass it back to [`PowerBudget::release`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    id: u64,
    watts: f64,
}

impl Reservation {
    /// The reserved power, watts.
    pub fn watts(&self) -> f64 {
        self.watts
    }
}

/// Error returned when a reservation does not fit under the cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsufficientHeadroom {
    /// Watts requested.
    pub requested: f64,
    /// Watts actually available.
    pub available: f64,
}

impl fmt::Display for InsufficientHeadroom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient power headroom: requested {:.3} W, available {:.3} W",
            self.requested, self.available
        )
    }
}

impl std::error::Error for InsufficientHeadroom {}

/// A power ledger enforcing a movable cap.
///
/// # Examples
///
/// ```
/// use manytest_power::budget::PowerBudget;
///
/// let mut budget = PowerBudget::new(80.0);
/// let task = budget.reserve(30.0)?;
/// assert_eq!(budget.headroom(), 50.0);
/// budget.release(task);
/// assert_eq!(budget.headroom(), 80.0);
/// # Ok::<(), manytest_power::budget::InsufficientHeadroom>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    cap: f64,
    reserved: f64,
    next_id: u64,
    live: Vec<(u64, f64)>,
    /// Fraction of the cap actually usable, in `[0, 1]`. Quarantining a
    /// core derates the budget proportionally: a power-gated core cannot
    /// dissipate its TDP share, and pretending it could would let the PID
    /// governor hand its watts to the survivors as free test headroom.
    derating: f64,
}

impl PowerBudget {
    /// Creates a ledger with the given cap in watts.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    pub fn new(cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        PowerBudget {
            cap,
            reserved: 0.0,
            next_id: 0,
            live: Vec::new(),
            derating: 1.0,
        }
    }

    /// Current cap, watts (before derating).
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The cap actually enforced: `cap × derating`, watts.
    pub fn effective_cap(&self) -> f64 {
        self.cap * self.derating
    }

    /// Current derating factor, in `[0, 1]` (1 = no cores withdrawn).
    pub fn derating(&self) -> f64 {
        self.derating
    }

    /// Sets the usable fraction of the cap (see the field doc). Existing
    /// reservations are never revoked: if the derated cap falls below the
    /// reserved total, headroom is zero until reservations drain.
    ///
    /// # Panics
    ///
    /// Panics if `derating` is not in `[0, 1]`.
    pub fn set_derating(&mut self, derating: f64) {
        assert!(
            (0.0..=1.0).contains(&derating),
            "derating must be in [0,1], got {derating}"
        );
        self.derating = derating;
    }

    /// Total reserved power, watts.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Remaining headroom (`effective cap − reserved`, floored at 0).
    pub fn headroom(&self) -> f64 {
        (self.effective_cap() - self.reserved).max(0.0)
    }

    /// True if a reservation of `watts` would fit right now.
    pub fn fits(&self, watts: f64) -> bool {
        watts <= self.headroom() + 1e-12
    }

    /// Reserves `watts` against the cap.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientHeadroom`] when the request exceeds the current
    /// headroom; the ledger is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or non-finite.
    pub fn reserve(&mut self, watts: f64) -> Result<Reservation, InsufficientHeadroom> {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "reservation must be non-negative"
        );
        if !self.fits(watts) {
            return Err(InsufficientHeadroom {
                requested: watts,
                available: self.headroom(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.reserved += watts;
        self.live.push((id, watts));
        Ok(Reservation { id, watts })
    }

    /// Releases a previously granted reservation.
    ///
    /// # Panics
    ///
    /// Panics if the reservation was already released (double release is a
    /// logic error in the caller's bookkeeping).
    pub fn release(&mut self, reservation: Reservation) {
        let pos = self
            .live
            .iter()
            .position(|&(id, _)| id == reservation.id)
            // lint:allow(hot-path-purity, reason = "documented contract: a reservation is released exactly once by the lifecycle that owns it")
            .expect("reservation released twice or never granted");
        let (_, watts) = self.live.swap_remove(pos);
        self.reserved = (self.reserved - watts).max(0.0);
    }

    /// Adjusts an existing reservation to `new_watts` (e.g. after a DVFS
    /// change), keeping its identity.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientHeadroom`] if growing the reservation would
    /// exceed the cap; the reservation keeps its old size in that case.
    pub fn resize(
        &mut self,
        reservation: &mut Reservation,
        new_watts: f64,
    ) -> Result<(), InsufficientHeadroom> {
        assert!(
            new_watts.is_finite() && new_watts >= 0.0,
            "reservation must be non-negative"
        );
        let pos = self
            .live
            .iter()
            .position(|&(id, _)| id == reservation.id)
            // lint:allow(hot-path-purity, reason = "documented contract: resize only reaches reservations that are still live")
            .expect("resize of unknown reservation");
        let delta = new_watts - reservation.watts;
        if delta > 0.0 && delta > self.headroom() + 1e-12 {
            return Err(InsufficientHeadroom {
                requested: delta,
                available: self.headroom(),
            });
        }
        self.reserved = (self.reserved + delta).max(0.0);
        self.live[pos].1 = new_watts;
        reservation.watts = new_watts;
        Ok(())
    }

    /// Moves the cap (the PID governor's actuator). Existing reservations
    /// are never revoked: if the new cap is below the reserved total, the
    /// headroom is simply zero until reservations drain.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    pub fn set_cap(&mut self, cap: f64) {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        self.cap = cap;
    }

    /// Number of live reservations.
    pub fn active_reservations(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut b = PowerBudget::new(100.0);
        let r1 = b.reserve(40.0).unwrap();
        let r2 = b.reserve(50.0).unwrap();
        assert_eq!(b.reserved(), 90.0);
        assert!((b.headroom() - 10.0).abs() < 1e-12);
        b.release(r1);
        assert_eq!(b.reserved(), 50.0);
        b.release(r2);
        assert_eq!(b.reserved(), 0.0);
        assert_eq!(b.active_reservations(), 0);
    }

    #[test]
    fn over_reservation_is_rejected_and_harmless() {
        let mut b = PowerBudget::new(10.0);
        let _r = b.reserve(8.0).unwrap();
        let err = b.reserve(5.0).unwrap_err();
        assert_eq!(err.requested, 5.0);
        assert!((err.available - 2.0).abs() < 1e-12);
        assert_eq!(b.reserved(), 8.0);
        assert_eq!(b.active_reservations(), 1);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut b = PowerBudget::new(10.0);
        assert!(b.reserve(10.0).is_ok());
        assert_eq!(b.headroom(), 0.0);
        assert!(b.fits(0.0));
        assert!(!b.fits(0.1));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut b = PowerBudget::new(10.0);
        let r = b.reserve(1.0).unwrap();
        b.release(r);
        b.release(r);
    }

    #[test]
    fn resize_up_and_down() {
        let mut b = PowerBudget::new(20.0);
        let mut r = b.reserve(5.0).unwrap();
        b.resize(&mut r, 12.0).unwrap();
        assert_eq!(b.reserved(), 12.0);
        assert_eq!(r.watts(), 12.0);
        b.resize(&mut r, 3.0).unwrap();
        assert_eq!(b.reserved(), 3.0);
        b.release(r);
        assert_eq!(b.reserved(), 0.0);
    }

    #[test]
    fn resize_beyond_cap_fails_without_change() {
        let mut b = PowerBudget::new(10.0);
        let mut r = b.reserve(6.0).unwrap();
        let _other = b.reserve(3.0).unwrap();
        assert!(b.resize(&mut r, 9.0).is_err());
        assert_eq!(r.watts(), 6.0);
        assert_eq!(b.reserved(), 9.0);
    }

    #[test]
    fn lowering_cap_never_revokes() {
        let mut b = PowerBudget::new(50.0);
        let _r = b.reserve(40.0).unwrap();
        b.set_cap(20.0);
        assert_eq!(b.reserved(), 40.0);
        assert_eq!(b.headroom(), 0.0);
        assert!(!b.fits(1.0));
    }

    #[test]
    fn raising_cap_creates_headroom() {
        let mut b = PowerBudget::new(10.0);
        let _r = b.reserve(10.0).unwrap();
        b.set_cap(15.0);
        assert!((b.headroom() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn error_display_mentions_watts() {
        let e = InsufficientHeadroom {
            requested: 5.0,
            available: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("5.000"));
        assert!(s.contains("1.000"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cap_panics() {
        PowerBudget::new(-1.0);
    }

    #[test]
    fn zero_watt_reservation_is_fine() {
        let mut b = PowerBudget::new(0.0);
        let r = b.reserve(0.0).unwrap();
        b.release(r);
    }

    #[test]
    fn derating_shrinks_headroom_without_touching_the_cap() {
        let mut b = PowerBudget::new(100.0);
        let _r = b.reserve(40.0).unwrap();
        b.set_derating(0.75);
        assert_eq!(b.cap(), 100.0, "nominal cap is unchanged");
        assert!((b.effective_cap() - 75.0).abs() < 1e-12);
        assert!((b.headroom() - 35.0).abs() < 1e-12);
        assert!(b.fits(35.0));
        assert!(!b.fits(36.0));
        // Derating below the reserved total floors headroom at zero but
        // never revokes.
        b.set_derating(0.25);
        assert_eq!(b.headroom(), 0.0);
        assert_eq!(b.reserved(), 40.0);
        b.set_derating(1.0);
        assert!((b.headroom() - 60.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "derating must be in")]
    fn derating_outside_unit_interval_panics() {
        PowerBudget::new(10.0).set_derating(1.5);
    }
}
