//! Property tests of the simulation kernel.

use manytest_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_sorted_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_ns(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(ev) = queue.pop() {
            popped.push((ev.time, ev.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Sorted by time; FIFO among equals (payload = insertion index).
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn pop_before_partitions_the_timeline(
        times in prop::collection::vec(0u64..1_000, 1..100),
        deadline in 0u64..1_000,
    ) {
        let mut queue = EventQueue::new();
        for &t in &times {
            queue.schedule(SimTime::from_ns(t), t);
        }
        let mut before = Vec::new();
        while let Some(ev) = queue.pop_before(SimTime::from_ns(deadline)) {
            before.push(ev.payload);
        }
        prop_assert!(before.iter().all(|&t| t < deadline));
        prop_assert_eq!(before.len(), times.iter().filter(|&&t| t < deadline).count());
        prop_assert_eq!(queue.len(), times.len() - before.len());
    }

    #[test]
    fn histogram_conserves_every_sample(
        samples in prop::collection::vec(-100.0f64..200.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &s in &samples {
            h.push(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            samples.len() as u64
        );
    }

    #[test]
    fn time_weighted_matches_manual_integration(
        segments in prop::collection::vec((1u64..1_000, 0.0f64..100.0), 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        let mut t = 0.0;
        let mut manual = 0.0;
        for &(dt_ms, v) in &segments {
            tw.record(t, v);
            let dt = dt_ms as f64 / 1e3;
            manual += v * dt;
            t += dt;
        }
        tw.finish(t);
        prop_assert!((tw.integral() - manual).abs() < 1e-9 * (1.0 + manual));
        prop_assert!((tw.mean() - manual / t).abs() < 1e-9 * (1.0 + manual));
    }

    #[test]
    fn downsample_preserves_endpoints_and_bounds(
        n_points in 2usize..500,
        target in 2usize..64,
    ) {
        let mut s = TraceSeries::new();
        for i in 0..n_points {
            s.push(i as f64, (i * 7 % 13) as f64);
        }
        let d = s.downsample(target);
        prop_assert!(d.len() <= n_points.max(target));
        prop_assert_eq!(d.points()[0], s.points()[0]);
        prop_assert_eq!(*d.points().last().unwrap(), *s.points().last().unwrap());
    }

    #[test]
    fn stats_merge_is_associative_enough(
        a in prop::collection::vec(-1e3f64..1e3, 1..50),
        b in prop::collection::vec(-1e3f64..1e3, 1..50),
        c in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let build = |xs: &[f64]| {
            let mut s = OnlineStats::new();
            for &x in xs {
                s.push(x);
            }
            s
        };
        // (a ∪ b) ∪ c vs a ∪ (b ∪ c)
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-6);
    }

    #[test]
    fn gen_exp_is_positive_and_finite(seed in any::<u64>(), rate in 0.001f64..1e6) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = rng.gen_exp(rate);
            prop_assert!(x.is_finite());
            prop_assert!(x > 0.0);
        }
    }

    #[test]
    fn epoch_partition_is_exact(ns in 0u64..1u64 << 50, epoch_ms in 1u64..100) {
        let len = Duration::from_ms(epoch_ms);
        let t = SimTime::from_ns(ns);
        let e = t.epoch(len);
        prop_assert!(e.start(len) <= t);
        prop_assert!(t < e.end(len));
    }
}
