//! Property tests of the aging/criticality substrate.

use manytest_aging::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn damage_is_additive_over_time(power in 0.0f64..3.0, t1 in 0.0f64..10.0, t2 in 0.0f64..10.0) {
        let m = AgingModel::default();
        let split = m.damage(power, t1) + m.damage(power, t2);
        let joined = m.damage(power, t1 + t2);
        prop_assert!((split - joined).abs() < 1e-9 * (1.0 + joined));
    }

    #[test]
    fn wear_rate_is_monotone_in_power(p1 in 0.0f64..5.0, p2 in 0.0f64..5.0) {
        let m = AgingModel::default();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(m.wear_rate(lo) <= m.wear_rate(hi));
    }

    #[test]
    fn criticality_is_monotone_in_both_pressures(
        d1 in 0.0f64..10.0, d2 in 0.0f64..10.0,
        t1 in 0.0f64..10.0, t2 in 0.0f64..10.0,
    ) {
        let model = CriticalityModel::default();
        let (d_lo, d_hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (t_lo, t_hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let stress = |damage: f64| CoreStress {
            total_damage: damage,
            damage_since_test: damage,
            utilization: 0.5,
            last_test_time: 0.0,
            tests_completed: 1,
            recoverable_damage: 0.0,
        };
        prop_assert!(
            model.criticality(&stress(d_lo), 1.0) <= model.criticality(&stress(d_hi), 1.0)
        );
        prop_assert!(
            model.criticality(&stress(1.0), t_lo) <= model.criticality(&stress(1.0), t_hi)
        );
    }

    #[test]
    fn tracker_utilization_stays_in_unit_interval(
        epochs in prop::collection::vec((0.0f64..2.0, 0.0f64..1.0), 1..200),
        alpha in 0.01f64..1.0,
    ) {
        let aging = AgingModel::default();
        let mut tracker = StressTracker::new(1, alpha);
        for &(power, busy) in &epochs {
            tracker.record_epoch(0, &aging, power, busy, 0.001);
            let u = tracker.core(0).utilization;
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn damage_since_test_never_exceeds_total(
        epochs in prop::collection::vec((0.0f64..2.0, any::<bool>()), 1..100),
    ) {
        let aging = AgingModel::default();
        let mut tracker = StressTracker::new(1, 0.2);
        let mut t = 0.0;
        for &(power, test_now) in &epochs {
            tracker.record_epoch(0, &aging, power, 1.0, 0.001);
            t += 0.001;
            if test_now {
                tracker.note_test_complete(0, t);
            }
            let c = tracker.core(0);
            prop_assert!(c.damage_since_test <= c.total_damage + 1e-12);
            prop_assert!(c.damage_since_test >= 0.0);
        }
    }

    #[test]
    fn test_completion_resets_criticality_pressure(
        damage in 0.1f64..10.0,
        now in 0.1f64..10.0,
    ) {
        let model = CriticalityModel::default();
        let mut tracker = StressTracker::new(1, 0.2);
        let aging = AgingModel::default();
        // Build up damage proportional to the drawn value.
        tracker.record_epoch(0, &aging, 1.0, 1.0, damage);
        let before = model.criticality(tracker.core(0), now);
        tracker.note_test_complete(0, now);
        let after = model.criticality(tracker.core(0), now);
        prop_assert!(after < before);
        prop_assert!(after.abs() < 1e-9, "fresh test means zero pressure");
    }

    #[test]
    fn temperature_is_physical(power in 0.0f64..10.0) {
        let m = AgingModel::default();
        let t = m.temperature(power);
        prop_assert!(t >= m.t_ambient);
        prop_assert!(t.is_finite());
        prop_assert!(m.acceleration_at(t) > 0.0);
    }
}
