//! Event calendar with deterministic ordering.
//!
//! [`EventQueue`] is a binary heap keyed by `(time, sequence)`: events that
//! share a timestamp pop in the order they were scheduled (FIFO), which makes
//! whole-system runs reproducible regardless of payload type or heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying an arbitrary payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number; breaks ties among simultaneous events.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: T,
}

struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// A deterministic future-event calendar.
///
/// # Examples
///
/// ```
/// use manytest_sim::engine::EventQueue;
/// use manytest_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(10), 'b');
/// q.schedule(SimTime::from_ns(10), 'c'); // same instant: FIFO
/// q.schedule(SimTime::from_ns(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for HeapEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("time", &self.0.time)
            .field("seq", &self.0.seq)
            .finish()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// Returns the sequence number assigned to the event, which can be used
    /// by callers to implement cancellation via tombstones.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current queue time: the calendar
    /// never travels backwards.
    pub fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { time, seq, payload }));
        seq
    }

    /// Removes and returns the earliest pending event, advancing `now`.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let entry = self.heap.pop()?;
        self.now = entry.0.time;
        Some(entry.0)
    }

    /// Returns the time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pops the earliest event only if it fires strictly before `deadline`.
    ///
    /// This is the primitive the epoch loop uses: drain all events belonging
    /// to the current control epoch, then hand control to the epoch-level
    /// policies.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<T>> {
        match self.peek_time() {
            Some(t) if t < deadline => self.pop(),
            _ => None,
        }
    }

    /// Drains into `out` every pending event that shares the timestamp of
    /// the earliest event, provided that timestamp is strictly before
    /// `deadline`. Returns the number of events drained (0 when nothing
    /// fires before the deadline).
    ///
    /// This is the batched form of [`EventQueue::pop_before`]: one heap
    /// descent per *timestamp* instead of one per event. Events land in
    /// `out` in exactly the order repeated `pop` calls would return them
    /// (FIFO within the shared instant), and events scheduled *while the
    /// batch is being processed* receive higher sequence numbers, so they
    /// sort after the drained batch — processing a batch then re-draining
    /// is indistinguishable from popping one event at a time.
    ///
    /// `out` is cleared first; its capacity is reused across calls.
    pub fn pop_batch_before(&mut self, deadline: SimTime, out: &mut Vec<Event<T>>) -> usize {
        out.clear();
        let Some(first) = self.pop_before(deadline) else {
            return 0;
        };
        let batch_time = first.time;
        out.push(first);
        while self.peek_time() == Some(batch_time) {
            out.push(self.pop().expect("peeked event exists"));
        }
        out.len()
    }

    /// Drops all pending events, keeping the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), 'a');
        q.schedule(SimTime::from_ns(15), 'b');
        let deadline = SimTime::from_ns(10);
        assert_eq!(q.pop_before(deadline).map(|e| e.payload), Some('a'));
        assert_eq!(q.pop_before(deadline), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_boundary_is_exclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        assert_eq!(q.pop_before(SimTime::from_ns(10)), None);
        assert!(q.pop_before(SimTime::from_ns(11)).is_some());
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), ());
        q.pop();
        q.schedule(SimTime::from_ns(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(5));
        // Scheduling after clear still honours monotone time.
        q.schedule(q.now() + Duration::from_ns(1), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_drain_matches_one_at_a_time_popping() {
        // Reference: a queue drained by repeated pop(). Subject: the same
        // schedule drained in timestamp batches. Orders must be identical.
        let schedule = [(10u64, 'a'), (10, 'b'), (5, 'c'), (10, 'd'), (20, 'e'), (5, 'f')];
        let mut reference = EventQueue::new();
        let mut subject = EventQueue::new();
        for &(ns, p) in &schedule {
            reference.schedule(SimTime::from_ns(ns), p);
            subject.schedule(SimTime::from_ns(ns), p);
        }
        let one_at_a_time: Vec<char> =
            std::iter::from_fn(|| reference.pop().map(|e| e.payload)).collect();
        let mut batched = Vec::new();
        let mut scratch = Vec::new();
        let deadline = SimTime::from_ns(100);
        while subject.pop_batch_before(deadline, &mut scratch) > 0 {
            batched.extend(scratch.iter().map(|e| e.payload));
        }
        assert_eq!(batched, one_at_a_time);
    }

    #[test]
    fn batch_drain_groups_by_timestamp_and_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), 1);
        q.schedule(SimTime::from_ns(5), 2);
        q.schedule(SimTime::from_ns(9), 3);
        q.schedule(SimTime::from_ns(15), 4);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_before(SimTime::from_ns(10), &mut batch), 2);
        assert_eq!(batch.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.now(), SimTime::from_ns(5));
        assert_eq!(q.pop_batch_before(SimTime::from_ns(10), &mut batch), 1);
        assert_eq!(batch[0].payload, 3);
        // The 15 ns event is at/after the deadline: batch is left empty.
        assert_eq!(q.pop_batch_before(SimTime::from_ns(10), &mut batch), 0);
        assert!(batch.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn events_scheduled_during_a_batch_sort_after_it() {
        // A handler reacting to a drained event may schedule more work at
        // the very same instant; those newcomers must form the *next*
        // batch, exactly as they would pop after the current event under
        // one-at-a-time processing.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), "first");
        q.schedule(SimTime::from_ns(7), "second");
        let mut batch = Vec::new();
        q.pop_batch_before(SimTime::from_ns(10), &mut batch);
        assert_eq!(batch.len(), 2);
        q.schedule(SimTime::from_ns(7), "reaction");
        assert_eq!(q.pop_batch_before(SimTime::from_ns(10), &mut batch), 1);
        assert_eq!(batch[0].payload, "reaction");
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), ());
        let b = q.schedule(SimTime::from_ns(1), ());
        assert!(b > a);
    }
}
