//! Quickstart: run the 16 nm platform for 300 simulated milliseconds with
//! power-aware online testing enabled, and print the run summary.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use manytest::prelude::*;

fn main() -> Result<(), BuildError> {
    let report = SystemBuilder::new(TechNode::N16)
        .seed(2024)
        .arrival_rate(300.0) // applications per second
        .sim_time_ms(300)
        .build()?
        .run();

    println!("== manytest quickstart: 16 nm, 16x16 mesh, 80 W TDP ==");
    println!("{}", report.summary());
    println!();
    println!("applications:  {} arrived, {} completed", report.apps_arrived, report.apps_completed);
    println!("throughput:    {:.0} MIPS", report.throughput_mips);
    println!(
        "power:         mean {:.1} W / peak {:.1} W under a {:.0} W TDP ({} cap violations)",
        report.mean_power, report.peak_power, report.tdp, report.cap_violations
    );
    println!(
        "testing:       {} sessions completed, {} aborted non-intrusively, {:.2}% of energy",
        report.tests_completed,
        report.tests_aborted,
        report.test_energy_share * 100.0
    );
    println!(
        "test interval: mean {:.1} ms, max {:.1} ms across {} cores",
        report.mean_test_interval * 1e3,
        report.max_test_interval * 1e3,
        report.tests_per_core.len()
    );
    println!(
        "dark silicon:  {:.0}% of cores cannot run at nominal V/f under this TDP",
        report.dark_fraction * 100.0
    );
    Ok(())
}
