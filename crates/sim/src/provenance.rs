//! Causal-chain reconstruction over a run's [`EventRecord`] stream.
//!
//! The control loop stamps every emitted event with a monotonic
//! [`EventId`] and an optional [`CauseLink`] back to the event that
//! triggered it. This module turns the flat, time-ordered record slice
//! into a navigable provenance DAG:
//!
//! * [`ProvenanceGraph::chain_to_root`] — walk any event back through
//!   its cause links to the root decision that started the chain.
//! * [`ProvenanceGraph::consequences`] — walk forward to everything the
//!   event (transitively) caused, in emission order.
//! * [`ProvenanceGraph::summarize_chain`] — per-chain aggregates: depth,
//!   time span, per-kind counts, and the corruption-exposure seconds
//!   attributable to a fault root (sum of detection latencies reached
//!   from it).
//!
//! The graph borrows the record slice; building it is a single pass plus
//! one adjacency allocation, so `repro` subcommands can rebuild it per
//! invocation without caching.

use crate::obs::{CauseKind, EventId, EventRecord, SimEvent};
use std::collections::BTreeMap;

/// A provenance DAG over a borrowed record slice.
///
/// Records must be in emission order (as stored by an
/// [`EventLog`](crate::obs::EventLog)); ids referenced by cause links
/// that were decimated away by log saturation simply resolve to `None`.
#[derive(Debug)]
pub struct ProvenanceGraph<'a> {
    records: &'a [EventRecord],
    /// id → slot in `records`.
    index_of: BTreeMap<u64, usize>,
    /// slot → slots of records it directly caused, in emission order.
    children: Vec<Vec<usize>>,
}

impl<'a> ProvenanceGraph<'a> {
    /// Builds the graph in one pass over `records`.
    pub fn build(records: &'a [EventRecord]) -> Self {
        let mut index_of = BTreeMap::new();
        for (slot, rec) in records.iter().enumerate() {
            index_of.insert(rec.id.0, slot);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
        for (slot, rec) in records.iter().enumerate() {
            if let Some(link) = rec.cause {
                if let Some(&parent) = index_of.get(&link.id.0) {
                    children[parent].push(slot);
                }
            }
        }
        ProvenanceGraph {
            records,
            index_of,
            children,
        }
    }

    /// The underlying record slice.
    pub fn records(&self) -> &'a [EventRecord] {
        self.records
    }

    /// Looks up a record by id (`None` when the id was never stored —
    /// e.g. decimated away by log saturation).
    pub fn record(&self, id: EventId) -> Option<&'a EventRecord> {
        self.index_of.get(&id.0).map(|&slot| &self.records[slot])
    }

    /// The causal chain from `id` back to its root, effect first. The
    /// first element is the event itself; the last is the deepest
    /// resolvable ancestor (the true root, unless saturation dropped an
    /// intermediate record). Empty when `id` is unknown.
    pub fn chain_to_root(&self, id: EventId) -> Vec<&'a EventRecord> {
        let mut chain = Vec::new();
        let mut cursor = self.record(id);
        while let Some(rec) = cursor {
            chain.push(rec);
            cursor = rec.cause.and_then(|link| self.record(link.id));
        }
        chain
    }

    /// Everything `id` transitively caused (excluding itself), in
    /// emission order. Empty when `id` is unknown or caused nothing.
    pub fn consequences(&self, id: EventId) -> Vec<&'a EventRecord> {
        let Some(&start) = self.index_of.get(&id.0) else {
            return Vec::new();
        };
        let mut slots = Vec::new();
        let mut frontier = vec![start];
        while let Some(slot) = frontier.pop() {
            for &child in &self.children[slot] {
                slots.push(child);
                frontier.push(child);
            }
        }
        // Ids are monotone in emission order, so sorting slots restores it.
        slots.sort_unstable();
        slots.dedup();
        slots.iter().map(|&s| &self.records[s]).collect()
    }

    /// Records with no cause link — the DAG's roots, in emission order.
    pub fn roots(&self) -> impl Iterator<Item = &'a EventRecord> + '_ {
        self.records.iter().filter(|r| r.cause.is_none())
    }

    /// Aggregates over the full chain around `id`: its ancestry back to
    /// the root plus every consequence of that root. `None` when `id` is
    /// unknown.
    pub fn summarize_chain(&self, id: EventId) -> Option<ChainSummary> {
        let back = self.chain_to_root(id);
        let root = *back.last()?;
        let forward = self.consequences(root.id);
        let mut kind_counts = [0u64; SimEvent::KIND_COUNT];
        kind_counts[root.ev.kind_index()] += 1;
        let mut first_t = root.t;
        let mut last_t = root.t;
        let mut exposure = 0.0;
        for rec in &forward {
            kind_counts[rec.ev.kind_index()] += 1;
            first_t = first_t.min(rec.t);
            last_t = last_t.max(rec.t);
            if let SimEvent::FaultDetected { latency, .. } = rec.ev {
                exposure += latency.max(0.0);
            }
        }
        Some(ChainSummary {
            root: root.id,
            root_kind: root.ev.kind(),
            depth: back.len(),
            events: 1 + forward.len(),
            first_t,
            last_t,
            fault_exposure: exposure,
            kind_counts,
        })
    }

    /// Number of resolvable cause links (graph edges).
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Per-link-kind counts of every cause link carried by the records
    /// (resolvable or not), in [`CauseKind::index`] order.
    pub fn link_kind_counts(&self) -> [u64; CauseKind::COUNT] {
        let mut counts = [0u64; CauseKind::COUNT];
        for rec in self.records {
            if let Some(link) = rec.cause {
                counts[link.kind.index()] += 1;
            }
        }
        counts
    }
}

/// Aggregates over one causal chain (root + all its consequences).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainSummary {
    /// The chain's root event.
    pub root: EventId,
    /// Kind name of the root.
    pub root_kind: &'static str,
    /// Links walked from the queried event back to the root (≥ 1).
    pub depth: usize,
    /// Events in the chain: the root plus every consequence.
    pub events: usize,
    /// Earliest event time in the chain, seconds.
    pub first_t: f64,
    /// Latest event time in the chain, seconds.
    pub last_t: f64,
    /// Core-seconds of corruption exposure attributable to the root:
    /// the summed injection-to-detection latencies of every
    /// `FaultDetected` reached from it (0 for non-fault chains).
    pub fault_exposure: f64,
    /// Per-kind event counts over the chain, in [`SimEvent::KINDS`]
    /// order.
    pub kind_counts: [u64; SimEvent::KIND_COUNT],
}

impl ChainSummary {
    /// The chain's wall span in simulated seconds.
    pub fn span(&self) -> f64 {
        self.last_t - self.first_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{CauseLink, EventLog};

    /// A miniature detect→respond run: fault → detection → suspicion →
    /// quarantine → migration, plus an unrelated cap move.
    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        let fault = log.push(0.10, SimEvent::FaultActivated { core: 3 });
        let _cap = log.push(
            0.15,
            SimEvent::CapAdjusted {
                cap: 50.0,
                measured: 45.0,
                headroom: 5.0,
                reservations: 0,
            },
        );
        let detect = log.push_caused(
            0.30,
            Some(CauseLink::new(CauseKind::Activation, fault)),
            SimEvent::FaultDetected { core: 3, latency: 0.20 },
        );
        let suspect = log.push_caused(
            0.30,
            Some(CauseLink::new(CauseKind::Detection, detect)),
            SimEvent::CoreSuspected { core: 3, level: 2 },
        );
        let quarantine = log.push_caused(
            0.45,
            Some(CauseLink::new(CauseKind::Suspicion, suspect)),
            SimEvent::CoreQuarantined { core: 3, retests: 0 },
        );
        log.push_caused(
            0.45,
            Some(CauseLink::new(CauseKind::Quarantine, quarantine)),
            SimEvent::AppMigrated {
                app: 7,
                core: 3,
                moved_tasks: 2,
                delay: 0.002,
            },
        );
        log
    }

    #[test]
    fn chain_walks_back_to_the_fault_root() {
        let log = sample_log();
        let graph = ProvenanceGraph::build(log.events());
        let migration = log.events().last().unwrap().id;
        let chain = graph.chain_to_root(migration);
        let kinds: Vec<&str> = chain.iter().map(|r| r.ev.kind()).collect();
        assert_eq!(
            kinds,
            [
                "AppMigrated",
                "CoreQuarantined",
                "CoreSuspected",
                "FaultDetected",
                "FaultActivated"
            ]
        );
    }

    #[test]
    fn consequences_cover_the_whole_chain_in_emission_order() {
        let log = sample_log();
        let graph = ProvenanceGraph::build(log.events());
        let fault = log.events()[0].id;
        let kinds: Vec<&str> = graph
            .consequences(fault)
            .iter()
            .map(|r| r.ev.kind())
            .collect();
        assert_eq!(
            kinds,
            ["FaultDetected", "CoreSuspected", "CoreQuarantined", "AppMigrated"]
        );
        // The cap move caused nothing and is caused by nothing.
        let cap = log.events()[1].id;
        assert!(graph.consequences(cap).is_empty());
        assert_eq!(graph.chain_to_root(cap).len(), 1);
    }

    #[test]
    fn summary_attributes_exposure_to_the_fault_root() {
        let log = sample_log();
        let graph = ProvenanceGraph::build(log.events());
        let migration = log.events().last().unwrap().id;
        let s = graph.summarize_chain(migration).unwrap();
        assert_eq!(s.root_kind, "FaultActivated");
        assert_eq!(s.depth, 5);
        assert_eq!(s.events, 5);
        assert!((s.fault_exposure - 0.20).abs() < 1e-12);
        assert!((s.span() - 0.35).abs() < 1e-12);
        assert_eq!(s.kind_counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn roots_and_edges_are_counted() {
        let log = sample_log();
        let graph = ProvenanceGraph::build(log.events());
        let roots: Vec<&str> = graph.roots().map(|r| r.ev.kind()).collect();
        assert_eq!(roots, ["FaultActivated", "CapAdjusted"]);
        assert_eq!(graph.edge_count(), 4);
        let links = graph.link_kind_counts();
        assert_eq!(links.iter().sum::<u64>(), 4);
        assert_eq!(links[CauseKind::Quarantine.index()], 1);
    }

    #[test]
    fn dangling_cause_links_resolve_to_truncated_chains() {
        // Simulate saturation: the records survive but the fault root was
        // never stored.
        let log = sample_log();
        let tail = &log.events()[2..];
        let graph = ProvenanceGraph::build(tail);
        let migration = tail.last().unwrap().id;
        let chain = graph.chain_to_root(migration);
        let kinds: Vec<&str> = chain.iter().map(|r| r.ev.kind()).collect();
        assert_eq!(
            kinds,
            ["AppMigrated", "CoreQuarantined", "CoreSuspected", "FaultDetected"]
        );
        // The detection still carries its (unresolvable) link.
        assert!(chain.last().unwrap().cause.is_some());
        assert!(graph.record(EventId(0)).is_none());
    }
}
