//! Snapshot of platform state consumed by mappers.

use manytest_noc::{Coord, Mesh2D};
use serde::{Deserialize, Serialize};

/// Per-node platform state a mapper may consult.
///
/// The simulator builds one of these each time it attempts a mapping; the
/// vectors are indexed by dense node id (`mesh.node_id(c).index()`).
///
/// # Examples
///
/// ```
/// use manytest_map::context::MapContext;
/// use manytest_noc::{Coord, Mesh2D};
///
/// let mesh = Mesh2D::new(4, 4);
/// let mut ctx = MapContext::all_free(mesh);
/// ctx.set_free(Coord::new(0, 0), false);
/// assert!(!ctx.is_free(Coord::new(0, 0)));
/// assert_eq!(ctx.free_count(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapContext {
    mesh: Mesh2D,
    free: Vec<bool>,
    utilization: Vec<f64>,
    criticality: Vec<f64>,
    /// Health mask: quarantined nodes are `false` and never offered to a
    /// mapper, regardless of occupancy.
    healthy: Vec<bool>,
    /// Maintained count of mappable nodes (free *and* healthy), kept in
    /// lockstep by every mutator so [`MapContext::free_count`] is O(1) —
    /// mappers call it per placement attempt.
    mappable: usize,
}

impl MapContext {
    /// A context where every node is free and healthy with zero
    /// utilisation and zero criticality.
    pub fn all_free(mesh: Mesh2D) -> Self {
        let n = mesh.node_count();
        MapContext {
            mesh,
            free: vec![true; n],
            utilization: vec![0.0; n],
            criticality: vec![0.0; n],
            healthy: vec![true; n],
            mappable: n,
        }
    }

    /// Builds a context from per-node vectors.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `mesh.node_count()`.
    pub fn from_parts(
        mesh: Mesh2D,
        free: Vec<bool>,
        utilization: Vec<f64>,
        criticality: Vec<f64>,
    ) -> Self {
        let n = mesh.node_count();
        assert!(
            free.len() == n && utilization.len() == n && criticality.len() == n,
            "state vectors must have one entry per node"
        );
        let healthy = vec![true; n];
        let mappable = free.iter().filter(|&&f| f).count();
        MapContext {
            mesh,
            free,
            utilization,
            criticality,
            healthy,
            mappable,
        }
    }

    /// Empties the context and re-targets it at `mesh`, keeping the
    /// vectors' capacity. Together with [`MapContext::push_node`] this
    /// lets a hot loop rebuild the snapshot every control tick without
    /// touching the heap.
    pub fn reset(&mut self, mesh: Mesh2D) {
        self.mesh = mesh;
        self.free.clear();
        self.utilization.clear();
        self.criticality.clear();
        self.healthy.clear();
        self.mappable = 0;
    }

    /// Appends the state of the next node (dense-id order), assumed
    /// healthy. Callers must push exactly `mesh.node_count()` entries
    /// after a [`MapContext::reset`]; [`MapContext::is_complete`] checks
    /// that.
    pub fn push_node(&mut self, free: bool, utilization: f64, criticality: f64) {
        self.push_node_health(free, true, utilization, criticality);
    }

    /// [`MapContext::push_node`] with an explicit health bit: quarantined
    /// nodes push `healthy = false` and are invisible to mappers.
    pub fn push_node_health(
        &mut self,
        free: bool,
        healthy: bool,
        utilization: f64,
        criticality: f64,
    ) {
        debug_assert!((0.0..=1.0).contains(&utilization));
        debug_assert!(criticality.is_finite() && criticality >= 0.0);
        self.free.push(free);
        self.healthy.push(healthy);
        self.utilization.push(utilization);
        self.criticality.push(criticality);
        if free && healthy {
            self.mappable += 1;
        }
    }

    /// Whether every node of the mesh has an entry.
    pub fn is_complete(&self) -> bool {
        self.free.len() == self.mesh.node_count()
    }

    /// The mesh this context describes.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Whether the node at `c` is mappable: unoccupied *and* healthy.
    pub fn is_free(&self, c: Coord) -> bool {
        let i = self.mesh.node_id(c).index();
        self.free[i] && self.healthy[i]
    }

    /// Marks the node at `c` free or occupied.
    pub fn set_free(&mut self, c: Coord, free: bool) {
        let i = self.mesh.node_id(c).index();
        if self.free[i] != free {
            if self.healthy[i] {
                if free {
                    self.mappable += 1;
                } else {
                    self.mappable -= 1;
                }
            }
            self.free[i] = free;
        }
    }

    /// Whether the node at `c` is healthy (not quarantined).
    pub fn is_healthy(&self, c: Coord) -> bool {
        self.healthy[self.mesh.node_id(c).index()]
    }

    /// Marks the node at `c` healthy or quarantined.
    pub fn set_healthy(&mut self, c: Coord, healthy: bool) {
        let i = self.mesh.node_id(c).index();
        if self.healthy[i] != healthy {
            if self.free[i] {
                if healthy {
                    self.mappable += 1;
                } else {
                    self.mappable -= 1;
                }
            }
            self.healthy[i] = healthy;
        }
    }

    /// Recent utilisation of the node at `c`, in `[0, 1]`.
    pub fn utilization(&self, c: Coord) -> f64 {
        self.utilization[self.mesh.node_id(c).index()]
    }

    /// Sets the recent utilisation of the node at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]`.
    pub fn set_utilization(&mut self, c: Coord, u: f64) {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0,1]");
        let i = self.mesh.node_id(c).index();
        self.utilization[i] = u;
    }

    /// Test criticality of the node at `c` (≥ 0; higher = more urgent).
    pub fn criticality(&self, c: Coord) -> f64 {
        self.criticality[self.mesh.node_id(c).index()]
    }

    /// Sets the test criticality of the node at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn set_criticality(&mut self, c: Coord, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "criticality must be non-negative"
        );
        let i = self.mesh.node_id(c).index();
        self.criticality[i] = value;
    }

    /// Number of mappable nodes (free *and* healthy), O(1): the count is
    /// maintained by every mutator rather than recomputed by scanning.
    pub fn free_count(&self) -> usize {
        debug_assert_eq!(
            self.mappable,
            self.free
                .iter()
                .zip(&self.healthy)
                .filter(|&(&f, &h)| f && h)
                .count(),
            "maintained mappable count drifted from the masks"
        );
        self.mappable
    }

    /// Number of healthy nodes (occupied or not).
    pub fn healthy_count(&self) -> usize {
        self.healthy.iter().filter(|&&h| h).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_free_starts_clean() {
        let ctx = MapContext::all_free(Mesh2D::new(3, 3));
        assert_eq!(ctx.free_count(), 9);
        assert_eq!(ctx.utilization(Coord::new(1, 1)), 0.0);
        assert_eq!(ctx.criticality(Coord::new(1, 1)), 0.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut ctx = MapContext::all_free(Mesh2D::new(3, 3));
        let c = Coord::new(2, 0);
        ctx.set_free(c, false);
        ctx.set_utilization(Coord::new(0, 1), 0.75);
        ctx.set_criticality(Coord::new(1, 2), 3.5);
        assert!(!ctx.is_free(c));
        assert_eq!(ctx.utilization(Coord::new(0, 1)), 0.75);
        assert_eq!(ctx.criticality(Coord::new(1, 2)), 3.5);
        assert_eq!(ctx.free_count(), 8);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let mesh = Mesh2D::new(2, 2);
        let ctx = MapContext::from_parts(
            mesh,
            vec![true, false, true, true],
            vec![0.0; 4],
            vec![0.0; 4],
        );
        assert_eq!(ctx.free_count(), 3);
    }

    #[test]
    fn quarantined_nodes_vanish_from_the_free_set() {
        let mut ctx = MapContext::all_free(Mesh2D::new(3, 3));
        let c = Coord::new(1, 1);
        assert!(ctx.is_healthy(c));
        ctx.set_healthy(c, false);
        assert!(!ctx.is_free(c), "unhealthy implies unmappable");
        assert!(!ctx.is_healthy(c));
        assert_eq!(ctx.free_count(), 8);
        assert_eq!(ctx.healthy_count(), 8);
        // Occupancy state is orthogonal and preserved.
        ctx.set_healthy(c, true);
        assert!(ctx.is_free(c));
    }

    #[test]
    fn push_node_health_builds_the_mask_incrementally() {
        let mesh = Mesh2D::new(2, 2);
        let mut ctx = MapContext::all_free(mesh);
        ctx.reset(mesh);
        ctx.push_node(true, 0.0, 0.0);
        ctx.push_node_health(true, false, 0.0, 0.0);
        ctx.push_node_health(false, true, 0.5, 1.0);
        ctx.push_node(true, 0.0, 0.0);
        assert!(ctx.is_complete());
        assert_eq!(ctx.free_count(), 2, "the quarantined free node does not count");
        assert_eq!(ctx.healthy_count(), 3);
    }

    #[test]
    fn maintained_free_count_survives_redundant_mutations() {
        let mut ctx = MapContext::all_free(Mesh2D::new(3, 3));
        let c = Coord::new(0, 2);
        // Re-setting the same value must not double-count.
        ctx.set_free(c, false);
        ctx.set_free(c, false);
        assert_eq!(ctx.free_count(), 8);
        // An occupied node leaving quarantine stays unmappable.
        ctx.set_healthy(c, false);
        ctx.set_healthy(c, true);
        assert_eq!(ctx.free_count(), 8);
        // Occupied-and-quarantined needs both bits back to count again.
        ctx.set_healthy(c, false);
        ctx.set_free(c, true);
        assert_eq!(ctx.free_count(), 8);
        ctx.set_healthy(c, true);
        assert_eq!(ctx.free_count(), 9);
        // Rebuilding through reset + push keeps the count in lockstep.
        let mesh = ctx.mesh();
        ctx.reset(mesh);
        for i in 0..9 {
            ctx.push_node_health(i % 2 == 0, i % 3 != 0, 0.0, 0.0);
        }
        assert!(ctx.is_complete());
        // free at even i, healthy unless i % 3 == 0 → i in {2, 4, 8}.
        assert_eq!(ctx.free_count(), 3);
    }

    #[test]
    #[should_panic(expected = "one entry per node")]
    fn from_parts_rejects_short_vectors() {
        MapContext::from_parts(Mesh2D::new(2, 2), vec![true; 3], vec![0.0; 4], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0,1]")]
    fn invalid_utilization_panics() {
        MapContext::all_free(Mesh2D::new(2, 2)).set_utilization(Coord::new(0, 0), 1.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_criticality_panics() {
        MapContext::all_free(Mesh2D::new(2, 2)).set_criticality(Coord::new(0, 0), -1.0);
    }
}
