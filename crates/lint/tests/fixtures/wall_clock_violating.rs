use std::time::Instant;

pub fn elapsed_secs() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
