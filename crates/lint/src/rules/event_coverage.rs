//! `event-emission-coverage`: every `SimEvent` variant must be
//! constructed in non-test code *and* reconciled in the audit layer,
//! every non-root variant must have a cause-link table entry, and
//! every emission site in the control loop must participate in the
//! provenance DAG.
//!
//! The telemetry contract is double-entry: each decision is emitted as a
//! structured event and folded into a report aggregate, and
//! `crates/core/src/audit.rs` reconciles the two. A variant that exists
//! but is never emitted is dead telemetry; one that is emitted but not
//! audited is an invariant hole — deleting an audit arm must fail the
//! lint, not just the runtime tests.
//!
//! The cause-link half reads `CauseKind::expected` in the obs file:
//! every variant not named in `ROOT_KINDS` must appear as a *target*
//! (the second `&[…]` group of an arm) somewhere in that table,
//! otherwise the runtime validator would reject every emission of the
//! kind — the lint fails closed at review time instead of at run time.
//! Synthetic test workspaces whose obs file has no `fn expected` opt
//! out of this half.
//!
//! The provenance half guards `crates/core/src/system.rs`:
//!
//! * calling `on_event` directly is banned — raw observer calls bypass
//!   [`EventId`] minting, so the record would fall outside the DAG the
//!   audit validates;
//! * each call site of the *uncaused* emitters (`observe`, raw
//!   `emit_record`) mints a potential DAG root and must carry an audited
//!   `// lint:allow(event-emission-coverage, reason = "…")` naming why
//!   the event legitimately has no cause. Linkable sites use
//!   `observe_linked`/`emit_caused`, which need no allow.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::{SourceFile, Workspace};

pub struct EventEmissionCoverage;

/// Where the event enum lives.
const OBS_FILE: &str = "crates/sim/src/obs.rs";
/// Where every variant must be reconciled.
const AUDIT_FILE: &str = "crates/core/src/audit.rs";
/// The enum under the coverage contract.
const ENUM_NAME: &str = "SimEvent";
/// The control loop whose emission sites are under the provenance
/// contract.
const SYSTEM_FILE: &str = "crates/core/src/system.rs";
/// Emitters that mint root events (no cause link): call sites must
/// justify root status with an audited allow.
const ROOT_EMITTERS: [&str; 2] = ["observe", "emit_record"];

impl Rule for EventEmissionCoverage {
    fn id(&self) -> &'static str {
        "event-emission-coverage"
    }

    fn description(&self) -> &'static str {
        "every SimEvent variant must be emitted in non-test code and reconciled in audit.rs"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        if let Some(system) = ws.file(SYSTEM_FILE) {
            check_emission_sites(self.id(), system, out);
        }
        let Some(obs) = ws.file(OBS_FILE) else {
            return; // nothing to cover (synthetic workspaces opt in)
        };
        let variants = enum_variants(obs, ENUM_NAME);
        if variants.is_empty() {
            return;
        }
        // Constructions anywhere outside obs.rs and audit.rs, in
        // non-test code: `SimEvent` `::` `<Variant>`.
        let mut constructed: Vec<String> = Vec::new();
        for file in &ws.files {
            if file.rel_path == OBS_FILE
                || file.rel_path == AUDIT_FILE
                || file.is_test_file()
            {
                continue;
            }
            collect_variant_refs(file, true, &mut |name| constructed.push(name.to_string()));
        }
        // Reconciliations in audit.rs: a `SimEvent::X` path *or* the
        // variant's kind string (aggregate lookups like `count("X")`).
        let mut audited: Vec<String> = Vec::new();
        if let Some(audit) = ws.file(AUDIT_FILE) {
            collect_variant_refs(audit, true, &mut |name| audited.push(name.to_string()));
            for tok in audit.code_tokens() {
                if tok.kind == TokenKind::Str && !audit.is_test_line(tok.line) {
                    audited.push(tok.text.clone());
                }
            }
        }
        for v in &variants {
            if !constructed.iter().any(|c| *c == v.text) {
                out.push(Finding {
                    rule: self.id(),
                    file: obs.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    message: format!(
                        "SimEvent::{} is never constructed in non-test code",
                        v.text
                    ),
                    rationale: "an event kind nothing emits is dead telemetry — wire it into \
                                the control loop or delete the variant",
                });
            }
            if !audited.iter().any(|a| a == &v.text) {
                out.push(Finding {
                    rule: self.id(),
                    file: obs.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    message: format!(
                        "SimEvent::{} is not reconciled in {AUDIT_FILE}",
                        v.text
                    ),
                    rationale: "every event kind needs an audit arm (a count invariant or a \
                                sequence check) so emission bugs fail CI",
                });
            }
        }
        // Cause-link half: a non-root variant absent from the
        // `CauseKind::expected` target lists can never carry a typed
        // cause, so `validate_events` would reject every emission.
        if let Some(targets) = cause_link_targets(obs) {
            let roots = root_kind_strings(obs);
            for v in &variants {
                if roots.iter().any(|r| r == &v.text)
                    || targets.iter().any(|t| t == &v.text)
                {
                    continue;
                }
                out.push(Finding {
                    rule: self.id(),
                    file: obs.rel_path.clone(),
                    line: v.line,
                    col: v.col,
                    message: format!(
                        "SimEvent::{} has no cause-link table entry in CauseKind::expected",
                        v.text
                    ),
                    rationale: "non-root events must be reachable through a typed cause \
                                edge; add a CauseKind arm targeting this kind or list it \
                                in ROOT_KINDS",
                });
            }
        }
    }
}

/// Enforces the provenance half on the control loop: no raw `on_event`
/// calls, and an audited allow on every root-emitter call site. The
/// findings this emits are the hooks the `lint:allow` comments in
/// `system.rs` attach to — an uncaused emission without a justification
/// surfaces here, and a stale justification surfaces as `unused-allow`.
fn check_emission_sites(rule_id: &'static str, file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<&Token> = file.code_tokens().collect();
    for i in 0..code.len() {
        let tok = code[i];
        if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
            continue;
        }
        if tok.text == "on_event" {
            out.push(Finding {
                rule: rule_id,
                file: file.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message: "direct `on_event` call bypasses event-id minting".into(),
                rationale: "records emitted outside observe/observe_linked/emit_caused/\
                            emit_record carry no EventId and fall outside the provenance \
                            DAG the audit validates",
            });
            continue;
        }
        // A call site of an uncaused emitter: `observe(` / `emit_record(`
        // that is not the `fn` definition itself.
        let is_call = ROOT_EMITTERS.contains(&tok.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !(i > 0 && code[i - 1].is_ident("fn"));
        if is_call {
            out.push(Finding {
                rule: rule_id,
                file: file.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "uncaused emission site `{}(…)` mints a provenance root",
                    tok.text
                ),
                rationale: "root events start causal chains the run-diff and trace tools \
                            anchor to; justify each with lint:allow(event-emission-coverage, \
                            reason = \"…\") or thread a cause via observe_linked/emit_caused",
            });
        }
    }
}

/// Extracts the *target* kind names from the `CauseKind::expected`
/// table: the string literals inside the second `&[…]` group of each
/// `(&[sources], &[targets])` arm. Returns `None` when the file has no
/// `fn expected` — synthetic workspaces without a cause-link table opt
/// out of this half of the rule.
fn cause_link_targets(file: &SourceFile) -> Option<Vec<String>> {
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("fn") && code[i + 1].is_ident("expected") {
            break;
        }
        i += 1;
    }
    if i + 1 >= code.len() {
        return None;
    }
    // Step over the signature (its return type contains `(`/`[` tokens,
    // but no `{`) to the body's opening brace.
    while i < code.len() && !code[i].is_punct('{') {
        i += 1;
    }
    let mut depth = 0i32;
    let mut bracket_group = 0u32; // ordinal of the current `[…]` in its tuple
    let mut in_bracket = false;
    let mut targets = Vec::new();
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('(') {
            bracket_group = 0;
        } else if t.is_punct('[') {
            in_bracket = true;
            bracket_group += 1;
        } else if t.is_punct(']') {
            in_bracket = false;
        } else if in_bracket && bracket_group == 2 && t.kind == TokenKind::Str {
            targets.push(t.text.clone());
        }
        i += 1;
    }
    Some(targets)
}

/// String literals of the `ROOT_KINDS` const initializer (empty when
/// the const is absent — then every variant needs a table entry).
fn root_kind_strings(file: &SourceFile) -> Vec<String> {
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut i = 0;
    while i < code.len() && !code[i].is_ident("ROOT_KINDS") {
        i += 1;
    }
    // Step over the type annotation (`[&'static str; N]` contains a
    // `;`) to the initializer.
    while i < code.len() && !code[i].is_punct('=') {
        i += 1;
    }
    let mut out = Vec::new();
    while i < code.len() && !code[i].is_punct(';') {
        if code[i].kind == TokenKind::Str {
            out.push(code[i].text.clone());
        }
        i += 1;
    }
    out
}

/// Collects `SimEvent::<Variant>` path references in `file`, skipping
/// test lines when `skip_test_lines` is set.
fn collect_variant_refs(
    file: &SourceFile,
    skip_test_lines: bool,
    sink: &mut dyn FnMut(&str),
) {
    let code: Vec<&Token> = file.code_tokens().collect();
    for i in 0..code.len().saturating_sub(3) {
        if code[i].is_ident(ENUM_NAME)
            && code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':')
            && code[i + 3].kind == TokenKind::Ident
            && !(skip_test_lines && file.is_test_line(code[i].line))
        {
            sink(&code[i + 3].text);
        }
    }
}

/// Extracts the variant-name tokens of `enum <name> { … }` from a file.
///
/// Token-level walk: find `enum <name>`, then collect the identifier
/// that opens each variant at brace depth 1 (doc comments are skipped by
/// tokenization; attributes and field blocks are stepped over).
pub fn enum_variants(file: &SourceFile, name: &str) -> Vec<Token> {
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    // Find `enum <name> {`.
    while i + 2 < code.len() {
        if code[i].is_ident("enum") && code[i + 1].is_ident(name) {
            break;
        }
        i += 1;
    }
    if i + 2 >= code.len() {
        return variants;
    }
    i += 2;
    while i < code.len() && !code[i].is_punct('{') {
        i += 1; // skip generics/where clauses
    }
    if i >= code.len() {
        return variants;
    }
    i += 1; // into the enum body
    let mut depth = 1i32;
    let mut awaiting_variant = true;
    while i < code.len() && depth > 0 {
        let t = code[i];
        match () {
            _ if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') => {
                depth += 1;
                i += 1;
            }
            _ if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') => {
                depth -= 1;
                i += 1;
            }
            _ if depth == 1 && t.is_punct('#') => {
                // Skip a `#[…]` attribute group.
                i += 1;
                let mut attr_depth = 0i32;
                while i < code.len() {
                    if code[i].is_punct('[') {
                        attr_depth += 1;
                    } else if code[i].is_punct(']') {
                        attr_depth -= 1;
                        if attr_depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            _ if depth == 1 && t.is_punct(',') => {
                awaiting_variant = true;
                i += 1;
            }
            _ if depth == 1 && awaiting_variant && t.kind == TokenKind::Ident => {
                variants.push((*t).clone());
                awaiting_variant = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    variants
}
