//! Criterion bench regenerating E4 (test interval vs load) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e4_test_interval_vs_load, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_test_interval_vs_load");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e4_test_interval_vs_load(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
