//! Criterion bench regenerating E5 (baseline vs test-aware mapping) at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use manytest_bench::{e5_mapping_compare, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_mapping_compare");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| std::hint::black_box(e5_mapping_compare(Scale::Quick, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
